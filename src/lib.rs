//! # LeCo — Lightweight Compression via Learning Serial Correlations
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`core`] (`leco-core`) — the LeCo framework itself: regressors,
//!   partitioners, the hyper-parameter advisor, the encoder/decoder and the
//!   string extension.
//! * [`codecs`] (`leco-codecs`) — baseline lightweight codecs (FOR, Delta,
//!   RLE, Elias-Fano, rANS, dictionary, FSST-like, `lzb`).
//! * [`bitpack`] (`leco-bitpack`) — bit-packing primitives.
//! * [`datasets`] (`leco-datasets`) — reproducible data-set generators.
//! * [`columnar`] (`leco-columnar`) — a mini columnar execution engine.
//! * [`scan`] (`leco-scan`) — a morsel-driven parallel scan engine over
//!   columnar table files.
//! * [`kvstore`] (`leco-kvstore`) — a mini LSM key-value store.
//! * [`ingest`] (`leco-ingest`) — the write path: WAL-backed ingestion,
//!   background compaction into table files, snapshot-consistent live
//!   scans (see `docs/INGEST.md`).
//! * [`obs`] (`leco-obs`) — zero-overhead metrics registry and span
//!   tracing wired through the engines (see `docs/OBSERVABILITY.md`).
//! * [`server`] (`leco-server`) — a threaded TCP query frontend over
//!   sharded stores: `GET`/`MGET`/`SCAN`/`STATS` over a length-prefixed
//!   protocol (see `docs/SERVING.md`).
//!
//! The serialized column layout is specified byte-by-byte in
//! `docs/FORMAT.md`; sequential decodes everywhere go through the
//! word-parallel bulk kernels of [`bitpack::unpack`].
//!
//! ## Example
//!
//! ```
//! use leco::prelude::*;
//!
//! let values: Vec<u64> = (0..100_000u64).map(|i| 1_000 + 7 * i).collect();
//! let column = LecoCompressor::new(LecoConfig::leco_fix()).compress(&values);
//! assert_eq!(column.get(42_000), values[42_000]);
//! assert!(column.compression_ratio() < 0.05);
//! ```

pub use leco_bitpack as bitpack;
pub use leco_codecs as codecs;
pub use leco_columnar as columnar;
pub use leco_core as core;
pub use leco_datasets as datasets;
pub use leco_ingest as ingest;
pub use leco_kvstore as kvstore;
pub use leco_obs as obs;
pub use leco_scan as scan;
pub use leco_server as server;

/// The most commonly used types, importable with `use leco::prelude::*`.
pub mod prelude {
    pub use leco_codecs::{compression_ratio, IntColumn};
    pub use leco_core::{
        CompressedColumn, LecoCompressor, LecoConfig, Model, Partition, PartitionerKind,
        RegressorKind,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let values = leco_datasets::generate(leco_datasets::IntDataset::Movieid, 10_000, 1);
        let column = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        assert_eq!(column.decode_all(), values);
    }
}
