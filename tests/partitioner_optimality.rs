//! Cross-crate integration test: the §3.2.2 claim that the greedy split–merge
//! partitioner stays close to the dynamic-programming optimum, measured on
//! samples of the (generated) real-world data sets.

use leco::core::partition::{dp, split_merge};
use leco::core::RegressorKind;
use leco_datasets::{generate, IntDataset};

#[test]
fn greedy_split_merge_is_close_to_dp_optimum_on_real_world_samples() {
    // Small samples keep the O(n²·fit) DP tractable inside a unit test.
    let datasets = [
        IntDataset::Movieid,
        IntDataset::HousePrice,
        IntDataset::Booksale,
        IntDataset::Ml,
    ];
    for dataset in datasets {
        let values: Vec<u64> = generate(dataset, 600, 5);
        let greedy = split_merge::split_merge(&values, RegressorKind::Linear, 0.05);
        let optimal = dp::optimal_partitions(&values, RegressorKind::Linear);
        let greedy_cost = dp::total_cost_bits(&values, &greedy, RegressorKind::Linear);
        let optimal_cost = dp::total_cost_bits(&values, &optimal, RegressorKind::Linear);
        assert!(
            greedy_cost >= optimal_cost,
            "DP must be a lower bound ({dataset:?})"
        );
        // The paper reports < 3% on 200M-value columns; tiny samples make the
        // per-partition header relatively heavier, so allow 15% here.
        let overhead = greedy_cost as f64 / optimal_cost as f64 - 1.0;
        assert!(
            overhead < 0.15,
            "{dataset:?}: greedy {greedy_cost} vs optimal {optimal_cost} (overhead {:.1}%)",
            overhead * 100.0
        );
    }
}

#[test]
fn split_merge_tracks_segment_boundaries_better_than_fixed_partitions() {
    // On movieid-like bursts the variable-length partitioner should need far
    // fewer bits than a mismatched fixed grid.
    let values = generate(IntDataset::Movieid, 20_000, 5);
    let var = split_merge::split_merge(&values, RegressorKind::Linear, 0.1);
    let fixed = leco::core::partition::fixed::fixed_partitions(values.len(), 512);
    let var_cost = dp::total_cost_bits(&values, &var, RegressorKind::Linear);
    let fixed_cost = dp::total_cost_bits(&values, &fixed, RegressorKind::Linear);
    assert!(
        var_cost < fixed_cost,
        "variable {var_cost} should beat fixed {fixed_cost}"
    );
}
