//! Cross-crate integration test: the *shape* of the paper's headline
//! microbenchmark result (Figure 10) must hold on every data set — LeCo is
//! lossless, never compresses worse than FOR, and keeps random access usable
//! where Delta must replay a frame.

use leco::codecs::{DeltaCodec, ForCodec, IntColumn};
use leco::prelude::*;
use leco_datasets::{generate, IntDataset};

const N: usize = 40_000;
const FRAME: usize = 1024;

#[test]
fn leco_is_lossless_on_every_microbench_dataset() {
    for dataset in IntDataset::MICROBENCH {
        let values = generate(dataset, N, 7);
        for config in [LecoConfig::leco_fix_with_len(FRAME), LecoConfig::leco_var()] {
            let col = LecoCompressor::new(config.clone()).compress(&values);
            assert_eq!(col.decode_all(), values, "{dataset:?} under {config:?}");
            for i in (0..values.len()).step_by(617) {
                assert_eq!(col.get(i), values[i], "{dataset:?} at {i}");
            }
        }
    }
}

#[test]
fn leco_never_loses_to_for_on_compression_ratio() {
    // FOR is a special case of the framework (constant regressor), so a
    // linear regressor with the same partitioning can never do worse than
    // FOR by more than float-rounding noise — and usually does much better.
    for dataset in IntDataset::MICROBENCH {
        let values = generate(dataset, N, 7);
        let leco = LecoCompressor::new(LecoConfig::leco_fix_with_len(FRAME)).compress(&values);
        let for_ = ForCodec::encode(&values, FRAME);
        assert!(
            leco.size_bytes() as f64 <= for_.size_bytes() as f64 * 1.02,
            "{dataset:?}: LeCo {} should be <= FOR {}",
            leco.size_bytes(),
            for_.size_bytes()
        );
    }
}

#[test]
fn leco_clearly_beats_for_on_locally_easy_datasets() {
    // The paper reports ~40% average improvement on locally-easy data.
    let locally_easy = [
        IntDataset::Linear,
        IntDataset::Normal,
        IntDataset::Libio,
        IntDataset::Wiki,
        IntDataset::Booksale,
        IntDataset::Planet,
        IntDataset::Ml,
    ];
    let mut improvements = Vec::new();
    for dataset in locally_easy {
        let values = generate(dataset, N, 7);
        let leco = LecoCompressor::new(LecoConfig::leco_fix_with_len(FRAME)).compress(&values);
        let for_ = ForCodec::encode(&values, FRAME);
        improvements.push(1.0 - leco.size_bytes() as f64 / for_.size_bytes() as f64);
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    assert!(
        avg > 0.25,
        "average improvement over FOR was only {avg:.3}: {improvements:?}"
    );
}

#[test]
fn delta_random_access_needs_frame_replay_but_leco_does_not() {
    // Structural check behind Figure 10's latency gap: a Delta point access
    // decodes O(frame) values, a LeCo point access touches exactly one delta.
    let values = generate(IntDataset::Booksale, N, 7);
    let delta = DeltaCodec::encode(&values, FRAME);
    let leco = LecoCompressor::new(LecoConfig::leco_fix_with_len(FRAME)).compress(&values);
    // Both are still correct at the worst-case position (end of a frame).
    let worst = FRAME - 1;
    assert_eq!(delta.get(worst), values[worst]);
    assert_eq!(leco.get(worst), values[worst]);
    // And LeCo's compression ratio remains competitive with Delta on this
    // heavy-tailed data set (within 2x, usually better).
    assert!(leco.size_bytes() < delta.size_bytes() * 2);
}

#[test]
fn variable_partitioning_wins_on_globally_hard_datasets() {
    for dataset in [IntDataset::Movieid, IntDataset::HousePrice] {
        let values = generate(dataset, N, 7);
        let fix = LecoCompressor::new(LecoConfig::leco_fix_with_len(FRAME)).compress(&values);
        let var = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        assert!(
            var.size_bytes() < fix.size_bytes(),
            "{dataset:?}: var {} should beat fix {}",
            var.size_bytes(),
            fix.size_bytes()
        );
    }
}

#[test]
fn serialization_round_trips_across_datasets() {
    for dataset in [IntDataset::Movieid, IntDataset::Osm, IntDataset::HousePrice] {
        let values = generate(dataset, 10_000, 3);
        let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        let restored = CompressedColumn::from_bytes(&col.to_bytes()).expect("valid bytes");
        assert_eq!(restored.decode_all(), values, "{dataset:?}");
        assert_eq!(restored.size_bytes(), col.size_bytes());
    }
}
