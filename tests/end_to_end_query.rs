//! Cross-crate integration test: the columnar engine produces identical query
//! answers for every encoding, and LeCo files are the smallest on correlated
//! data (the premise of Figures 18–20).

use leco::columnar::{
    exec, Bitmap, BlockCompression, Encoding, QueryStats, TableFile, TableFileOptions,
};
use leco::datasets::tables::{sensor_table, SensorDistribution};
use std::collections::HashMap;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leco-it-query-{}-{}", std::process::id(), name));
    p
}

fn reference_groupby(ts: &[u64], id: &[u64], val: &[u64], lo: u64, hi: u64) -> Vec<(u64, f64)> {
    let mut acc: HashMap<u64, (u128, u64)> = HashMap::new();
    for i in 0..ts.len() {
        if (lo..=hi).contains(&ts[i]) {
            let e = acc.entry(id[i]).or_insert((0, 0));
            e.0 += val[i] as u128;
            e.1 += 1;
        }
    }
    let mut out: Vec<(u64, f64)> = acc
        .into_iter()
        .map(|(k, (s, c))| (k, s as f64 / c as f64))
        .collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

#[test]
fn all_encodings_agree_with_the_reference_engine() {
    let rows = 60_000;
    let t = sensor_table(rows, SensorDistribution::Correlated, 3);
    let lo = t.ts[rows / 4];
    let hi = t.ts[rows / 4 + rows / 50];
    let expected = reference_groupby(&t.ts, &t.id, &t.val, lo, hi);
    assert!(!expected.is_empty());

    for encoding in [
        Encoding::Default,
        Encoding::Delta,
        Encoding::For,
        Encoding::Leco,
    ] {
        let path = tmp(&format!("agree-{encoding:?}"));
        let file = TableFile::write(
            &path,
            &["ts", "id", "val"],
            &[t.ts.clone(), t.id.clone(), t.val.clone()],
            TableFileOptions {
                encoding,
                row_group_size: 16_384,
                ..Default::default()
            },
        )
        .unwrap();
        let mut stats = QueryStats::default();
        let bitmap = exec::filter_range(&file, 0, lo, hi, true, &mut stats).unwrap();
        let groups = exec::group_by_avg(&file, 1, 2, &bitmap, &mut stats).unwrap();
        assert_eq!(groups.len(), expected.len(), "{encoding:?}");
        for (g, e) in groups.iter().zip(&expected) {
            assert_eq!(g.0, e.0, "{encoding:?}");
            assert!((g.1 - e.1).abs() < 1e-9, "{encoding:?}");
        }
        assert!(stats.io_bytes > 0 && stats.total_seconds() > 0.0);
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn leco_files_are_smallest_on_correlated_data_and_block_compression_stacks() {
    let rows = 60_000;
    let t = sensor_table(rows, SensorDistribution::Correlated, 3);
    let mut sizes = HashMap::new();
    for encoding in [Encoding::Default, Encoding::For, Encoding::Leco] {
        for compression in [BlockCompression::None, BlockCompression::Lzb] {
            let path = tmp(&format!("size-{encoding:?}-{compression:?}"));
            let file = TableFile::write(
                &path,
                &["ts", "id", "val"],
                &[t.ts.clone(), t.id.clone(), t.val.clone()],
                TableFileOptions {
                    encoding,
                    row_group_size: 30_000,
                    block_compression: compression,
                },
            )
            .unwrap();
            sizes.insert(
                (encoding.name(), compression == BlockCompression::Lzb),
                file.file_size_bytes(),
            );
            std::fs::remove_file(path).ok();
        }
    }
    assert!(sizes[&("LeCo", false)] < sizes[&("FOR", false)]);
    assert!(sizes[&("LeCo", false)] < sizes[&("Default", false)]);
    // Block compression still helps every encoding (Figure 20's stacking).
    for name in ["Default", "FOR", "LeCo"] {
        assert!(sizes[&(name, true)] <= sizes[&(name, false)], "{name}");
    }
}

#[test]
fn bitmap_aggregation_matches_reference_on_every_encoding() {
    let rows = 50_000;
    let t = sensor_table(rows, SensorDistribution::Random, 9);
    let mut bitmap = Bitmap::new(rows);
    bitmap.set_range(1_000, 1_500);
    bitmap.set_range(40_000, 40_050);
    let expected: u128 = bitmap.iter_ones().map(|i| t.val[i] as u128).sum();
    for encoding in [
        Encoding::Default,
        Encoding::Delta,
        Encoding::For,
        Encoding::Leco,
    ] {
        let path = tmp(&format!("bitmap-{encoding:?}"));
        let file = TableFile::write(
            &path,
            &["val"],
            std::slice::from_ref(&t.val),
            TableFileOptions {
                encoding,
                row_group_size: 10_000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut stats = QueryStats::default();
        let got = exec::sum_selected(&file, 0, &bitmap, &mut stats).unwrap();
        assert_eq!(got, expected, "{encoding:?}");
        std::fs::remove_file(path).ok();
    }
}
