//! Differential test harness for compressed execution (model-inverse
//! predicate pushdown).
//!
//! The locked invariant: for every model family, correction width and
//! predicate, the pushdown kernels select **bit-for-bit** the same rows as
//! decode-then-filter, and their row accounting
//! (`rows_skipped_by_model + boundary_rows_decoded + rows_decoded_full`)
//! covers every row exactly once.
//!
//! The property tests honour `PROPTEST_CASES` (CI runs the suite in release
//! mode with 2048 cases); the deterministic tests pin the edges proptest is
//! unlikely to hit — predicates at exact predicted values, selectivity 0 and
//! 1, empty and single-row columns, and the non-monotone model families that
//! must take the decode fallback.

use leco::columnar::{exec, Bitmap, EncodedColumn, Encoding};
use leco::core::partition::PartitionerKind;
use leco::core::{LecoCompressor, LecoConfig, RegressorKind};
use proptest::prelude::*;

/// Reference selection: decode everything, compare row by row.
fn reference_bitmap(values: &[u64], lo: u64, hi: u64) -> Bitmap {
    let mut b = Bitmap::new(values.len());
    for (i, v) in values.iter().enumerate() {
        if lo <= hi && (lo..=hi).contains(v) {
            b.set(i);
        }
    }
    b
}

/// Run the chunk-level pushdown kernel and check it against decode-then-filter
/// plus the exhaustive row-accounting invariant.
fn assert_pushdown_matches(chunk: &EncodedColumn, values: &[u64], lo: u64, hi: u64, ctx: &str) {
    let want = reference_bitmap(values, lo, hi);
    let mut sel = Bitmap::new(values.len());
    let mut decode = Vec::new();
    let mut stats = exec::QueryStats::default();
    exec::filter_chunk_pushdown(chunk, lo, hi, 0, &mut sel, &mut decode, &mut stats);
    assert_eq!(sel, want, "{ctx}: pushdown selection mismatch [{lo},{hi}]");
    let accounted =
        stats.rows_skipped_by_model + stats.boundary_rows_decoded + stats.rows_decoded_full;
    assert_eq!(
        accounted,
        values.len() as u64,
        "{ctx}: row accounting [{lo},{hi}]"
    );
}

/// Run `CompressedColumn::filter_range_pushdown` directly (below the
/// EncodedColumn dispatch) and check selection + accounting.
fn assert_leco_column_matches(config: LecoConfig, values: &[u64], lo: u64, hi: u64, ctx: &str) {
    let column = LecoCompressor::new(config).compress(values);
    assert_eq!(column.decode_all(), values, "{ctx}: lossless precondition");
    let mut sel = Bitmap::new(values.len());
    let mut scratch = Vec::new();
    let counts = column.filter_range_pushdown(lo, hi, &mut scratch, |a, b| sel.set_range(a, b));
    let want = reference_bitmap(values, lo, hi);
    assert_eq!(sel, want, "{ctx}: column selection mismatch [{lo},{hi}]");
    assert_eq!(
        counts.total(),
        values.len() as u64,
        "{ctx}: column accounting [{lo},{hi}]"
    );
}

/// The model-family configurations under differential test.  Partition
/// lengths are kept small so a few hundred values span several partitions,
/// including a ragged final one.
fn families() -> Vec<(&'static str, LecoConfig)> {
    let fixed = |regressor: RegressorKind, len: usize| LecoConfig {
        regressor,
        partitioner: PartitionerKind::Fixed { len },
    };
    vec![
        ("constant", fixed(RegressorKind::Constant, 50)),
        ("linear", fixed(RegressorKind::Linear, 64)),
        ("linear-tiny", fixed(RegressorKind::Linear, 1)),
        ("poly2", fixed(RegressorKind::Poly2, 80)),
        ("poly3", fixed(RegressorKind::Poly3, 80)),
        ("exponential", fixed(RegressorKind::Exponential, 64)),
        ("logarithm", fixed(RegressorKind::Logarithm, 64)),
        ("linear-var", LecoConfig::leco_var()),
    ]
}

/// Data shapes that steer the encoder toward every corner: exact fits
/// (width 0), adversarial jitter (wide corrections), saturating values near
/// `u64::MAX` (forcing the fallback fit paths), and constant runs.
#[derive(Debug, Clone, Copy)]
enum Shape {
    ExactLinear,
    NoisyLinear,
    Constant,
    ExpLike,
    FullRandom,
    NearMax,
}

fn materialise(shape: Shape, n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*: deterministic per-seed pseudo-noise.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..n as u64)
        .map(|i| match shape {
            Shape::ExactLinear => 1_000 + 7 * i,
            Shape::NoisyLinear => 1_000 + 7 * i + next() % 50,
            Shape::Constant => 42 + (seed % 5),
            Shape::ExpLike => (1.07f64.powi(i as i32 % 300) * 10.0) as u64,
            Shape::FullRandom => next(),
            Shape::NearMax => u64::MAX - (next() % 1_000),
        })
        .collect()
}

const SHAPES: [Shape; 6] = [
    Shape::ExactLinear,
    Shape::NoisyLinear,
    Shape::Constant,
    Shape::ExpLike,
    Shape::FullRandom,
    Shape::NearMax,
];

/// Predicate selection mixing anchored and arbitrary bounds.  Anchoring at
/// actual values makes exact-boundary hits common instead of vanishingly
/// rare.
fn pick_predicate(values: &[u64], a: u64, b: u64, mode: u8) -> (u64, u64) {
    match mode % 5 {
        0 => (0, u64::MAX),            // selectivity 1
        1 => (a.max(1), a.max(1) - 1), // inverted: selectivity 0
        _ if values.is_empty() => (a.min(b), a.max(b)),
        2 => {
            let v = values[a as usize % values.len()];
            (v, v) // exact point predicate
        }
        3 => {
            let v = values[a as usize % values.len()];
            (v.saturating_sub(b % 100), v.saturating_add(b % 100))
        }
        _ => (a.min(b), a.max(b)),
    }
}

proptest! {
    /// Chunk-level differential: every encoding with a pushdown kernel
    /// (plus the Plain/Dict fallback) against decode-then-filter.
    #[test]
    fn chunk_pushdown_matches_decode_then_filter(
        shape_idx in 0usize..SHAPES.len(),
        n in 0usize..700,
        seed in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        mode in any::<u8>(),
    ) {
        let values = materialise(SHAPES[shape_idx], n, seed);
        let (lo, hi) = pick_predicate(&values, a, b, mode);
        for enc in [
            Encoding::Plain,
            Encoding::Default,
            Encoding::Delta,
            Encoding::For,
            Encoding::Leco,
        ] {
            let chunk = EncodedColumn::encode(&values, enc);
            assert_pushdown_matches(
                &chunk,
                &values,
                lo,
                hi,
                &format!("{:?}/{:?}", SHAPES[shape_idx], enc),
            );
        }
    }

    /// Column-level differential: the model-inverse kernel under every
    /// regressor family, including the non-monotone ones that must fall
    /// back to decoding whole partitions.
    #[test]
    fn leco_column_pushdown_matches_for_all_model_families(
        shape_idx in 0usize..SHAPES.len(),
        n in 0usize..400,
        seed in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        mode in any::<u8>(),
    ) {
        let values = materialise(SHAPES[shape_idx], n, seed);
        let (lo, hi) = pick_predicate(&values, a, b, mode);
        for (name, config) in families() {
            assert_leco_column_matches(
                config,
                &values,
                lo,
                hi,
                &format!("{:?}/{name}", SHAPES[shape_idx]),
            );
        }
    }

    /// Extreme-width differential: columns built so the packed correction
    /// width sweeps 0..=64 bits (pure jitter of bounded magnitude around a
    /// linear trend, plus full-range randomness for width 64).
    #[test]
    fn pushdown_survives_every_correction_width(
        width in 0u32..=64,
        n in 1usize..300,
        seed in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
        mode in any::<u8>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let jitter_mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let values: Vec<u64> = (0..n as u64)
            .map(|_| (next() & jitter_mask) | (jitter_mask ^ (jitter_mask >> 1)))
            .collect();
        let (lo, hi) = pick_predicate(&values, a, b, mode);
        for enc in [Encoding::Delta, Encoding::For, Encoding::Leco] {
            let chunk = EncodedColumn::encode(&values, enc);
            assert_pushdown_matches(&chunk, &values, lo, hi, &format!("width{width}/{enc:?}"));
        }
        assert_leco_column_matches(
            LecoConfig::leco_fix_with_len(37),
            &values,
            lo,
            hi,
            &format!("width{width}/leco-column"),
        );
    }
}

#[test]
fn boundary_constants_at_exact_predicted_values() {
    // An exactly linear column: every value sits exactly on the model line,
    // so `lo`/`hi` equal to a predicted value exercise the
    // inclusive/exclusive edges of the inverse bands.
    let values: Vec<u64> = (0..1_000u64).map(|i| 500 + 3 * i).collect();
    for (name, config) in families() {
        for &edge in &[values[0], values[499], values[999]] {
            for (lo, hi) in [
                (edge, edge),
                (edge - 1, edge - 1), // between lattice points: selects nothing
                (edge + 1, edge + 1),
                (edge - 1, edge + 1),
                (edge, u64::MAX),
                (0, edge),
            ] {
                assert_leco_column_matches(config.clone(), &values, lo, hi, name);
            }
        }
        // Selectivity 0 and 1.
        assert_leco_column_matches(config.clone(), &values, 0, u64::MAX, name);
        assert_leco_column_matches(config.clone(), &values, 9, 3, name);
        assert_leco_column_matches(config.clone(), &values, u64::MAX, u64::MAX, name);
    }
}

#[test]
fn empty_and_single_row_columns() {
    for (name, config) in families() {
        for values in [vec![], vec![0u64], vec![u64::MAX], vec![777u64]] {
            for (lo, hi) in [(0u64, u64::MAX), (777, 777), (5, 2), (u64::MAX, u64::MAX)] {
                assert_leco_column_matches(config.clone(), &values, lo, hi, name);
            }
        }
    }
    for enc in [
        Encoding::Delta,
        Encoding::For,
        Encoding::Leco,
        Encoding::Plain,
    ] {
        for values in [vec![], vec![7u64], vec![u64::MAX]] {
            let chunk = EncodedColumn::encode(&values, enc);
            for (lo, hi) in [(0u64, u64::MAX), (7, 7), (8, 6)] {
                assert_pushdown_matches(&chunk, &values, lo, hi, "tiny");
            }
        }
    }
}

#[test]
fn sine_family_falls_back_without_mismatch() {
    // The sine regressor is never monotone, so the inverse must refuse and
    // the pushdown path must fall back to decoding — selection still exact.
    let values: Vec<u64> = (0..600u64)
        .map(|i| (10_000 + 40 * i as i64 + ((i as f64 / 9.0).sin() * 500.0) as i64) as u64)
        .collect();
    let config = LecoConfig {
        regressor: RegressorKind::Sine {
            terms: 1,
            estimate_freq: true,
        },
        partitioner: PartitionerKind::Fixed { len: 150 },
    };
    for (lo, hi) in [
        (0u64, u64::MAX),
        (values[100], values[400]),
        (values[7], values[7]),
        (12, 3),
    ] {
        assert_leco_column_matches(config.clone(), &values, lo, hi, "sine");
    }
}

#[test]
fn pushdown_decodes_only_boundary_rows_on_clean_linear_data() {
    // Acceptance check at the harness level: a selective predicate over an
    // exactly-linear LeCo column resolves almost everything by model
    // inverse, with zero full-partition decodes.
    let values: Vec<u64> = (0..100_000u64).map(|i| 5_000 + 2 * i).collect();
    let chunk = EncodedColumn::encode(&values, Encoding::Leco);
    let (lo, hi) = (6_000u64, 6_100u64); // ~50 rows of 100k
    let mut sel = Bitmap::new(values.len());
    let mut decode = Vec::new();
    let mut stats = exec::QueryStats::default();
    exec::filter_chunk_pushdown(&chunk, lo, hi, 0, &mut sel, &mut decode, &mut stats);
    assert_eq!(sel, reference_bitmap(&values, lo, hi));
    assert_eq!(stats.rows_decoded_full, 0);
    assert!(
        stats.rows_skipped_by_model > 99_000,
        "skipped {}",
        stats.rows_skipped_by_model
    );
}
