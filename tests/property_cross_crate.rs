//! Property-based integration tests spanning crates: every scheme, every
//! generated data set, always lossless; serialized LeCo columns always
//! reload; string extension always round-trips generated string corpora.

use leco::codecs::{DeltaCodec, EliasFano, ForCodec, IntColumn, RansCodec, RleCodec};
use leco::core::delta_var::DeltaVarColumn;
use leco::core::string::{CompressedStrings, StringConfig};
use leco::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any u64 column, any codec in the workspace: decode(encode(x)) == x.
    #[test]
    fn prop_every_codec_is_lossless(values in proptest::collection::vec(any::<u64>(), 1..300)) {
        let frame = 64usize;
        prop_assert_eq!(ForCodec::encode(&values, frame).decode_all(), values.clone());
        prop_assert_eq!(DeltaCodec::encode(&values, frame).decode_all(), values.clone());
        prop_assert_eq!(RleCodec::encode(&values).decode_all(), values.clone());
        prop_assert_eq!(RansCodec::encode(&values).decode_all(), values.clone());
        prop_assert_eq!(DeltaVarColumn::encode(&values).decode_all(), values.clone());
        let leco = LecoCompressor::new(LecoConfig::leco_fix_with_len(frame)).compress(&values);
        prop_assert_eq!(leco.decode_all(), values.clone());
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(EliasFano::encode(&sorted).unwrap().decode_all(), sorted);
    }

    /// Random access always equals full decode, for every scheme with O(1)
    /// or O(frame) access.
    #[test]
    fn prop_random_access_matches_decode(values in proptest::collection::vec(0u64..1_000_000, 1..300), seed in any::<u64>()) {
        let leco = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        let forc = ForCodec::encode(&values, 32);
        let decoded = leco.decode_all();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..32 {
            let i = rng.gen_range(0..values.len());
            prop_assert_eq!(leco.get(i), decoded[i]);
            prop_assert_eq!(forc.get(i), values[i]);
        }
    }

    /// Serialization is stable: to_bytes → from_bytes preserves every value
    /// and the reported size.
    #[test]
    fn prop_serialized_columns_reload(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(40)).compress(&values);
        let bytes = col.to_bytes();
        prop_assert_eq!(bytes.len(), col.size_bytes());
        let restored = CompressedColumn::from_bytes(&bytes).unwrap();
        prop_assert_eq!(restored.decode_all(), values);
    }

    /// The string extension round-trips arbitrary byte-string corpora under
    /// both character-set modes.
    #[test]
    fn prop_string_extension_round_trips(
        strings in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..60),
        full_byte in any::<bool>()
    ) {
        let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
        let c = CompressedStrings::encode(&refs, StringConfig { partition_len: 16, full_byte_charset: full_byte });
        prop_assert_eq!(c.decode_all(), strings);
    }
}

#[test]
fn all_generated_datasets_survive_every_leco_configuration() {
    let mut rng = StdRng::seed_from_u64(2);
    use rand::Rng;
    for dataset in leco_datasets::IntDataset::MICROBENCH {
        let n = rng.gen_range(5_000..12_000);
        let values = leco_datasets::generate(dataset, n, 11);
        for config in [
            LecoConfig::leco_fix_with_len(777),
            LecoConfig::leco_var(),
            LecoConfig::leco_poly_fix(),
            LecoConfig::for_(),
        ] {
            let col = LecoCompressor::new(config.clone()).compress(&values);
            assert_eq!(col.decode_all(), values, "{dataset:?} under {config:?}");
        }
    }
}
