//! Cross-crate integration test: the KV store returns exactly the same seek
//! results regardless of how its index block is compressed, and the LeCo
//! index is substantially smaller than the uncompressed baseline (§5.2).

use leco::datasets::zipf::Zipf;
use leco::kvstore::{IndexBlockFormat, Store, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leco-it-kv-{}-{}", std::process::id(), name));
    p
}

fn records(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| {
            (
                format!("user{:016}", i as u64 * 6_151).into_bytes(),
                format!("payload-{i:08}").repeat(3).into_bytes(),
            )
        })
        .collect()
}

#[test]
fn every_index_format_answers_zipfian_seeks_identically() {
    let n = 30_000;
    let recs = records(n);
    let reference: BTreeMap<Vec<u8>, Vec<u8>> = recs.iter().cloned().collect();
    let zipf = Zipf::ycsb_skewed(n);
    let mut rng = StdRng::seed_from_u64(17);
    let probes: Vec<Vec<u8>> = zipf
        .sample_many(2_000, &mut rng)
        .into_iter()
        .map(|rank| format!("user{:016}", rank as u64 * 6_151 + 3).into_bytes())
        .collect();

    let formats = [
        IndexBlockFormat::RestartInterval(1),
        IndexBlockFormat::RestartInterval(16),
        IndexBlockFormat::RestartInterval(128),
        IndexBlockFormat::Leco,
    ];
    for format in formats {
        let path = tmp(&format!("consistency-{}", format.name()));
        let store = Store::load(
            &path,
            &recs,
            StoreOptions {
                index_format: format,
                block_cache_bytes: 2 << 20,
            },
        )
        .unwrap();
        for probe in &probes {
            let expected = reference
                .range(probe.clone()..)
                .next()
                .map(|(k, v)| (k.clone(), v.clone()));
            assert_eq!(store.seek(probe).unwrap(), expected, "{format:?}");
        }
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn leco_index_is_much_smaller_and_cache_benefits_from_it() {
    let n = 60_000;
    let recs = records(n);
    let p1 = tmp("ri1");
    let p2 = tmp("leco");
    let cache = 512 * 1024; // deliberately tiny cache
    let ri1 = Store::load(
        &p1,
        &recs,
        StoreOptions {
            index_format: IndexBlockFormat::RestartInterval(1),
            block_cache_bytes: cache,
        },
    )
    .unwrap();
    let leco = Store::load(
        &p2,
        &recs,
        StoreOptions {
            index_format: IndexBlockFormat::Leco,
            block_cache_bytes: cache,
        },
    )
    .unwrap();

    // Paper shape: RI=1 keeps the index uncompressed (~71% of raw in their
    // setup); LeCo compresses it far below that.
    assert!(
        leco.index_size_bytes() * 3 < ri1.index_size_bytes(),
        "LeCo index {} vs RI=1 {}",
        leco.index_size_bytes(),
        ri1.index_size_bytes()
    );

    // Both stores still serve the same data.
    let probe = recs[n / 2].0.clone();
    assert_eq!(ri1.seek(&probe).unwrap(), leco.seek(&probe).unwrap());
    assert_eq!(ri1.num_records(), leco.num_records());
}
