//! Minimal offline stand-in for crates.io `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()`
//! returns the guard directly instead of a `Result`, and a poisoned std
//! mutex (a thread panicked while holding it) is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::sync::TryLockError;

/// Drop-in stand-in for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// Drop-in stand-in for `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
