//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The derives expand to nothing: the annotated types keep compiling and the
//! attribute documents serializability, but no impl is generated. When real
//! serialization lands, this crate is replaced by the genuine serde_derive.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
