//! Minimal offline stand-in for crates.io `rand` 0.8.
//!
//! The workspace builds in a container without registry access, so this crate
//! implements exactly the rand 0.8 API surface the LeCo sources use:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer and
//!   float ranges) and [`Rng::gen_bool`]
//!
//! The generator is a fixed xoshiro256** instance: deterministic for a given
//! seed, which is all the reproduction benchmarks require. It is **not**
//! cryptographically secure and makes no cross-version stream guarantees.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng` 0.8.
pub trait Rng: RngCore + Sized {
    /// Sample a value of type `T` from the standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution (rand's `Standard`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits of a word.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types from which `gen_range` can sample a `T` (rand's `SampleRange`).
///
/// Implemented as a single blanket impl per range shape (as in real rand)
/// rather than one impl per element type: the blanket lets type inference
/// unify `T` with an unsuffixed integer literal's type immediately, which
/// the call sites rely on (`rng.gen_range(0..1_000) + some_u64`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types uniformly samplable from a range (rand's `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Uniform `u64` in `[0, span)`; modulo with rejection of the biased tail.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in a u64; values at or above it
    // would bias the low residues, so re-draw (at most once in expectation).
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self {
                // Two's-complement subtraction gives the span for signed
                // types as well, as long as start < end.
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self {
                let unit = f64::sample_standard(rng) as $t;
                start + unit * (end - start)
            }

            fn sample_inclusive<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self {
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&s));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let inc: u8 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&inc));
        }
    }

    #[test]
    fn full_width_inclusive_range_works() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..=u64::MAX);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
