//! Minimal offline stand-in for crates.io `criterion`.
//!
//! Implements the API surface the LeCo bench suite uses — benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `sample_size`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! harness: per sample the closure runs in a timed batch, and the median
//! sample is reported as ns/iter (plus derived throughput when declared).
//! No statistical analysis, plots or HTML reports; output is one line per
//! benchmark on stdout.
//!
//! In addition to the stdout lines, `criterion_main!` writes a
//! machine-readable `BENCH_criterion_<target>.json` (into `LECO_BENCH_DIR`
//! or the working directory) shaped like `leco_bench::report::BenchReport`
//! output — `{"bench": .., "sections": [{"label": .., "data": [rows]}]}` —
//! so Criterion results feed the same baseline tooling as the `repro_*`
//! binaries.  (The schema is duplicated here because this vendored shim
//! sits *below* `leco-bench` in the dependency graph.)

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse command-line arguments the way cargo's bench runner passes
    /// them: the first free argument is a substring filter. Harness flags
    /// cargo itself forwards (`--bench`, `--test`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let id = id.into();
        self.run_one(&id.0, sample_size, None, &mut f);
    }

    pub fn final_summary(self) {}

    fn run_one<F>(&self, name: &str, sample_size: usize, throughput: Option<&Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        bencher.report(name, throughput);
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion
            .run_one(&full, self.sample_size, self.throughput.as_ref(), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units for derived throughput reporting.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample lasts ≥ ~1ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&mut self, name: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let (extra, derived) = match throughput {
            Some(Throughput::Bytes(n)) => {
                let gib_s = *n as f64 / median / 1.073_741_824;
                (format!("  {gib_s:8.3} GiB/s"), Some(("gib_per_s", gib_s)))
            }
            Some(Throughput::Elements(n)) => {
                let melem_s = *n as f64 / median * 1_000.0;
                (
                    format!("  {melem_s:8.1} Melem/s"),
                    Some(("melem_per_s", melem_s)),
                )
            }
            None => (String::new(), None),
        };
        println!("{name:<60} {:>12} ns/iter{extra}", format_ns(median));
        record_result(BenchResult {
            name: name.to_string(),
            ns_per_iter: median,
            derived,
        });
    }
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

struct BenchResult {
    name: String,
    ns_per_iter: f64,
    derived: Option<(&'static str, f64)>,
}

/// Results collected across all groups of the running bench target.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn record_result(result: BenchResult) {
    RESULTS.lock().unwrap().push(result);
}

/// Minimal JSON string escaping (the benchmark names are plain ASCII, but
/// stay correct regardless).
fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The bench-target name: the executable's file stem with cargo's trailing
/// `-<16 hex digits>` disambiguator stripped.
fn target_name() -> String {
    let stem = std::env::args()
        .next()
        .map(std::path::PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Write `BENCH_criterion_<target>.json` with every result recorded so far.
/// Called by `criterion_main!` after all groups ran; a write failure is
/// reported on stderr but never fails the bench run.  Does nothing when no
/// benchmark executed (e.g. the command-line filter matched nothing).
pub fn write_json_report() {
    let results = RESULTS.lock().unwrap();
    if results.is_empty() {
        return;
    }
    let mut out = String::from("{\"bench\":");
    escape_json(&format!("criterion_{}", target_name()), &mut out);
    out.push_str(",\"sections\":[{\"label\":\"benchmarks\",\"data\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"benchmark\":");
        escape_json(&r.name, &mut out);
        out.push_str(&format!(",\"ns_per_iter\":{}", r.ns_per_iter));
        if let Some((unit, v)) = &r.derived {
            out.push_str(&format!(",\"{unit}\":{v}"));
        }
        out.push('}');
    }
    out.push_str("]}]}\n");
    let dir = std::env::var("LECO_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_criterion_{}.json", target_name()));
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Mirror of `criterion::criterion_group!`: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: the `main` for a
/// `harness = false` bench target.  After every group has run, the
/// collected results are written as `BENCH_criterion_<target>.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("leco", "books").0, "leco/books");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }

    #[test]
    fn json_report_collects_results_and_writes_file() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // SAFETY: test processes are single-threaded at this point w.r.t.
        // env access in this crate's tests.
        std::env::set_var("LECO_BENCH_DIR", &dir);
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("json");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
        write_json_report();
        std::env::remove_var("LECO_BENCH_DIR");
        let path = dir.join(format!("BENCH_criterion_{}.json", target_name()));
        let text = std::fs::read_to_string(&path).expect("report written");
        assert!(text.contains("\"benchmark\":\"json/sum\""));
        assert!(text.contains("\"ns_per_iter\":"));
        assert!(text.contains("\"melem_per_s\":"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escape_json_handles_specials() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }
}
