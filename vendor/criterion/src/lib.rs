//! Minimal offline stand-in for crates.io `criterion`.
//!
//! Implements the API surface the LeCo bench suite uses — benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `sample_size`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! harness: per sample the closure runs in a timed batch, and the median
//! sample is reported as ns/iter (plus derived throughput when declared).
//! No statistical analysis, plots or HTML reports; output is one line per
//! benchmark on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Parse command-line arguments the way cargo's bench runner passes
    /// them: the first free argument is a substring filter. Harness flags
    /// cargo itself forwards (`--bench`, `--test`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let id = id.into();
        self.run_one(&id.0, sample_size, None, &mut f);
    }

    pub fn final_summary(self) {}

    fn run_one<F>(&self, name: &str, sample_size: usize, throughput: Option<&Throughput>, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        bencher.report(name, throughput);
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        self.criterion
            .run_one(&full, self.sample_size, self.throughput.as_ref(), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Units for derived throughput reporting.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the benchmark closure; `iter` does the measuring.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample lasts ≥ ~1ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&mut self, name: &str, throughput: Option<&Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let extra = match throughput {
            Some(Throughput::Bytes(n)) => {
                let gib_s = *n as f64 / median / 1.073_741_824;
                format!("  {gib_s:8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let melem_s = *n as f64 / median * 1_000.0;
                format!("  {melem_s:8.1} Melem/s")
            }
            None => String::new(),
        };
        println!("{name:<60} {:>12} ns/iter{extra}", format_ns(median));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Mirror of `criterion::criterion_group!`: bundles benchmark functions
/// into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: the `main` for a
/// `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("leco", "books").0, "leco/books");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}
