//! The [`Strategy`] trait and the primitive strategies.
//!
//! A strategy here is just a sampler: `sample` draws one value from the
//! deterministic [`TestRng`]. There is no shrinking tree; the trade-off is
//! documented on the crate root.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of generated values. Mirrors `proptest::strategy::Strategy` in
/// name and spirit, but samples directly instead of building value trees.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Mirror of proptest's `prop_map` adapter.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy producing values of `T` from its "whole domain" distribution;
/// returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Mirror of `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a default whole-domain generator (mirror of
/// `proptest::arbitrary::Arbitrary`, sans parameters).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias roughly one draw in eight toward the boundary values
                // that uniform sampling would almost never produce.
                if rng.one_in(8) {
                    const EDGES: [$t; 5] = [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX, <$t>::MAX - 1];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    Self::from_le_bytes(
                        rng_bytes(rng)[..std::mem::size_of::<$t>()].try_into().unwrap(),
                    )
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// 16 fresh random bytes, enough for any primitive integer.
fn rng_bytes(rng: &mut TestRng) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&rng.next_u64().to_le_bytes());
    out[8..].copy_from_slice(&rng.next_u64().to_le_bytes());
    out
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats spanning many magnitudes (no NaN/inf: the tests
        // feed these into codecs that require finite inputs).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mantissa * (2.0f64).powi(exp)
    }
}

/// Element types samplable from range strategies. A single blanket impl of
/// [`Strategy`] per range shape (rather than one impl per element type)
/// keeps type inference working for unsuffixed literals.
pub trait RangeSampled: Copy + PartialOrd {
    fn sample_half_open(start: Self, end: Self, rng: &mut TestRng) -> Self;
    fn sample_inclusive(start: Self, end: Self, rng: &mut TestRng) -> Self;
}

impl<T: RangeSampled> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: RangeSampled> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_range_sampled_int {
    ($($t:ty),*) => {$(
        impl RangeSampled for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut TestRng) -> Self {
                let span = (end as u64).wrapping_sub(start as u64);
                // Nudge one draw in sixteen onto an endpoint.
                if rng.one_in(16) {
                    if rng.next_u64() & 1 == 0 { start } else {
                        start.wrapping_add((span - 1) as $t)
                    }
                } else {
                    start.wrapping_add(rng.below(span) as $t)
                }
            }

            fn sample_inclusive(start: Self, end: Self, rng: &mut TestRng) -> Self {
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit-wide inclusive range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_sampled_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_sampled_float {
    ($($t:ty),*) => {$(
        impl RangeSampled for $t {
            fn sample_half_open(start: Self, end: Self, rng: &mut TestRng) -> Self {
                start + rng.unit_f64() as $t * (end - start)
            }

            fn sample_inclusive(start: Self, end: Self, rng: &mut TestRng) -> Self {
                Self::sample_half_open(start, end, rng)
            }
        }
    )*};
}

impl_range_sampled_float!(f32, f64);

/// Strategy always yielding a clone of one value (mirror of `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// String literals act as regex-lite strategies, e.g. `"[a-z]{0,20}"`.
///
/// Supported syntax: literal characters, `[c1-c2...]` classes (ranges and
/// single characters, no negation), and the quantifiers `{n}`, `{m,n}`, `?`,
/// `*` and `+` (the unbounded ones capped at 32 repetitions). Anything
/// fancier panics with a clear message — extend the parser when a test
/// needs more.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex_lite(self, rng)
    }
}

fn sample_regex_lite(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character...
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in regex strategy {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex strategy {pattern:?}");
                i = close + 1;
                set
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling \\ in regex strategy {pattern:?}"));
                i += 2;
                vec![c]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!(
                    "unsupported regex syntax {:?} in strategy {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // ...followed by an optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<u64>().expect("bad quantifier"),
                        n.trim().parse::<u64>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<u64>().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 32)
            }
            Some('+') => {
                i += 1;
                (1, 32)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in regex strategy {pattern:?}");
        let reps = min + rng.below(max - min + 1);
        for _ in 0..reps {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}
