//! Test configuration and the deterministic RNG driving case generation.

/// Mirrors `proptest::test_runner::Config` (exported in the prelude as
/// `ProptestConfig`). Only the `cases` knob is implemented.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases each property runs. Overridable with the
    /// `PROPTEST_CASES` environment variable, like real proptest.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim halves that to keep the
        // debug-profile `cargo test` wall clock reasonable.
        Config {
            cases: env_cases().unwrap_or(128),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Deterministic splitmix64 generator, seeded from the test's name so every
/// property gets an independent but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)` by modulo with tail rejection.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - u64::MAX.wrapping_rem(span);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % span;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True once every `n` draws on average; used to bias toward edge cases.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}
