//! Minimal offline stand-in for crates.io `proptest`.
//!
//! The workspace builds in a container without registry access, so this crate
//! implements the slice of proptest the LeCo tests actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * `any::<T>()` for primitive integers and `bool`,
//! * integer and float range strategies (`0u64..100`, `b'a'..=b'f'`, ...),
//! * [`collection::vec`] and [`collection::btree_set`],
//! * string-literal strategies for simple regexes like `"[a-z]{0,20}"`.
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! per-test RNG (no persisted failure seeds) and failing cases are reported
//! but **not shrunk**. Inputs of a failing case are printed in full, which
//! for the small vectors used here is an acceptable substitute.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Entry point mirroring `proptest::proptest!`.
///
/// Expands each contained `fn name(arg in strategy, ...) { body }` into a
/// plain `#[test]`-style function that samples the strategies `cases` times
/// and runs the body, printing the offending inputs if a case panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)+) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $crate::__proptest_bind!{ @rng(__rng) @inputs(__inputs) $($args)+ }
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    ::std::eprintln!(
                        "proptest `{}` failed at case {}/{} with inputs:\n  {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs.join("\n  "),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Muncher turning `[mut] name in strategy, ...` argument lists into
/// sampling `let` bindings plus a debug record of each sampled input.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    (@rng($rng:ident) @inputs($inputs:ident)) => {};
    (@rng($rng:ident) @inputs($inputs:ident) mut $arg:ident in $strat:expr) => {
        $crate::__proptest_bind!{ @rng($rng) @inputs($inputs) mut $arg in $strat, }
    };
    (@rng($rng:ident) @inputs($inputs:ident) mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        let mut $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $inputs.push(::std::format!("{} = {:?}", stringify!($arg), &$arg));
        $crate::__proptest_bind!{ @rng($rng) @inputs($inputs) $($rest)* }
    };
    (@rng($rng:ident) @inputs($inputs:ident) $arg:ident in $strat:expr) => {
        $crate::__proptest_bind!{ @rng($rng) @inputs($inputs) $arg in $strat, }
    };
    (@rng($rng:ident) @inputs($inputs:ident) $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $inputs.push(::std::format!("{} = {:?}", stringify!($arg), &$arg));
        $crate::__proptest_bind!{ @rng($rng) @inputs($inputs) $($rest)* }
    };
}

/// Mirrors `proptest::prop_assert!`: panics (and thus fails the case) when
/// the condition is false. The shim does not thread `Result` through test
/// bodies, so this is a plain assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u64..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn exact_size_vec(v in crate::collection::vec(b'a'..=b'f', 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn btree_set_bounds(s in crate::collection::btree_set(0usize..500, 0..60)) {
            prop_assert!(s.len() < 60);
            prop_assert!(s.iter().all(|&x| x < 500));
        }

        #[test]
        fn regex_lite_strings(s in "[a-z]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn any_bool_and_map(b in any::<bool>(), x in any::<u64>()) {
            prop_assert_ne!(b as u64 + 2, x.wrapping_sub(x));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        let s = crate::collection::vec(0u64..1_000_000, 0..50);
        for _ in 0..20 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
