//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Size specifications accepted by the collection strategies (mirror of
/// `proptest::collection::SizeRange` conversions): an exact `usize`, `a..b`
/// or `a..=b`.
pub trait IntoSizeRange {
    /// Half-open `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end() + 1)
    }
}

/// Mirror of `proptest::collection::vec`: a `Vec` of `size` elements drawn
/// from `element`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Mirror of `proptest::collection::btree_set`: up to `size` distinct
/// elements. Like the real crate, the target size is best-effort — if the
/// element domain is too small, the set stops growing early.
pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
    Z: IntoSizeRange,
{
    let (min, max) = size.bounds();
    BTreeSetStrategy { element, min, max }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.min + rng.below((self.max - self.min) as u64) as usize;
        let mut out = BTreeSet::new();
        // Cap the attempts so a small element domain cannot loop forever.
        let mut budget = 10 * target + 10;
        while out.len() < target && budget > 0 {
            out.insert(self.element.sample(rng));
            budget -= 1;
        }
        out
    }
}
