//! Minimal offline stand-in for crates.io `serde`.
//!
//! The LeCo sources only apply `#[derive(Serialize, Deserialize)]` to model
//! and advisor types — no code path serializes anything yet (the on-disk
//! formats are hand-rolled in `leco-core::format` and `leco-columnar::file`).
//! This shim provides the two marker traits and re-exports the derive macros
//! so those annotations compile; a future PR that needs real serialization
//! replaces this crate with the genuine article without touching callers.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (lifetime elided — the shim
/// has no borrowing deserializer).
pub trait Deserialize {}
