//! LeCo's string extension (§3.4) versus an FSST-style dictionary codec on a
//! sorted email column: compression ratio and random-access behaviour.
//!
//! Run with: `cargo run --release --example string_compression`

use leco::codecs::FsstLike;
use leco::core::string::{CompressedStrings, StringConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 100_000;
    let mut rng = StdRng::seed_from_u64(11);
    let emails = leco::datasets::strings::email(n, &mut rng);
    let raw_bytes: usize = emails.iter().map(|s| s.len()).sum::<usize>() + n * 4;
    println!(
        "{n} sorted email addresses, {} KB raw (incl. 4-byte offsets)\n",
        raw_bytes / 1024
    );

    let refs: Vec<&[u8]> = emails.iter().map(|s| s.as_slice()).collect();
    let leco = CompressedStrings::encode(&refs, StringConfig::default());
    let fsst = FsstLike::encode(&emails, 0);
    let fsst_blocked = FsstLike::encode(&emails, 100);

    let bench_access = |label: &str, get: &dyn Fn(usize) -> Vec<u8>| {
        let start = Instant::now();
        let mut sink = 0usize;
        for i in (0..n).step_by(3) {
            sink += get(i).len();
        }
        let ns = start.elapsed().as_secs_f64() * 1e9 / (n as f64 / 3.0);
        println!("{label:<28} random access ≈ {ns:6.0} ns/string");
        std::hint::black_box(sink);
    };

    println!(
        "LeCo string extension        ratio {:5.1}%  ({} partitions)",
        leco.compression_ratio() * 100.0,
        leco.num_partitions()
    );
    println!(
        "FSST-style (plain offsets)   ratio {:5.1}%",
        fsst.compression_ratio(&emails) * 100.0
    );
    println!(
        "FSST-style (offset block 100) ratio {:5.1}%\n",
        fsst_blocked.compression_ratio(&emails) * 100.0
    );

    bench_access("LeCo string extension", &|i| leco.get(i));
    bench_access("FSST-style (plain offsets)", &|i| fsst.get(i));
    bench_access("FSST-style (offset block 100)", &|i| fsst_blocked.get(i));

    // Everything is lossless.
    for i in (0..n).step_by(997) {
        assert_eq!(leco.get(i), emails[i]);
        assert_eq!(fsst.get(i), emails[i]);
    }
    println!("\nlossless: OK");
}
