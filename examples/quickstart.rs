//! Quickstart: compress an integer column with LeCo, inspect the result,
//! random-access it, serialize it and read it back.
//!
//! Run with: `cargo run --release --example quickstart`

use leco::prelude::*;

fn main() {
    // A realistic columnar workload: sorted timestamps with bursts.
    let values: Vec<u64> = (0..1_000_000u64)
        .map(|i| 1_700_000_000_000 + i * 40 + (i / 100_000) * 5_000_000 + (i % 7))
        .collect();
    let raw_bytes = values.len() * 8;

    // LeCo-fix: linear regressor, fixed partitions with an auto-searched size.
    let fix = LecoCompressor::new(LecoConfig::leco_fix()).compress(&values);
    // LeCo-var: the variable-length split–merge partitioner (better ratio,
    // slower compression and slightly slower point access).
    let var = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
    // FOR expressed inside the same framework, for comparison.
    let for_ = LecoCompressor::new(LecoConfig::for_()).compress(&values);

    println!("raw size           : {} KB", raw_bytes / 1024);
    for (name, col) in [("FOR   ", &for_), ("LeCo-fix", &fix), ("LeCo-var", &var)] {
        println!(
            "{name} : {:7} KB  (ratio {:5.2}%, {} partitions, {} bytes of models)",
            col.size_bytes() / 1024,
            col.compression_ratio() * 100.0,
            col.num_partitions(),
            col.model_size_bytes(),
        );
    }

    // Random access without decompressing anything else.
    assert_eq!(fix.get(123_456), values[123_456]);
    assert_eq!(var.get(999_999), values[999_999]);

    // Range decode (uses the θ₁-accumulation fast path internally).
    let mut window = Vec::new();
    fix.decode_range_into(500_000, 500_010, &mut window);
    assert_eq!(window, &values[500_000..500_010]);
    println!("values[500000..500010] = {window:?}");

    // The format is self-describing: serialize and reload.
    let bytes = fix.to_bytes();
    let restored = CompressedColumn::from_bytes(&bytes).expect("valid LeCo column");
    assert_eq!(restored.get(42), values[42]);
    println!(
        "serialized column: {} bytes, round-trips correctly",
        bytes.len()
    );

    // Lossless end to end.
    assert_eq!(fix.decode_all(), values);
    assert_eq!(var.decode_all(), values);
    println!("lossless: OK");
}
