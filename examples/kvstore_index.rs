//! The paper's §5.2 scenario in miniature: compress the index blocks of an
//! LSM key-value store with LeCo and compare seek throughput against the
//! RocksDB-style restart-interval baselines under a constrained block cache.
//!
//! Run with: `cargo run --release --example kvstore_index`

use leco::datasets::zipf::Zipf;
use leco::kvstore::{run_seek_workload, IndexBlockFormat, Store, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let n = 200_000;
    // 20-byte keys, 400-byte values: the RocksDB performance-benchmark shape.
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
        .map(|i| {
            (
                format!("user{:016}", i as u64 * 7919).into_bytes(),
                vec![b'v'; 400],
            )
        })
        .collect();

    // Skewed YCSB-style seek workload: 80% of queries touch 20% of keys.
    let zipf = Zipf::ycsb_skewed(n);
    let mut rng = StdRng::seed_from_u64(1);
    let queries: Vec<Vec<u8>> = zipf
        .sample_many(50_000, &mut rng)
        .into_iter()
        .map(|rank| records[rank].0.clone())
        .collect();

    let cache_bytes = 4 << 20; // deliberately small so index size matters
    println!(
        "{n} records (~{} MB), 50k zipfian seeks, {} MB block cache\n",
        n * 420 / 1_000_000,
        cache_bytes >> 20
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "index format", "index size", "cache hit %", "throughput"
    );
    for format in [
        IndexBlockFormat::RestartInterval(1),
        IndexBlockFormat::RestartInterval(16),
        IndexBlockFormat::RestartInterval(128),
        IndexBlockFormat::Leco,
    ] {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "leco-example-kv-{}-{}.sst",
            format.name(),
            std::process::id()
        ));
        let store = Arc::new(Store::load(
            &path,
            &records,
            StoreOptions {
                index_format: format,
                block_cache_bytes: cache_bytes,
            },
        )?);
        let ops = run_seek_workload(&store, &queries, 4);
        let (hits, misses) = store.cache_stats();
        println!(
            "{:<14} {:>11} KB {:>13.1}% {:>9.0} op/s",
            format.name(),
            store.index_size_bytes() / 1024,
            hits as f64 / (hits + misses).max(1) as f64 * 100.0,
            ops
        );
        std::fs::remove_file(&path).ok();
    }
    println!(
        "\nA LeCo-compressed index is a fraction of the uncompressed one yet still supports O(1)"
    );
    println!("random access inside the block — the effect behind the paper's 16% throughput gain.");
    Ok(())
}
