//! The paper's §5.1 scenario in miniature: a sensor table stored in a
//! columnar file with different encodings, queried with a selective
//! filter → group-by → average pipeline using late materialisation.
//!
//! Run with: `cargo run --release --example columnar_analytics`

use leco::columnar::{exec, Encoding, QueryStats, TableFile, TableFileOptions};
use leco::datasets::tables::{sensor_table, SensorDistribution};

fn main() -> std::io::Result<()> {
    let rows = 400_000;
    let table = sensor_table(rows, SensorDistribution::Correlated, 7);
    println!("sensor table: {rows} rows (ts, id, val), correlated distribution\n");

    let ts_lo = table.ts[rows / 2];
    let ts_hi = table.ts[rows / 2 + rows / 100]; // ~1% selectivity

    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "encoding", "file size", "IO ms", "CPU ms", "total ms", "groups"
    );
    for encoding in [
        Encoding::Default,
        Encoding::Delta,
        Encoding::For,
        Encoding::Leco,
    ] {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "leco-example-analytics-{:?}-{}.tbl",
            encoding,
            std::process::id()
        ));
        let file = TableFile::write(
            &path,
            &["ts", "id", "val"],
            &[table.ts.clone(), table.id.clone(), table.val.clone()],
            TableFileOptions {
                encoding,
                row_group_size: 100_000,
                ..Default::default()
            },
        )?;

        let mut stats = QueryStats::default();
        // SELECT AVG(val) FROM t WHERE ts BETWEEN lo AND hi GROUP BY id
        let bitmap = exec::filter_range(&file, 0, ts_lo, ts_hi, true, &mut stats)?;
        let groups = exec::group_by_avg(&file, 1, 2, &bitmap, &mut stats)?;

        println!(
            "{:<10} {:>9.1} MB {:>10.2} {:>10.2} {:>10.2} {:>8}",
            encoding.name(),
            file.file_size_bytes() as f64 / 1.0e6,
            stats.io_seconds * 1e3,
            stats.cpu_seconds * 1e3,
            stats.total_seconds() * 1e3,
            groups.len()
        );
        std::fs::remove_file(&path).ok();
    }
    println!(
        "\nLeCo gives the smallest file (least I/O) while keeping FOR-like random access for the"
    );
    println!("group-by phase — the combination behind the paper's up-to-5.2x end-to-end speedup.");
    Ok(())
}
