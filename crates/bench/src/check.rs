//! Benchmark-regression checking: compare a current `BENCH_*.json` report
//! against a committed baseline and report violations.
//!
//! Two metric classes, matching how reproducible each quantity is:
//!
//! * **Compression ratios** are deterministic given the data-set size and
//!   seed, so any increase over the baseline is a regression — compared
//!   *exactly* (a hair of parse epsilon only).
//! * **Throughputs / latencies** depend on the machine, so they only fail
//!   beyond a generous noise tolerance: a tripwire for order-of-magnitude
//!   regressions (a dropped fast path, an accidental O(n²)), not for run
//!   jitter.
//!
//! Which sections and columns mean what is declared per benchmark in
//! [`rules_for`]; rows are matched by their identity columns, and a row or
//! section present in the baseline but missing from the current report is
//! itself a violation (so a benchmark cannot silently stop measuring).
//! The `bench_check` binary (`src/bin/bench_check.rs`) wires this into CI's
//! `bench-gate` job.

use crate::report::Json;

/// How a metric column is compared against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Deterministic ratio: any increase is a regression.
    RatioExact,
    /// Higher is better (throughput): fail when current < baseline/(1+tol).
    HigherBetter,
    /// Lower is better (latency): fail when current > baseline·(1+tol).
    LowerBetter,
    /// Deterministic count: any drift, in either direction, is a counting
    /// bug (used for the obs registry's exact accounting metrics).
    Exact,
}

/// One comparison rule: which columns of which section to check, and how.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Section label inside the report (`sections[].label`).
    pub section: &'static str,
    /// Columns identifying a row within the section (matched exactly).
    pub key_columns: &'static [&'static str],
    /// Metric columns to compare; empty means "all non-key columns".
    pub value_columns: &'static [&'static str],
    /// Informational columns never gated (only meaningful with empty
    /// `value_columns`).
    pub skip_columns: &'static [&'static str],
    /// Comparison mode for the value columns.
    pub metric: Metric,
}

/// The comparison rules for a benchmark, by report name (`"bench"` field).
/// Returns an empty slice for reports without a gate (their presence is
/// still checked by the binary's file handling).
pub fn rules_for(bench: &str) -> &'static [Rule] {
    match bench {
        "fig10_micro" => &[
            Rule {
                section: "ratio",
                key_columns: &["dataset"],
                value_columns: &[],
                // "LeCo model%" is a size *breakdown*, not a compression
                // ratio: shrinking the payload raises it.  Informational.
                skip_columns: &["LeCo model%"],
                metric: Metric::RatioExact,
            },
            Rule {
                section: "access_ns",
                key_columns: &["dataset"],
                value_columns: &[],
                skip_columns: &[],
                metric: Metric::LowerBetter,
            },
            Rule {
                section: "decode",
                key_columns: &["dataset"],
                value_columns: &[],
                skip_columns: &[],
                metric: Metric::HigherBetter,
            },
        ],
        "fig16_partitioners" => &[Rule {
            section: "partitioners",
            key_columns: &["dataset", "partitioner"],
            value_columns: &["compression ratio"],
            skip_columns: &[],
            metric: Metric::RatioExact,
        }],
        "scan" => &[Rule {
            section: "scaling",
            key_columns: &["threads"],
            value_columns: &["rows_per_second"],
            skip_columns: &[],
            metric: Metric::HigherBetter,
        }],
        "scan_selectivity" => &[
            // The fraction of scanned rows the pushdown kernels had to
            // decode is deterministic (fixed seed, fixed LECO_N): any
            // increase means the model inverse lost coverage.
            Rule {
                section: "selectivity",
                key_columns: &["selectivity"],
                value_columns: &["decoded_fraction"],
                skip_columns: &[],
                metric: Metric::RatioExact,
            },
            // Wall-clock tripwire with the usual generous tolerance.
            Rule {
                section: "selectivity",
                key_columns: &["selectivity"],
                value_columns: &["pushdown_wall_seconds"],
                skip_columns: &[],
                metric: Metric::LowerBetter,
            },
        ],
        // Registry snapshot deltas around a read-ahead-free scan and a
        // seeded cache workload: deterministic given `LECO_N` and the
        // data-set seed, so they are held exactly in both directions.  The
        // `overhead` and `informational` sections are machine-dependent and
        // gated separately (`check_overhead`) or not at all.
        "scan_obs" => &[Rule {
            section: "deterministic",
            key_columns: &["metric"],
            value_columns: &["value"],
            skip_columns: &[],
            metric: Metric::Exact,
        }],
        // The served-database load test (`repro_serve`).  Every sweep point
        // must stay error-free — the load generator verifies reply
        // *contents*, so a single error means a correctness bug, not noise —
        // while throughput and median latency get the usual machine-noise
        // tripwire.  p95/p99 are informational: tail latencies on shared CI
        // runners are too jittery to gate.
        "serve" => &[
            Rule {
                section: "sweep",
                key_columns: &["connections", "target_qps"],
                value_columns: &["errors"],
                skip_columns: &[],
                metric: Metric::Exact,
            },
            Rule {
                section: "sweep",
                key_columns: &["connections", "target_qps"],
                value_columns: &["qps"],
                skip_columns: &[],
                metric: Metric::HigherBetter,
            },
            Rule {
                section: "sweep",
                key_columns: &["connections", "target_qps"],
                value_columns: &["p50_us"],
                skip_columns: &[],
                metric: Metric::LowerBetter,
            },
        ],
        // The write path (`repro_ingest`).  Recovery counts are
        // deterministic given `LECO_N` (replay of a fixed WAL) and held
        // exactly in both directions: `rows_recovered` must equal the rows
        // written and `replay_divergence` — the scan-visible difference
        // between the pre-kill and post-replay table — must stay zero.
        // Ingest / replay / compaction throughputs get the factor-of-4
        // machine-noise tripwire.
        "ingest" => &[
            Rule {
                section: "recovery",
                key_columns: &["phase"],
                value_columns: &["rows_recovered", "replay_divergence"],
                skip_columns: &[],
                metric: Metric::Exact,
            },
            Rule {
                section: "recovery",
                key_columns: &["phase"],
                value_columns: &["rows_per_second"],
                skip_columns: &[],
                metric: Metric::HigherBetter,
            },
            Rule {
                section: "ingest",
                key_columns: &["phase"],
                value_columns: &["rows_per_second"],
                skip_columns: &[],
                metric: Metric::HigherBetter,
            },
            Rule {
                section: "compaction",
                key_columns: &["phase"],
                value_columns: &["rows_per_second"],
                skip_columns: &[],
                metric: Metric::HigherBetter,
            },
        ],
        _ => &[],
    }
}

/// Absolute gate on the observability layer's cost: fail when any
/// `overhead_ratio` in the report's `overhead` section exceeds `max_ratio`.
/// Unlike [`compare_reports`] this checks the *current* report against a
/// fixed budget, not against a baseline — the acceptable overhead does not
/// drift with the machine that recorded the baseline.
pub fn check_overhead(current: &Json, max_ratio: f64) -> Vec<Violation> {
    let bench = current
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    let mut violations = Vec::new();
    let Some(rows) = section(current, "overhead").and_then(Json::as_arr) else {
        violations.push(Violation {
            bench,
            section: "overhead".into(),
            row: "-".into(),
            column: "-".into(),
            message: "overhead section missing from current report".into(),
        });
        return violations;
    };
    for row in rows {
        let key = row_key(row, &["experiment"]).unwrap_or_else(|| "-".into());
        match row.get("overhead_ratio").and_then(parse_metric) {
            Some(ratio) if ratio <= max_ratio => {}
            Some(ratio) => violations.push(Violation {
                bench: bench.clone(),
                section: "overhead".into(),
                row: key,
                column: "overhead_ratio".into(),
                message: format!(
                    "obs overhead {:.2}% exceeds the {:.2}% budget",
                    ratio * 100.0,
                    max_ratio * 100.0
                ),
            }),
            None => violations.push(Violation {
                bench: bench.clone(),
                section: "overhead".into(),
                row: key,
                column: "overhead_ratio".into(),
                message: "overhead_ratio missing or non-numeric".into(),
            }),
        }
    }
    violations
}

/// One detected regression (or structural mismatch).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Report name.
    pub bench: String,
    /// Section label.
    pub section: String,
    /// Identity of the row (joined key-column values).
    pub row: String,
    /// Column the violation is about.
    pub column: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} [{}] {}: {}",
            self.bench, self.section, self.row, self.column, self.message
        )
    }
}

/// Parse a metric cell: plain numbers pass through; `"12.3%"`, `"45ns"` and
/// `"2.30 GB/s"`-style suffixed strings are stripped to their number.
/// `None` for non-numeric cells (`"n/a"`, labels).
pub fn parse_metric(value: &Json) -> Option<f64> {
    match value {
        Json::Num(v) => Some(*v),
        Json::Str(s) => {
            let digits: String = s
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            if digits.is_empty() {
                None
            } else {
                digits.parse().ok()
            }
        }
        _ => None,
    }
}

fn section<'a>(report: &'a Json, label: &str) -> Option<&'a Json> {
    report
        .get("sections")?
        .as_arr()?
        .iter()
        .find(|s| s.get("label").and_then(Json::as_str) == Some(label))?
        .get("data")
}

fn row_key(row: &Json, key_columns: &[&str]) -> Option<String> {
    let mut parts = Vec::with_capacity(key_columns.len());
    for k in key_columns {
        let v = row.get(k)?;
        parts.push(match v {
            Json::Str(s) => s.clone(),
            Json::Num(n) => format!("{n}"),
            other => other.render(),
        });
    }
    Some(parts.join("/"))
}

fn columns_of(row: &Json) -> Vec<&str> {
    match row {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        _ => Vec::new(),
    }
}

/// Compare one current report against its baseline under the given rules.
/// `tolerance` is the relative noise band for throughput/latency metrics
/// (e.g. `0.5` = fail only beyond ±50%).
pub fn compare_reports(baseline: &Json, current: &Json, tolerance: f64) -> Vec<Violation> {
    let bench = baseline
        .get("bench")
        .and_then(Json::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    let mut violations = Vec::new();
    let mut fail = |section: &str, row: &str, column: &str, message: String| {
        violations.push(Violation {
            bench: bench.clone(),
            section: section.to_string(),
            row: row.to_string(),
            column: column.to_string(),
            message,
        });
    };
    for rule in rules_for(&bench) {
        let Some(base_rows) = section(baseline, rule.section).and_then(Json::as_arr) else {
            continue; // not in the baseline (e.g. optional --dp section)
        };
        let Some(cur_rows) = section(current, rule.section).and_then(Json::as_arr) else {
            fail(
                rule.section,
                "-",
                "-",
                "section missing from current report".into(),
            );
            continue;
        };
        for base_row in base_rows {
            let Some(key) = row_key(base_row, rule.key_columns) else {
                continue;
            };
            let Some(cur_row) = cur_rows
                .iter()
                .find(|r| row_key(r, rule.key_columns).as_deref() == Some(&key))
            else {
                fail(
                    rule.section,
                    &key,
                    "-",
                    "row missing from current report".into(),
                );
                continue;
            };
            let columns: Vec<&str> = if rule.value_columns.is_empty() {
                columns_of(base_row)
                    .into_iter()
                    .filter(|c| !rule.key_columns.contains(c) && !rule.skip_columns.contains(c))
                    .collect()
            } else {
                rule.value_columns.to_vec()
            };
            for column in columns {
                let (Some(base_cell), cur_cell) = (base_row.get(column), cur_row.get(column))
                else {
                    continue;
                };
                let Some(base_v) = parse_metric(base_cell) else {
                    continue; // "n/a" in the baseline: nothing to hold
                };
                let Some(cur_v) = cur_cell.and_then(parse_metric) else {
                    fail(
                        rule.section,
                        &key,
                        column,
                        "metric missing or non-numeric in current report".into(),
                    );
                    continue;
                };
                match rule.metric {
                    Metric::Exact => {
                        if (cur_v - base_v).abs() > 1e-9 {
                            fail(
                                rule.section,
                                &key,
                                column,
                                format!("deterministic metric drifted: {base_v} -> {cur_v}"),
                            );
                        }
                    }
                    Metric::RatioExact => {
                        if cur_v > base_v + 1e-9 {
                            fail(
                                rule.section,
                                &key,
                                column,
                                format!("ratio regressed: {base_v} -> {cur_v}"),
                            );
                        }
                    }
                    Metric::HigherBetter => {
                        // Ratio form so tolerances ≥ 1 stay meaningful
                        // (±tol means "within a factor of 1 + tol").
                        if cur_v < base_v / (1.0 + tolerance) {
                            fail(
                                rule.section,
                                &key,
                                column,
                                format!(
                                    "throughput regressed beyond {:.0}% tolerance: {base_v} -> {cur_v}",
                                    tolerance * 100.0
                                ),
                            );
                        }
                    }
                    Metric::LowerBetter => {
                        if cur_v > base_v * (1.0 + tolerance) {
                            fail(
                                rule.section,
                                &key,
                                column,
                                format!(
                                    "latency regressed beyond {:.0}% tolerance: {base_v} -> {cur_v}",
                                    tolerance * 100.0
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(bench: &str, section_label: &str, rows: Vec<Json>) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::Str(bench.into())),
            (
                "sections".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("label".into(), Json::Str(section_label.into())),
                    ("data".into(), Json::Arr(rows)),
                ])]),
            ),
        ])
    }

    fn fig16_row(dataset: &str, partitioner: &str, ratio: &str) -> Json {
        Json::Obj(vec![
            ("dataset".into(), Json::Str(dataset.into())),
            ("partitioner".into(), Json::Str(partitioner.into())),
            ("compression ratio".into(), Json::Str(ratio.into())),
            ("#partitions".into(), Json::Num(21.0)),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(
            "fig16_partitioners",
            "partitioners",
            vec![fig16_row("timestamps", "LeCo-var", "4.7%")],
        );
        assert!(compare_reports(&r, &r, 0.5).is_empty());
    }

    #[test]
    fn perturbed_ratio_fails_exactly() {
        let base = report(
            "fig16_partitioners",
            "partitioners",
            vec![fig16_row("timestamps", "LeCo-var", "4.7%")],
        );
        let worse = report(
            "fig16_partitioners",
            "partitioners",
            vec![fig16_row("timestamps", "LeCo-var", "4.8%")],
        );
        let violations = compare_reports(&base, &worse, 0.5);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("ratio regressed"));
        // Improvements are not violations.
        assert!(compare_reports(&worse, &base, 0.5).is_empty());
        // #partitions is informational, not gated.
        let more_parts = report(
            "fig16_partitioners",
            "partitioners",
            vec![Json::Obj(vec![
                ("dataset".into(), Json::Str("timestamps".into())),
                ("partitioner".into(), Json::Str("LeCo-var".into())),
                ("compression ratio".into(), Json::Str("4.7%".into())),
                ("#partitions".into(), Json::Num(99.0)),
            ])],
        );
        assert!(compare_reports(&base, &more_parts, 0.5).is_empty());
    }

    #[test]
    fn throughput_uses_noise_tolerance_both_ways() {
        let row = |rps: f64| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(1.0)),
                ("rows_per_second".into(), Json::Num(rps)),
                ("wall_seconds".into(), Json::Num(1.0)),
            ])
        };
        let base = report("scan", "scaling", vec![row(1.0e7)]);
        let within = report("scan", "scaling", vec![row(0.8e7)]);
        let beyond = report("scan", "scaling", vec![row(0.4e7)]);
        assert!(compare_reports(&base, &within, 0.5).is_empty());
        let violations = compare_reports(&base, &beyond, 0.5);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("throughput regressed"));
    }

    #[test]
    fn latency_direction_is_lower_better() {
        let row = |label: &str, ns: &str| {
            Json::Obj(vec![
                ("dataset".into(), Json::Str(label.into())),
                ("LeCo".into(), Json::Str(ns.into())),
            ])
        };
        let base = report("fig10_micro", "access_ns", vec![row("linear", "100ns")]);
        let slower = report("fig10_micro", "access_ns", vec![row("linear", "190ns")]);
        let way_slower = report("fig10_micro", "access_ns", vec![row("linear", "400ns")]);
        assert!(compare_reports(&base, &slower, 1.0).is_empty());
        assert_eq!(compare_reports(&base, &way_slower, 1.0).len(), 1);
    }

    #[test]
    fn missing_rows_and_sections_are_violations() {
        let base = report(
            "fig16_partitioners",
            "partitioners",
            vec![fig16_row("timestamps", "LeCo-var", "4.7%")],
        );
        let empty = report("fig16_partitioners", "partitioners", vec![]);
        assert_eq!(compare_reports(&base, &empty, 0.5).len(), 1);
        let no_section = report("fig16_partitioners", "other", vec![]);
        assert_eq!(compare_reports(&base, &no_section, 0.5).len(), 1);
    }

    #[test]
    fn n_a_cells_are_skipped() {
        let row = |cell: &str| {
            Json::Obj(vec![
                ("dataset".into(), Json::Str("movieid".into())),
                ("Elias-Fano".into(), Json::Str(cell.into())),
            ])
        };
        let base = report("fig10_micro", "ratio", vec![row("n/a")]);
        let cur = report("fig10_micro", "ratio", vec![row("n/a")]);
        assert!(compare_reports(&base, &cur, 0.5).is_empty());
    }

    #[test]
    fn model_share_column_is_informational() {
        // Shrinking the payload raises the model *share* even though every
        // actual ratio improved; the gate must not fire on it.
        let row = |share: &str| {
            Json::Obj(vec![
                ("dataset".into(), Json::Str("linear".into())),
                ("LeCo".into(), Json::Str("5.0%".into())),
                ("LeCo model%".into(), Json::Str(share.into())),
            ])
        };
        let base = report("fig10_micro", "ratio", vec![row("17.1%")]);
        let cur = report("fig10_micro", "ratio", vec![row("19.0%")]);
        assert!(compare_reports(&base, &cur, 0.5).is_empty());
    }

    #[test]
    fn tolerances_at_or_above_one_still_gate() {
        let row = |rps: f64| {
            Json::Obj(vec![
                ("threads".into(), Json::Num(1.0)),
                ("rows_per_second".into(), Json::Num(rps)),
            ])
        };
        // tol = 3.0 means "within a factor of 4".
        let base = report("scan", "scaling", vec![row(4.0e7)]);
        let within = report("scan", "scaling", vec![row(1.1e7)]);
        let beyond = report("scan", "scaling", vec![row(0.9e7)]);
        assert!(compare_reports(&base, &within, 3.0).is_empty());
        assert_eq!(compare_reports(&base, &beyond, 3.0).len(), 1);
    }

    #[test]
    fn exact_metric_fails_in_both_directions() {
        let row = |v: f64| {
            Json::Obj(vec![
                ("metric".into(), Json::Str("scan.morsels".into())),
                ("value".into(), Json::Num(v)),
            ])
        };
        let base = report("scan_obs", "deterministic", vec![row(40.0)]);
        let same = report("scan_obs", "deterministic", vec![row(40.0)]);
        let more = report("scan_obs", "deterministic", vec![row(41.0)]);
        let fewer = report("scan_obs", "deterministic", vec![row(39.0)]);
        assert!(compare_reports(&base, &same, 0.5).is_empty());
        // Unlike RatioExact, *any* drift is a violation — an undercount is
        // as much a counting bug as an overcount.
        assert_eq!(compare_reports(&base, &more, 0.5).len(), 1);
        assert_eq!(compare_reports(&base, &fewer, 0.5).len(), 1);
    }

    #[test]
    fn serve_gate_holds_errors_exactly_and_tripwires_performance() {
        let row = |qps: f64, p50: f64, errors: f64| {
            Json::Obj(vec![
                ("connections".into(), Json::Num(8.0)),
                ("target_qps".into(), Json::Num(0.0)),
                ("requests".into(), Json::Num(3200.0)),
                ("qps".into(), Json::Num(qps)),
                ("p50_us".into(), Json::Num(p50)),
                ("p95_us".into(), Json::Num(900.0)),
                ("p99_us".into(), Json::Num(2000.0)),
                ("errors".into(), Json::Num(errors)),
            ])
        };
        let base = report("serve", "sweep", vec![row(10_000.0, 100.0, 0.0)]);
        // Jitter within the factor-of-4 band passes; tails never gate.
        let jitter = report("serve", "sweep", vec![row(4_000.0, 350.0, 0.0)]);
        assert!(compare_reports(&base, &jitter, 3.0).is_empty());
        // A single verification error fails regardless of tolerance.
        let one_error = report("serve", "sweep", vec![row(10_000.0, 100.0, 1.0)]);
        let violations = compare_reports(&base, &one_error, 3.0);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].column, "errors");
        // Order-of-magnitude performance loss trips both directions' wires.
        let collapsed = report("serve", "sweep", vec![row(1_000.0, 2_000.0, 0.0)]);
        assert_eq!(compare_reports(&base, &collapsed, 3.0).len(), 2);
    }

    #[test]
    fn ingest_gate_holds_recovery_counts_exactly_and_tripwires_throughput() {
        let recovery_row = |recovered: f64, divergence: f64, rps: f64| {
            Json::Obj(vec![
                ("phase".into(), Json::Str("replay".into())),
                ("rows_recovered".into(), Json::Num(recovered)),
                ("replay_divergence".into(), Json::Num(divergence)),
                ("rows_per_second".into(), Json::Num(rps)),
            ])
        };
        let base = report("ingest", "recovery", vec![recovery_row(5000.0, 0.0, 1e6)]);
        // Throughput jitter within the factor-of-4 band passes.
        let jitter = report("ingest", "recovery", vec![recovery_row(5000.0, 0.0, 3e5)]);
        assert!(compare_reports(&base, &jitter, 3.0).is_empty());
        // A lost row fails regardless of tolerance — in either direction.
        let lost = report("ingest", "recovery", vec![recovery_row(4999.0, 0.0, 1e6)]);
        assert_eq!(compare_reports(&base, &lost, 3.0).len(), 1);
        let phantom = report("ingest", "recovery", vec![recovery_row(5001.0, 0.0, 1e6)]);
        assert_eq!(compare_reports(&base, &phantom, 3.0).len(), 1);
        // Any scan-visible divergence after replay is a correctness bug.
        let diverged = report("ingest", "recovery", vec![recovery_row(5000.0, 1.0, 1e6)]);
        let violations = compare_reports(&base, &diverged, 3.0);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].column, "replay_divergence");
        // An order-of-magnitude replay slowdown trips the wire.
        let slow = report("ingest", "recovery", vec![recovery_row(5000.0, 0.0, 2e5)]);
        assert_eq!(compare_reports(&base, &slow, 3.0).len(), 1);
    }

    #[test]
    fn overhead_gate_is_absolute() {
        let with_ratio = |ratio: f64| {
            report(
                "scan_obs",
                "overhead",
                vec![Json::Obj(vec![
                    ("experiment".into(), Json::Str("count_scan".into())),
                    ("overhead_ratio".into(), Json::Num(ratio)),
                ])],
            )
        };
        assert!(check_overhead(&with_ratio(0.02), 0.05).is_empty());
        // Negative overhead (obs-on happened to be faster) passes.
        assert!(check_overhead(&with_ratio(-0.01), 0.05).is_empty());
        let over = check_overhead(&with_ratio(0.09), 0.05);
        assert_eq!(over.len(), 1);
        assert!(over[0].message.contains("exceeds"));
        // A report without the section cannot silently pass the gate.
        let missing = report("scan_obs", "deterministic", vec![]);
        assert_eq!(check_overhead(&missing, 0.05).len(), 1);
    }

    #[test]
    fn parse_metric_strips_suffixes() {
        assert_eq!(parse_metric(&Json::Str("12.3%".into())), Some(12.3));
        assert_eq!(parse_metric(&Json::Str("45ns".into())), Some(45.0));
        assert_eq!(parse_metric(&Json::Str("2.30 GB/s".into())), Some(2.30));
        assert_eq!(parse_metric(&Json::Str("n/a".into())), None);
        assert_eq!(parse_metric(&Json::Num(7.5)), Some(7.5));
    }
}
