//! Measurement loops shared by the reproduction binaries (§4.2 methodology):
//! compress the whole data set, report the compression ratio and compression
//! throughput, perform uniformly random point accesses, then decode the whole
//! data set.

use crate::scheme::{encode, EncodedInts, Scheme};
use leco_obs::Stopwatch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Time `f`, returning `(result, seconds)`.
///
/// The one sanctioned wall-clock loop for the reproduction binaries: the
/// same duration is recorded into the `metric` histogram of the obs
/// registry, so the printed numbers and the exported telemetry cannot
/// drift apart.
pub fn timed<T>(metric: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let out = f();
    let secs = sw.elapsed_secs();
    leco_obs::histogram(metric).record_secs(secs);
    (out, secs)
}

/// Run `f` `runs` times (at least once), recording every run into `metric`,
/// and return the last result together with the best (minimum) seconds —
/// the best-of-N discipline the scan benchmarks use against scheduler noise.
pub fn best_of<T>(runs: usize, metric: &'static str, mut f: impl FnMut() -> T) -> (T, f64) {
    let runs = runs.max(1);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..runs {
        let (out, secs) = timed(metric, &mut f);
        best = best.min(secs);
        last = Some(out);
    }
    (last.expect("runs >= 1"), best)
}

/// Results of measuring one scheme on one data set.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Compressed size / uncompressed size (using the data set's value width).
    pub compression_ratio: f64,
    /// Fraction of the compressed size spent on models/headers.
    pub model_ratio: f64,
    /// Compression throughput in GB/s of raw input.
    pub compress_gbps: f64,
    /// Average random-access latency in nanoseconds.
    pub random_access_ns: f64,
    /// Full-decompression throughput in GB/s of raw output.
    pub decode_gbps: f64,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
}

/// Number of random accesses performed per measurement (the paper uses one
/// per element; we cap it so the harness stays fast on large inputs).
fn num_accesses(n: usize) -> usize {
    n.min(200_000)
}

/// Measure `scheme` on `values`, treating the uncompressed width as
/// `value_width` bytes.  Returns `None` when the scheme does not apply.
pub fn measure_scheme(scheme: Scheme, values: &[u64], value_width: usize) -> Option<Measurement> {
    let raw_bytes = values.len() * value_width;
    let (encoded, compress_secs) = timed("bench.compress_ns", || encode(scheme, values));
    let encoded = encoded?;
    Some(finish_measurement(
        &encoded,
        values,
        raw_bytes,
        compress_secs,
    ))
}

/// Measure an already-encoded column (used when the caller wants to reuse an
/// expensive encoding across measurements).
pub fn finish_measurement(
    encoded: &EncodedInts,
    values: &[u64],
    raw_bytes: usize,
    compress_secs: f64,
) -> Measurement {
    let mut rng = StdRng::seed_from_u64(0xACCE55);
    let accesses = num_accesses(values.len());
    let (checksum, ra_secs) = timed("bench.random_access_ns", || {
        let mut checksum = 0u64;
        for _ in 0..accesses {
            let i = rng.gen_range(0..values.len());
            checksum = checksum.wrapping_add(encoded.get(i));
        }
        checksum
    });
    std::hint::black_box(checksum);

    // Full decode goes through the word-parallel bulk path into a
    // pre-allocated buffer, so the throughput number measures decoding, not
    // the allocator.
    let mut decoded: Vec<u64> = Vec::with_capacity(values.len());
    let (_, decode_secs) = timed("bench.decode_ns", || encoded.decode_into(&mut decoded));
    std::hint::black_box(decoded.len());

    Measurement {
        compression_ratio: encoded.size_bytes() as f64 / raw_bytes as f64,
        model_ratio: if encoded.size_bytes() == 0 {
            0.0
        } else {
            encoded.model_size_bytes() as f64 / encoded.size_bytes() as f64
        },
        compress_gbps: raw_bytes as f64 / compress_secs / 1.0e9,
        random_access_ns: ra_secs * 1.0e9 / accesses as f64,
        decode_gbps: raw_bytes as f64 / decode_secs / 1.0e9,
        compressed_bytes: encoded.size_bytes(),
    }
}

/// Weighted average of per-data-set values, weighted by data-set length
/// (the aggregation used for Figure 2 and Table 1).
pub fn weighted_average(values: &[(f64, usize)]) -> f64 {
    let total: usize = values.iter().map(|(_, w)| w).sum();
    if total == 0 {
        return 0.0;
    }
    values.iter().map(|(v, w)| v * *w as f64).sum::<f64>() / total as f64
}

/// Weighted standard deviation matching [`weighted_average`].
pub fn weighted_std(values: &[(f64, usize)]) -> f64 {
    let mean = weighted_average(values);
    let total: usize = values.iter().map(|(_, w)| w).sum();
    if total == 0 {
        return 0.0;
    }
    let var = values
        .iter()
        .map(|(v, w)| (v - mean) * (v - mean) * *w as f64)
        .sum::<f64>()
        / total as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_fields_are_sane() {
        let values: Vec<u64> = (0..50_000u64).map(|i| 100 + 3 * i).collect();
        let m = measure_scheme(Scheme::LecoFix, &values, 8).unwrap();
        assert!(m.compression_ratio > 0.0 && m.compression_ratio < 0.2);
        assert!(m.random_access_ns > 0.0);
        assert!(m.decode_gbps > 0.0);
        assert!(m.compress_gbps > 0.0);
        assert!(m.model_ratio >= 0.0 && m.model_ratio <= 1.0);
    }

    #[test]
    fn weighted_stats() {
        let data = [(1.0, 1usize), (3.0, 3usize)];
        assert!((weighted_average(&data) - 2.5).abs() < 1e-9);
        assert!(weighted_std(&data) > 0.0);
        assert_eq!(weighted_average(&[]), 0.0);
    }
}
