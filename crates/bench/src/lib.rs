//! Shared harness code for the paper-reproduction binaries and Criterion
//! benchmarks.
//!
//! * [`Scheme`] — the seven compression schemes of the microbenchmark
//!   (Figure 10), encoded behind one object-safe interface so every
//!   experiment measures them identically.
//! * [`measure`] — compression-ratio / throughput / random-access-latency
//!   measurement loops.
//! * [`report`] — small fixed-width table printer so the binaries produce
//!   the same rows and series the paper reports, plus a hand-rolled JSON
//!   emitter/parser ([`report::Json`], [`report::BenchReport`]) through
//!   which every `repro_*` binary also writes a machine-readable
//!   `BENCH_*.json` (into `LECO_BENCH_DIR`, default the working directory).
//! * [`check`] — benchmark-regression comparison against the committed
//!   baselines in `BENCH_baseline/`: compression ratios exactly,
//!   throughput/latency within a noise tolerance.  Driven by the
//!   `bench_check` binary in CI's `bench-gate` job.
//!
//! Data-set sizes default to ~1M values and scale with the `LECO_SCALE`
//! environment variable (see `leco-datasets`); individual binaries also
//! honour `LECO_N` for an absolute override.
//!
//! Full-decode throughput is measured through the word-parallel
//! [`EncodedInts::decode_into`] bulk path into a pre-allocated buffer, so
//! the reported GB/s numbers (see the README's "Performance" section)
//! reflect decoding, not the allocator.  Serialized LeCo columns follow
//! `docs/FORMAT.md` at the repository root.
//!
//! ```
//! use leco_bench::scheme::{encode, Scheme};
//!
//! let values: Vec<u64> = (0..10_000u64).map(|i| 40 + i * 9).collect();
//! let leco = encode(Scheme::LecoFix, &values).unwrap();
//! assert_eq!(leco.get(7_777), values[7_777]);
//! let mut out = Vec::with_capacity(leco.len());
//! leco.decode_into(&mut out);
//! assert_eq!(out, values);
//! // Elias-Fano refuses non-monotone input, mirroring Figure 10's gaps.
//! assert!(encode(Scheme::EliasFano, &[3, 1, 2]).is_none());
//! ```

pub mod check;
pub mod measure;
pub mod report;
pub mod scheme;

pub use measure::{measure_scheme, Measurement};
pub use report::{BenchReport, Json};
pub use scheme::{encode, EncodedInts, Scheme};

/// Number of values to use for a microbenchmark data set, honouring
/// `LECO_N` (absolute) and `LECO_SCALE` (multiplier) environment variables.
pub fn bench_size() -> usize {
    if let Ok(n) = std::env::var("LECO_N") {
        if let Ok(n) = n.parse::<usize>() {
            return n.max(1_000);
        }
    }
    leco_datasets::default_size()
}

/// A smaller size for the expensive variable-length schemes and system
/// experiments (quarter of [`bench_size`], at least 100k).
pub fn small_bench_size() -> usize {
    (bench_size() / 4).max(100_000)
}
