//! Shared harness code for the paper-reproduction binaries and Criterion
//! benchmarks.
//!
//! * [`Scheme`] — the seven compression schemes of the microbenchmark
//!   (Figure 10), encoded behind one object-safe interface so every
//!   experiment measures them identically.
//! * [`measure`] — compression-ratio / throughput / random-access-latency
//!   measurement loops.
//! * [`report`] — small fixed-width table printer so the binaries produce
//!   the same rows and series the paper reports.
//!
//! Data-set sizes default to ~1M values and scale with the `LECO_SCALE`
//! environment variable (see `leco-datasets`); individual binaries also
//! honour `LECO_N` for an absolute override.

pub mod measure;
pub mod report;
pub mod scheme;

pub use measure::{measure_scheme, Measurement};
pub use scheme::{encode, EncodedInts, Scheme};

/// Number of values to use for a microbenchmark data set, honouring
/// `LECO_N` (absolute) and `LECO_SCALE` (multiplier) environment variables.
pub fn bench_size() -> usize {
    if let Ok(n) = std::env::var("LECO_N") {
        if let Ok(n) = n.parse::<usize>() {
            return n.max(1_000);
        }
    }
    leco_datasets::default_size()
}

/// A smaller size for the expensive variable-length schemes and system
/// experiments (quarter of [`bench_size`], at least 100k).
pub fn small_bench_size() -> usize {
    (bench_size() / 4).max(100_000)
}
