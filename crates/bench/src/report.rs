//! Minimal fixed-width table printing for the reproduction binaries, plus a
//! hand-rolled JSON emitter/parser so every binary can drop a
//! machine-readable `BENCH_*.json` next to its text tables (the vendored
//! `serde` shim has no real serialization, and the build environment cannot
//! fetch the genuine crate).

use std::io::Write;
use std::path::PathBuf;

/// A JSON value: the minimal tree the bench reports need.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// All numbers are f64, like JavaScript.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip float formatting; integers render
                    // without a fraction part.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{}", *v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.  Recursive-descent, strict enough for round-tripping
    /// our own output and the usual hand-edited configs.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                pos,
                message: "trailing characters after value".into(),
            });
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            pos: *pos,
            message: format!("expected {lit:?}"),
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            pos: *pos,
            message: "unexpected end of input".into(),
        }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            message: "expected ',' or ']'".into(),
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            message: "expected ',' or '}'".into(),
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            pos: *pos,
            message: "expected string".into(),
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    pos: *pos,
                    message: "unterminated string".into(),
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).copied().ok_or(JsonError {
                    pos: *pos,
                    message: "unterminated escape".into(),
                })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            pos: *pos,
                            message: "truncated \\u escape".into(),
                        })?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| JsonError {
                                pos: *pos,
                                message: "non-ascii \\u escape".into(),
                            })?,
                            16,
                        )
                        .map_err(|_| JsonError {
                            pos: *pos,
                            message: "bad \\u escape".into(),
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => {
                        return Err(JsonError {
                            pos: *pos,
                            message: "unknown escape".into(),
                        })
                    }
                }
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
                        pos: start,
                        message: "invalid UTF-8".into(),
                    })?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(JsonError {
            pos: start,
            message: "invalid number".into(),
        })
}

/// Collects the tables a reproduction binary prints and writes them as one
/// machine-readable `BENCH_<name>.json` file.
///
/// The file lands next to the process's working directory (or in
/// `LECO_BENCH_DIR` when set) and has the shape
/// `{"bench": name, "sections": [{"label": .., "rows": [{col: cell, ..}]}]}`
/// with numeric-looking cells emitted as JSON numbers.
pub struct BenchReport {
    name: String,
    sections: Vec<(String, Json)>,
}

impl BenchReport {
    /// Start a report for `BENCH_<name>.json`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            sections: Vec::new(),
        }
    }

    /// Append a printed table under a section label.
    pub fn add_table(&mut self, label: &str, table: &TextTable) {
        self.sections.push((label.to_string(), table.to_json()));
    }

    /// Append an arbitrary JSON value under a section label.
    pub fn add(&mut self, label: &str, value: Json) {
        self.sections.push((label.to_string(), value));
    }

    /// The report as a JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::Str(self.name.clone())),
            (
                "sections".into(),
                Json::Arr(
                    self.sections
                        .iter()
                        .map(|(label, value)| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(label.clone())),
                                ("data".into(), value.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Write `BENCH_<name>.json` (into `LECO_BENCH_DIR` or the current
    /// directory) and return its path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("LECO_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("."));
        self.write_to(&dir)
    }

    /// Write `BENCH_<name>.json` into `dir` and return its path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().render().as_bytes())?;
        file.write_all(b"\n")?;
        eprintln!("wrote {}", path.display());
        Ok(path)
    }
}

/// A simple text table with a header row and fixed-width columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must have the same arity as the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The table as a JSON array of row objects (header → cell).  Cells that
    /// parse as plain numbers become JSON numbers; everything else (units,
    /// percentages, labels) stays a string.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|row| {
                    Json::Obj(
                        self.header
                            .iter()
                            .zip(row)
                            .map(|(h, cell)| {
                                let value = match cell.parse::<f64>() {
                                    Ok(v) if v.is_finite() => Json::Num(v),
                                    _ => Json::Str(cell.clone()),
                                };
                                (h.clone(), value)
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

/// One-call JSON emission for the reproduction binaries: write
/// `BENCH_<name>.json` holding the given labelled tables.  Emission is
/// best-effort — a write failure is reported on stderr but never fails the
/// run, so the text tables (the primary output) always survive.
pub fn write_bench_json(name: &str, sections: &[(&str, &TextTable)]) {
    let mut report = BenchReport::new(name);
    for (label, table) in sections {
        report.add_table(label, table);
    }
    if let Err(e) = report.write() {
        eprintln!("failed to write BENCH_{name}.json: {e}");
    }
}

/// Convert recorded spans into the Chrome `trace_event` JSON format
/// (`chrome://tracing` / Perfetto's legacy loader): one complete event
/// (`"ph": "X"`) per span, timestamps and durations in microseconds, the
/// span-name prefix before the first `.` as the category.
pub fn chrome_trace(spans: &[leco_obs::SpanRecord]) -> Json {
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            let cat = s.name.split('.').next().unwrap_or(s.name);
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.to_string())),
                ("cat".into(), Json::Str(cat.to_string())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::Num(s.start_ns as f64 / 1_000.0)),
                ("dur".into(), Json::Num(s.dur_ns as f64 / 1_000.0)),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(s.tid as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Drain the span rings ([`leco_obs::take_spans`]) and write them to `path`
/// as a Chrome trace. Returns the number of spans exported.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let spans = leco_obs::take_spans();
    let mut file = std::fs::File::create(path)?;
    file.write_all(chrome_trace(&spans).render().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(spans.len())
}

/// Format a ratio as a percentage with one decimal, e.g. `12.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format bytes in a human-readable unit.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1}{}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["dataset", "ratio"]);
        t.row(vec!["linear", "1.2%"]);
        t.row(vec!["house_price", "33.0%"]);
        let s = t.render();
        assert!(s.contains("dataset"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        // The ratio column starts at the same offset on every data row.
        let off1 = lines[2].find("1.2%").unwrap();
        let off2 = lines[3].find("33.0%").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(human_bytes(512), "512.0B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    #[should_panic]
    fn row_arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn json_render_parse_round_trip() {
        let value = Json::Obj(vec![
            ("name".into(), Json::Str("scan \"fast\"\n".into())),
            ("threads".into(), Json::Num(8.0)),
            ("speedup".into(), Json::Num(3.25)),
            ("ok".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "rows".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("x".into())]),
            ),
        ]);
        let text = value.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, value);
        assert_eq!(back.get("threads").and_then(Json::as_f64), Some(8.0));
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("scan \"fast\"\n")
        );
        assert_eq!(
            back.get("rows").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn json_parser_accepts_whitespace_and_rejects_garbage() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2.5e1 , null ] } ").unwrap();
        assert_eq!(
            parsed.get("a").and_then(Json::as_arr).map(|a| a.to_vec()),
            Some(vec![Json::Num(1.0), Json::Num(25.0), Json::Null])
        );
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn table_to_json_types_cells() {
        let mut t = TextTable::new(vec!["scheme", "ratio", "ms"]);
        t.row(vec!["LeCo", "12.3%", "4.25"]);
        let json = t.to_json();
        let rows = json.as_arr().unwrap();
        assert_eq!(rows[0].get("scheme"), Some(&Json::Str("LeCo".into())));
        assert_eq!(rows[0].get("ratio"), Some(&Json::Str("12.3%".into())));
        assert_eq!(rows[0].get("ms"), Some(&Json::Num(4.25)));
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let spans = vec![
            leco_obs::SpanRecord {
                name: "scan.morsel",
                tid: 0,
                start_ns: 1_500,
                dur_ns: 10_000,
            },
            leco_obs::SpanRecord {
                name: "scan.morsel.filter",
                tid: 1,
                start_ns: 2_000,
                dur_ns: 3_000,
            },
        ];
        let json = chrome_trace(&spans);
        let back = Json::parse(&json.render()).unwrap();
        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(Json::as_str),
            Some("scan.morsel")
        );
        assert_eq!(events[0].get("cat").and_then(Json::as_str), Some("scan"));
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(10.0));
        assert_eq!(events[1].get("tid").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn bench_report_writes_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("leco-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut table = TextTable::new(vec!["threads", "throughput"]);
        table.row(vec!["1", "100.0"]);
        table.row(vec!["8", "320.5"]);
        let mut report = BenchReport::new("unit_test");
        report.add_table("scaling", &table);
        report.add("meta", Json::Obj(vec![("rows".into(), Json::Num(10.0))]));
        let path = report.write_to(&dir).unwrap();
        assert_eq!(path, dir.join("BENCH_unit_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(text.trim()).unwrap();
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("unit_test")
        );
        let sections = parsed.get("sections").and_then(Json::as_arr).unwrap();
        assert_eq!(sections.len(), 2);
        let rows = sections[0].get("data").and_then(Json::as_arr).unwrap();
        assert_eq!(
            rows[1].get("throughput").and_then(Json::as_f64),
            Some(320.5)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
