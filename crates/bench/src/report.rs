//! Minimal fixed-width table printing for the reproduction binaries.

/// A simple text table with a header row and fixed-width columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must have the same arity as the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a ratio as a percentage with one decimal, e.g. `12.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format bytes in a human-readable unit.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1}{}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["dataset", "ratio"]);
        t.row(vec!["linear", "1.2%"]);
        t.row(vec!["house_price", "33.0%"]);
        let s = t.render();
        assert!(s.contains("dataset"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        // The ratio column starts at the same offset on every data row.
        let off1 = lines[2].find("1.2%").unwrap();
        let off2 = lines[3].find("33.0%").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(human_bytes(512), "512.0B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0MB");
    }

    #[test]
    #[should_panic]
    fn row_arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
