//! The compression schemes compared in the microbenchmark, behind a single
//! interface.

use leco_codecs::{DeltaCodec, EliasFano, ForCodec, IntColumn, RansCodec};
use leco_core::delta_var::DeltaVarColumn;
use leco_core::{CompressedColumn, LecoCompressor, LecoConfig};

/// Fixed frame/partition length used by FOR and Delta-fix when a data set
/// specific search is not performed (the §4.2 setup searches per data set;
/// 1024 is a representative result and keeps the harness fast).
pub const DEFAULT_FRAME: usize = 1024;

/// The schemes of Figure 10 plus the polynomial LeCo variants of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Byte-oriented rANS entropy coder.
    Rans,
    /// Frame-of-Reference.
    For,
    /// Elias-Fano (monotone sequences only).
    EliasFano,
    /// Delta encoding with fixed frames.
    DeltaFix,
    /// Delta encoding with LeCo's variable-length partitioner.
    DeltaVar,
    /// LeCo, linear regressor, fixed-length partitions.
    LecoFix,
    /// LeCo, linear regressor, variable-length partitions.
    LecoVar,
    /// LeCo, polynomial regressor, fixed-length partitions.
    LecoPolyFix,
    /// LeCo, polynomial regressor, variable-length partitions.
    LecoPolyVar,
}

impl Scheme {
    /// The seven schemes of the Figure 10 microbenchmark.
    pub const MICROBENCH: [Scheme; 7] = [
        Scheme::Rans,
        Scheme::For,
        Scheme::EliasFano,
        Scheme::DeltaFix,
        Scheme::DeltaVar,
        Scheme::LecoFix,
        Scheme::LecoVar,
    ];

    /// Label used in output tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Rans => "rANS",
            Scheme::For => "FOR",
            Scheme::EliasFano => "Elias-Fano",
            Scheme::DeltaFix => "Delta",
            Scheme::DeltaVar => "Delta-var",
            Scheme::LecoFix => "LeCo",
            Scheme::LecoVar => "LeCo-var",
            Scheme::LecoPolyFix => "LeCo-Poly-fix",
            Scheme::LecoPolyVar => "LeCo-Poly-var",
        }
    }
}

/// A column encoded by one of the schemes.
pub enum EncodedInts {
    /// Any of the `leco-codecs` baselines.
    Codec(Box<dyn IntColumn + Send + Sync>),
    /// Delta with variable-length partitions.
    DeltaVar(DeltaVarColumn),
    /// A LeCo column.
    Leco(CompressedColumn),
}

impl EncodedInts {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            EncodedInts::Codec(c) => c.len(),
            EncodedInts::DeltaVar(c) => c.len(),
            EncodedInts::Leco(c) => c.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            EncodedInts::Codec(c) => c.size_bytes(),
            EncodedInts::DeltaVar(c) => c.size_bytes(),
            EncodedInts::Leco(c) => c.size_bytes(),
        }
    }

    /// Bytes spent on models / headers rather than packed deltas (the model
    /// size breakdown of Figure 10); zero for schemes where the distinction
    /// does not apply.
    pub fn model_size_bytes(&self) -> usize {
        match self {
            EncodedInts::Leco(c) => c.model_size_bytes(),
            _ => 0,
        }
    }

    /// Random access.
    pub fn get(&self, i: usize) -> u64 {
        match self {
            EncodedInts::Codec(c) => c.get(i),
            EncodedInts::DeltaVar(c) => c.get(i),
            EncodedInts::Leco(c) => c.get(i),
        }
    }

    /// Full decompression into a caller-provided buffer (the word-parallel
    /// bulk path, allocation-free when the buffer is reused across runs).
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        match self {
            EncodedInts::Codec(c) => c.decode_into(out),
            EncodedInts::DeltaVar(c) => c.decode_into(out),
            EncodedInts::Leco(c) => c.decode_into(out),
        }
    }

    /// Full decompression.
    pub fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        self.decode_into(&mut out);
        out
    }
}

/// Encode `values` with `scheme`.  Returns `None` when the scheme does not
/// apply (Elias-Fano on non-monotone data, mirroring the gaps in Figure 10).
pub fn encode(scheme: Scheme, values: &[u64]) -> Option<EncodedInts> {
    Some(match scheme {
        Scheme::Rans => EncodedInts::Codec(Box::new(RansCodec::encode(values))),
        Scheme::For => EncodedInts::Codec(Box::new(ForCodec::encode(values, DEFAULT_FRAME))),
        Scheme::EliasFano => match EliasFano::encode(values) {
            Ok(ef) => EncodedInts::Codec(Box::new(ef)),
            Err(_) => return None,
        },
        Scheme::DeltaFix => EncodedInts::Codec(Box::new(DeltaCodec::encode(values, DEFAULT_FRAME))),
        Scheme::DeltaVar => EncodedInts::DeltaVar(DeltaVarColumn::encode(values)),
        Scheme::LecoFix => EncodedInts::Leco(
            LecoCompressor::new(LecoConfig::leco_fix_with_len(DEFAULT_FRAME)).compress(values),
        ),
        Scheme::LecoVar => {
            EncodedInts::Leco(LecoCompressor::new(LecoConfig::leco_var()).compress(values))
        }
        Scheme::LecoPolyFix => EncodedInts::Leco(
            LecoCompressor::new(LecoConfig {
                regressor: leco_core::RegressorKind::Poly3,
                partitioner: leco_core::PartitionerKind::Fixed { len: DEFAULT_FRAME },
            })
            .compress(values),
        ),
        Scheme::LecoPolyVar => {
            EncodedInts::Leco(LecoCompressor::new(LecoConfig::leco_poly_var()).compress(values))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_round_trip_on_sorted_data() {
        let values: Vec<u64> = (0..20_000u64).map(|i| i * 5 + (i % 3)).collect();
        for scheme in Scheme::MICROBENCH {
            let enc = encode(scheme, &values).expect("sorted data supports every scheme");
            assert_eq!(enc.decode_all(), values, "{scheme:?}");
            assert_eq!(enc.get(12_345), values[12_345], "{scheme:?}");
            assert!(enc.size_bytes() > 0);
        }
    }

    #[test]
    fn elias_fano_is_skipped_on_unsorted_data() {
        let values = vec![5u64, 3, 7];
        assert!(encode(Scheme::EliasFano, &values).is_none());
        assert!(encode(Scheme::LecoFix, &values).is_some());
    }
}
