//! Figure 22: key-value store seek throughput versus block-cache size for the
//! RocksDB-style restart-interval index formats (RI = 1 / 16 / 128) and the
//! LeCo-compressed index (§5.2), plus the per-format index compression ratios.

use leco_bench::report::{write_bench_json, TextTable};
use leco_datasets::zipf::Zipf;
use leco_kvstore::{run_seek_workload, IndexBlockFormat, Store, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // Record count scaled for a laptop: the paper loads 900M 420-byte records
    // (~110 GB); we keep the same record shape at a smaller count.
    let records_n = (leco_bench::small_bench_size() / 2).clamp(50_000, 2_000_000);
    let queries_n = records_n.min(200_000);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(16);
    println!("# Figure 22 — KV-store seek throughput ({records_n} records, {queries_n} zipfian seeks, {threads} threads)\n");

    // 20-byte keys, 400-byte values (the RocksDB performance-benchmark shape).
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..records_n)
        .map(|i| {
            (
                format!("user{:016}", i as u64 * 7919).into_bytes(),
                vec![b'v'; 400],
            )
        })
        .collect();
    let zipf = Zipf::ycsb_skewed(records_n);
    let mut rng = StdRng::seed_from_u64(42);
    let queries: Vec<Vec<u8>> = zipf
        .sample_many(queries_n, &mut rng)
        .into_iter()
        .map(|rank| records[rank].0.clone())
        .collect();

    let formats = [
        IndexBlockFormat::RestartInterval(1),
        IndexBlockFormat::RestartInterval(16),
        IndexBlockFormat::RestartInterval(128),
        IndexBlockFormat::Leco,
    ];

    // Index compression ratios (relative to the uncompressed RI=1 index).
    let mut sizes = TextTable::new(vec!["index format", "index size", "ratio vs RI=1"]);
    let mut baseline_bytes = 0usize;
    for format in formats {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "leco-fig22-size-{}-{}.sst",
            format.name(),
            std::process::id()
        ));
        let store = Store::load(
            &path,
            &records,
            StoreOptions {
                index_format: format,
                block_cache_bytes: 1 << 20,
            },
        )?;
        if baseline_bytes == 0 {
            baseline_bytes = store.index_size_bytes();
        }
        sizes.row(vec![
            format.name(),
            format!("{} KB", store.index_size_bytes() / 1024),
            format!(
                "{:.1}%",
                store.index_size_bytes() as f64 / baseline_bytes as f64 * 100.0
            ),
        ]);
        std::fs::remove_file(&path).ok();
    }
    println!("## Index block footprint\n");
    sizes.print();

    // Seek throughput versus block-cache budget.  Cache budgets are chosen as
    // fractions of the data size, mirroring the paper's 2–10 GB sweep.
    let data_bytes = records_n as u64 * 420;
    let budgets: Vec<(String, usize)> = [0.02f64, 0.05, 0.1, 0.2, 0.5]
        .iter()
        .map(|f| {
            (
                format!("{:.0}%", f * 100.0),
                (data_bytes as f64 * f) as usize,
            )
        })
        .collect();
    let mut tput = TextTable::new(vec![
        "cache (of data size)",
        "Baseline_1",
        "Baseline_16",
        "Baseline_128",
        "LeCo",
        "LeCo vs best baseline",
    ]);
    for (label, budget) in budgets {
        let mut row = vec![label.clone()];
        let mut results = Vec::new();
        for format in formats {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "leco-fig22-run-{}-{}-{}.sst",
                format.name(),
                budget,
                std::process::id()
            ));
            let store = Arc::new(Store::load(
                &path,
                &records,
                StoreOptions {
                    index_format: format,
                    block_cache_bytes: budget,
                },
            )?);
            let ops_per_sec = run_seek_workload(&store, &queries, threads);
            results.push(ops_per_sec);
            row.push(format!("{:.2} Mop/s", ops_per_sec / 1.0e6));
            std::fs::remove_file(&path).ok();
        }
        let best_baseline = results[..3].iter().cloned().fold(f64::MIN, f64::max);
        row.push(format!(
            "{:+.1}%",
            (results[3] / best_baseline - 1.0) * 100.0
        ));
        tput.row(row);
        eprintln!("  finished cache budget {label}");
    }
    println!("\n## Seek throughput vs block-cache size\n");
    tput.print();
    write_bench_json(
        "fig22_kvstore",
        &[("index_sizes", &sizes), ("seek_throughput", &tput)],
    );
    println!(
        "\nPaper reference (Fig. 22): LeCo-compressed index blocks beat the best RocksDB restart-"
    );
    println!(
        "interval configuration by up to 16%, with the advantage largest at small cache sizes"
    );
    println!(
        "(smaller index → more data blocks cached) while avoiding Delta's per-lookup decode cost."
    );
    Ok(())
}
