//! Figure 17: hyper-parameter robustness — sweep the split aggressiveness τ
//! of LeCo-var and the error bound ε of LeCo-PLA on `booksale` and report the
//! resulting compression ratios.

use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_core::{LecoCompressor, LecoConfig, PartitionerKind, RegressorKind};
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::small_bench_size().min(400_000);
    let values = generate(IntDataset::Booksale, n, 42);
    let width = IntDataset::Booksale.value_width();
    let raw = (values.len() * width) as f64;
    println!("# Figure 17 — hyper-parameter robustness on booksale ({n} values)\n");

    let mut var = TextTable::new(vec!["LeCo-var tau", "compression ratio"]);
    for tau in [0.0, 0.04, 0.08, 0.12, 0.16, 0.20] {
        let col = LecoCompressor::new(LecoConfig {
            regressor: RegressorKind::Linear,
            partitioner: PartitionerKind::SplitMerge { tau },
        })
        .compress(&values);
        var.row(vec![
            format!("{tau:.2}"),
            pct(col.size_bytes() as f64 / raw),
        ]);
        eprintln!("  finished tau {tau}");
    }
    println!("## LeCo-var: sweep of the split threshold τ\n");
    var.print();

    let mut pla = TextTable::new(vec!["LeCo-PLA log2(epsilon)", "compression ratio"]);
    for log_eps in 3u32..=13 {
        let col = LecoCompressor::new(LecoConfig {
            regressor: RegressorKind::Linear,
            partitioner: PartitionerKind::Pla {
                epsilon: 1 << log_eps,
            },
        })
        .compress(&values);
        pla.row(vec![
            format!("{log_eps}"),
            pct(col.size_bytes() as f64 / raw),
        ]);
        eprintln!("  finished epsilon 2^{log_eps}");
    }
    println!("\n## LeCo-PLA: sweep of the error bound ε\n");
    pla.print();
    write_bench_json(
        "fig17_robustness",
        &[("leco_var_tau", &var), ("leco_pla_eps", &pla)],
    );
    println!(
        "\nPaper reference (Fig. 17): LeCo-var's ratio is nearly flat across τ, while LeCo-PLA's"
    );
    println!("ratio varies strongly with ε (and is worse at its best point).");
}
