//! Figure 12: compression ratio on the `cosmos` data set for increasingly
//! informed models — rANS, FOR, LeCo-fix/var, polynomial LeCo, one sine term,
//! two sine terms, and two sine terms with the known frequencies (§4.4).

use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_bench::scheme::{encode, Scheme};
use leco_core::regressor::FitContext;
use leco_core::{LecoCompressor, LecoConfig, PartitionerKind, RegressorKind};
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::small_bench_size().min(500_000);
    let values = generate(IntDataset::Cosmos, n, 42);
    let width = IntDataset::Cosmos.value_width();
    let raw = (values.len() * width) as f64;
    println!("# Figure 12 — compression ratio on cosmos ({n} values)\n");
    let mut table = TextTable::new(vec!["configuration", "compression ratio"]);

    for scheme in [
        Scheme::Rans,
        Scheme::For,
        Scheme::LecoFix,
        Scheme::LecoVar,
        Scheme::LecoPolyFix,
        Scheme::LecoPolyVar,
    ] {
        if let Some(enc) = encode(scheme, &values) {
            table.row(vec![
                scheme.name().to_string(),
                pct(enc.size_bytes() as f64 / raw),
            ]);
        }
        eprintln!("  finished {}", scheme.name());
    }

    // Sine-aware configurations, fixed partitions of 10k entries.
    let partition = PartitionerKind::Fixed { len: 10_000 };
    let sine = |terms: u8, estimate: bool, ctx: FitContext| {
        let config = LecoConfig {
            regressor: RegressorKind::Sine {
                terms,
                estimate_freq: estimate,
            },
            partitioner: partition.clone(),
        };
        let col = LecoCompressor::with_context(config, ctx).compress(&values);
        col.size_bytes() as f64 / raw
    };
    table.row(vec![
        "sin (1 estimated term)".to_string(),
        pct(sine(1, true, FitContext::default())),
    ]);
    eprintln!("  finished sin");
    table.row(vec![
        "2sin (2 estimated terms)".to_string(),
        pct(sine(2, true, FitContext::default())),
    ]);
    eprintln!("  finished 2sin");
    // The generator's true angular frequencies (§4.1 footnote): 1/(60π) and 3/(60π).
    let omega1 = 1.0 / (60.0 * std::f64::consts::PI);
    let ctx = FitContext {
        known_frequencies: vec![omega1, 3.0 * omega1],
    };
    table.row(vec![
        "2sin-freq (known frequencies)".to_string(),
        pct(sine(2, false, ctx)),
    ]);
    eprintln!("  finished 2sin-freq");

    table.print();
    write_bench_json("fig12_cosmos", &[("cosmos", &table)]);
    println!("\nPaper reference (Fig. 12): 82.2 / 61.4 / 54.6 / 50.5 / 42.3 / 41.8 / 36.7 / 25.8 / 21.1 (%);");
    println!("each additional piece of domain knowledge (sine terms, known frequencies) buys more compression.");
}
