//! Figure 5: compression ratio as a function of the fixed partition size on
//! `booksale` and `normal` — the "U-shape" that motivates the automatic
//! block-size search of §3.2.1.

use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_core::{LecoCompressor, LecoConfig};
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::bench_size();
    println!("# Figure 5 — compression ratio vs fixed partition size ({n} values)\n");
    let sizes = [100usize, 1_000, 10_000, 100_000, 1_000_000];
    let mut table = TextTable::new(vec!["block size", "booksale", "normal"]);
    let booksale = generate(IntDataset::Booksale, n, 42);
    let normal = generate(IntDataset::Normal, n, 42);
    for &size in &sizes {
        let ratio = |values: &Vec<u64>, width: usize| {
            let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(size.min(values.len())))
                .compress(values);
            col.size_bytes() as f64 / (values.len() * width) as f64
        };
        table.row(vec![
            format!("{size}"),
            pct(ratio(&booksale, IntDataset::Booksale.value_width())),
            pct(ratio(&normal, IntDataset::Normal.value_width())),
        ]);
        eprintln!("  finished block size {size}");
    }
    // The automatically searched size for reference.
    let auto = LecoCompressor::new(LecoConfig::leco_fix()).compress(&booksale);
    println!();
    table.print();
    write_bench_json("fig05_blocksize", &[("blocksize", &table)]);
    println!(
        "\nAuto-searched partition size on booksale gives ratio {} with {} partitions.",
        pct(auto.size_bytes() as f64 / (booksale.len() * 4) as f64),
        auto.num_partitions()
    );
    println!(
        "\nPaper reference (Fig. 5): the ratio is U-shaped in the block size; the sampling-based"
    );
    println!("search should land near the bottom of the U.");
}
