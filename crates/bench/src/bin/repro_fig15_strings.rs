//! Figure 15: string benchmark — FSST (with delta-coded offset blocks of
//! 0/20/40/60/80/100 strings) versus LeCo's string extension (reduced and
//! full-byte character sets) on `email`, `hex` and `word`.

use leco_bench::measure::timed;
use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_codecs::FsstLike;
use leco_core::string::{CompressedStrings, StringConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_access_ns(len: usize, mut get: impl FnMut(usize) -> usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(0x57);
    let accesses = 50_000.min(len);
    let (sink, secs) = timed("bench.random_access_ns", || {
        let mut sink = 0usize;
        for _ in 0..accesses {
            sink = sink.wrapping_add(get(rng.gen_range(0..len)));
        }
        sink
    });
    std::hint::black_box(sink);
    secs * 1.0e9 / accesses as f64
}

fn main() {
    let n = (leco_bench::small_bench_size() / 2).clamp(30_000, 250_000);
    let mut rng = StdRng::seed_from_u64(42);
    let datasets: Vec<(&str, Vec<Vec<u8>>)> = vec![
        ("email", leco_datasets::strings::email(n, &mut rng)),
        ("hex", leco_datasets::strings::hex(n, &mut rng)),
        ("word", leco_datasets::strings::word(n, &mut rng)),
    ];
    println!("# Figure 15 — string compression ({n} strings per data set)\n");
    let mut table = TextTable::new(vec![
        "dataset",
        "configuration",
        "compression ratio",
        "random access (ns)",
    ]);

    for (name, strings) in &datasets {
        // FSST with different offset-delta block sizes.
        for block in [0usize, 20, 40, 60, 80, 100] {
            let c = FsstLike::encode(strings, block);
            let ratio = c.compression_ratio(strings);
            let ns = random_access_ns(strings.len(), |i| c.get(i).len());
            table.row(vec![
                name.to_string(),
                format!("FSST (offset block {block})"),
                pct(ratio),
                format!("{ns:.0}"),
            ]);
        }
        // LeCo string extension with reduced and full-byte character sets.
        let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
        for (label, full_byte) in [
            ("LeCo (reduced charset)", false),
            ("LeCo (full-byte charset)", true),
        ] {
            let c = CompressedStrings::encode(
                &refs,
                StringConfig {
                    partition_len: 1024,
                    full_byte_charset: full_byte,
                },
            );
            let ns = random_access_ns(strings.len(), |i| c.get(i).len());
            table.row(vec![
                name.to_string(),
                label.to_string(),
                pct(c.compression_ratio()),
                format!("{ns:.0}"),
            ]);
        }
        eprintln!("  finished {name}");
    }
    table.print();
    write_bench_json("fig15_strings", &[("strings", &table)]);
    println!(
        "\nPaper reference (Fig. 15): LeCo's string extension offers faster random access at a"
    );
    println!("competitive ratio on email/hex; FSST compresses better on natural-language words.");
}
