//! Figure 18: the end-to-end filter → group-by → aggregation query of §5.1.1
//! on the sensor table, under the `random` and `correlated` distributions,
//! sweeping the filter selectivity and reporting the CPU/IO time breakdown
//! per encoding (Default, Delta, FOR, LeCo).

use leco_bench::report::{BenchReport, TextTable};

const REPORT_NAME: &str = "fig18_fga";
use leco_columnar::{exec, Encoding, QueryStats, TableFile, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};

const ENCODINGS: [Encoding; 4] = [
    Encoding::Default,
    Encoding::Delta,
    Encoding::For,
    Encoding::Leco,
];
const SELECTIVITIES: [f64; 5] = [0.00001, 0.0001, 0.001, 0.01, 0.1];

fn main() -> std::io::Result<()> {
    let rows = leco_bench::small_bench_size();
    println!("# Figure 18 — filter-groupby-aggregation ({rows} rows)\n");
    let mut report = BenchReport::new(REPORT_NAME);
    for dist in [SensorDistribution::Random, SensorDistribution::Correlated] {
        let t = sensor_table(rows, dist, 42);
        println!("## distribution: {dist:?}\n");
        let mut table = TextTable::new(vec![
            "selectivity",
            "encoding",
            "file size (MB)",
            "IO (ms)",
            "filter+groupby CPU (ms)",
            "total (ms)",
            "groups",
        ]);
        // Write one file per encoding.
        let mut files = Vec::new();
        for enc in ENCODINGS {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "leco-fig18-{:?}-{:?}-{}.tbl",
                dist,
                enc,
                std::process::id()
            ));
            let file = TableFile::write(
                &path,
                &["ts", "id", "val"],
                &[t.ts.clone(), t.id.clone(), t.val.clone()],
                TableFileOptions {
                    encoding: enc,
                    row_group_size: 100_000,
                    ..Default::default()
                },
            )?;
            files.push((enc, file, path));
        }
        let ts_min = *t.ts.first().expect("rows > 0");
        let ts_max = *t.ts.last().expect("rows > 0");
        for selectivity in SELECTIVITIES {
            // Time range sized to the requested selectivity (ts is nearly
            // uniform over its range for this generator).
            let span = ((ts_max - ts_min) as f64 * selectivity) as u64;
            let lo = ts_min + (ts_max - ts_min) / 3;
            let hi = lo + span.max(1);
            for (enc, file, _) in &files {
                let mut stats = QueryStats::default();
                let bitmap = exec::filter_range(file, 0, lo, hi, true, &mut stats)?;
                let groups = exec::group_by_avg(file, 1, 2, &bitmap, &mut stats)?;
                table.row(vec![
                    format!("{:.3}%", selectivity * 100.0),
                    enc.name().to_string(),
                    format!("{:.1}", file.file_size_bytes() as f64 / 1.0e6),
                    format!("{:.2}", stats.io_seconds * 1_000.0),
                    format!("{:.2}", stats.cpu_seconds * 1_000.0),
                    format!("{:.2}", stats.total_seconds() * 1_000.0),
                    format!("{}", groups.len()),
                ]);
            }
            eprintln!("  finished selectivity {selectivity}");
        }
        table.print();
        report.add_table(&format!("{dist:?}"), &table);
        println!();
        for (_, _, path) in files {
            std::fs::remove_file(path).ok();
        }
    }
    if let Err(e) = report.write() {
        eprintln!("failed to write BENCH_{REPORT_NAME}.json: {e}");
    }
    println!("Paper reference (Fig. 18): every lightweight encoding beats Default thanks to I/O savings;");
    println!(
        "LeCo beats Delta on CPU (random access during group-by) and beats FOR on I/O, with the"
    );
    println!("advantage growing on the correlated distribution (up to 5.2x vs Default).");
    Ok(())
}
