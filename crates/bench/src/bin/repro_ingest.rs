//! `repro_ingest` — write-path benchmark for the WAL-backed `leco-ingest`
//! crate: fsync'd single-row commits, batched ingestion, crash recovery by
//! WAL replay, and compaction through the partitioner into LeCo row groups.
//!
//! Phases (each lands as a row in `BENCH_ingest.json`, gated by
//! `bench_check` — see `leco_bench::check::rules_for("ingest")`):
//!
//! * `single_put` / `batch_put` — ingest throughput with one fsync'd WAL
//!   commit per call (factor-of-4 tripwire).
//! * `replay` — drop the table without flushing (the in-memory state is the
//!   crash casualty; the WAL survives), reopen, and time the replay.
//!   `rows_recovered` and `replay_divergence` (any scan-visible difference
//!   between the pre-kill table and the replayed one) are deterministic
//!   given `LECO_N` and are gated **exactly**: a lost row, a phantom row, or
//!   a resurrected delete is a correctness bug, not machine noise.
//! * `flush` — compaction throughput freezing the memtable and flushing
//!   everything through the partitioner into immutable row-group files,
//!   after which the same scans must still answer bit-identically.
//!
//! Defaults to 2M rows; override with `LECO_N`.  The emitted report is
//! immediately re-parsed with the report reader as a self-check.

use leco_bench::measure::timed;
use leco_bench::report::{BenchReport, Json, TextTable};
use leco_ingest::{IngestConfig, LiveTable, ScanOutput, ScanSpec};

/// Rows committed one-by-one (one fsync each) before batching takes over.
const SINGLE_PUTS: usize = 512;
/// Keys deleted after ingest — replay must not resurrect them.
const DELETES: u64 = 256;
/// Rows per fsync'd batch commit.
const BATCH_ROWS: usize = 4096;
/// Thread counts every verification scan is repeated at.
const THREADS: [usize; 3] = [1, 2, 4];

fn row_for(i: u64) -> [u64; 3] {
    [i, i % 32, (i.wrapping_mul(7919)) % 100_000]
}

/// The three scans whose answers define "the same table": full count, a
/// filtered sum, and a group-by average.
fn probes() -> [ScanSpec; 3] {
    [
        ScanSpec::count(),
        ScanSpec::default()
            .filter("key", 100, u64::MAX / 2)
            .sum("val"),
        ScanSpec::default().group_by_avg("id", "val"),
    ]
}

/// Run every probe at every thread count, asserting bit-identity across
/// thread counts, and return the single-threaded outputs as the signature.
fn signature(table: &LiveTable, when: &str) -> Vec<ScanOutput> {
    let mut outs = Vec::new();
    for spec in probes() {
        let base = table.scan(&spec, 1).expect("scan should not fail");
        for threads in &THREADS[1..] {
            let other = table.scan(&spec, *threads).expect("scan should not fail");
            assert_eq!(
                base.rows_scanned, other.rows_scanned,
                "{when}: rows_scanned diverged at {threads} threads"
            );
            assert_eq!(base.rows_selected, other.rows_selected, "{when}");
            assert_eq!(base.sum, other.sum, "{when}");
            assert_eq!(base.group_partials, other.group_partials, "{when}");
            for (a, b) in base.groups.iter().zip(&other.groups) {
                assert_eq!(a.0, b.0, "{when}");
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "{when}: group {}", a.0);
            }
        }
        outs.push(base);
    }
    outs
}

/// `0` when two signatures agree on every exact integer partial, else the
/// number of probes that diverged — the quantity the CI gate holds at zero.
fn divergence(a: &[ScanOutput], b: &[ScanOutput]) -> u64 {
    a.iter()
        .zip(b)
        .filter(|(x, y)| {
            x.rows_scanned != y.rows_scanned
                || x.rows_selected != y.rows_selected
                || x.sum != y.sum
                || x.group_partials != y.group_partials
        })
        .count() as u64
}

fn main() -> std::io::Result<()> {
    let rows = std::env::var("LECO_N")
        .ok()
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(2_000_000)
        .max(10 * SINGLE_PUTS);
    println!("# Write path — WAL commits, replay recovery, compaction ({rows} rows)\n");

    let mut dir = std::env::temp_dir();
    dir.push(format!("leco-repro-ingest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = IngestConfig {
        segment_rows: 65_536,
        compact_min_segments: 2,
        row_group_size: 8_192,
        auto_compact: false,
        key_col: 0,
    };
    let table = LiveTable::open(&dir, &["key", "id", "val"], config)?;

    // ── Ingest: single fsync'd commits, then batched commits.
    let data: Vec<[u64; 3]> = (0..rows as u64).map(row_for).collect();
    let (_, single_secs) = timed("bench.ingest_ns", || {
        for row in &data[..SINGLE_PUTS] {
            table.put(row).expect("put should not fail");
        }
    });
    let (_, batch_secs) = timed("bench.ingest_ns", || {
        for chunk in data[SINGLE_PUTS..].chunks(BATCH_ROWS) {
            let refs: Vec<&[u64]> = chunk.iter().map(|r| r.as_slice()).collect();
            table.put_batch(&refs).expect("put_batch should not fail");
        }
    });
    // Deletes land in the WAL too; replay must keep them deleted.
    for key in 0..DELETES {
        table.delete(key)?;
    }
    let single_rps = SINGLE_PUTS as f64 / single_secs.max(1e-9);
    let batch_rps = (rows - SINGLE_PUTS) as f64 / batch_secs.max(1e-9);
    let live_rows = (rows as u64) - DELETES;
    eprintln!(
        "ingested {rows} rows ({SINGLE_PUTS} single + batched), deleted {DELETES}: \
         {:.0} rows/s single, {:.0} rows/s batched",
        single_rps, batch_rps
    );

    // ── Crash: the pre-kill scan signature is the ground truth; dropping
    // the handle discards every in-memory structure, leaving only the WAL.
    let before = signature(&table, "pre-kill");
    assert_eq!(before[0].rows_scanned, live_rows, "pre-kill row count");
    let wal_bytes = std::fs::metadata(table.wal_path())?.len();
    drop(table);

    let (table, replay_secs) = timed("bench.replay_ns", || {
        LiveTable::open(&dir, &["key", "id", "val"], config)
    });
    let table = table?;
    let report = table.replay_report();
    let after = signature(&table, "post-replay");
    let rows_recovered = after[0].rows_scanned;
    let replay_divergence = divergence(&before, &after);
    assert_eq!(rows_recovered, live_rows, "replay lost or invented rows");
    assert_eq!(
        replay_divergence, 0,
        "replayed table diverged from pre-kill"
    );
    assert_eq!(report.truncated_bytes, 0, "clean WAL must replay in full");
    let replay_rps = rows_recovered as f64 / replay_secs.max(1e-9);
    eprintln!(
        "replayed {} WAL records ({:.1} MB) in {replay_secs:.2}s: {rows_recovered} rows recovered",
        report.records,
        report.durable_bytes as f64 / 1.0e6
    );

    // ── Compaction: freeze + flush everything into row-group files, then
    // the same scans must still answer bit-identically.
    let (flush, flush_secs) = timed("bench.compact_ns", || table.flush());
    let flush = flush?;
    let flushed = signature(&table, "post-flush");
    assert_eq!(
        divergence(&before, &flushed),
        0,
        "flush changed scan results"
    );
    let stats = table.stats();
    assert_eq!(stats.mem_rows, 0, "flush must drain the memtable");
    assert_eq!(stats.frozen_segments, 0, "flush must drain frozen segments");
    assert!(flush.files_written > 0, "flush must write files");
    let compact_rps = flush.rows_flushed as f64 / flush_secs.max(1e-9);
    eprintln!(
        "flushed {} rows into {} file(s) in {flush_secs:.2}s",
        flush.rows_flushed, flush.files_written
    );

    let mut text = TextTable::new(vec!["phase", "rows", "wall (ms)", "rows/s (K)"]);
    let mut phase_row = |phase: &str, n: f64, secs: f64, rps: f64| {
        text.row(vec![
            phase.to_string(),
            format!("{n:.0}"),
            format!("{:.1}", secs * 1_000.0),
            format!("{:.1}", rps / 1.0e3),
        ]);
    };
    phase_row("single_put", SINGLE_PUTS as f64, single_secs, single_rps);
    phase_row(
        "batch_put",
        (rows - SINGLE_PUTS) as f64,
        batch_secs,
        batch_rps,
    );
    phase_row("replay", rows_recovered as f64, replay_secs, replay_rps);
    phase_row("flush", flush.rows_flushed as f64, flush_secs, compact_rps);
    text.print();
    println!();
    println!("Replay recovered every acknowledged row; scans identical before the kill,");
    println!("after replay, and after compaction, at 1/2/4 threads.");

    let ingest_row = |phase: &str, n: f64, secs: f64, rps: f64| {
        Json::Obj(vec![
            ("phase".into(), Json::Str(phase.into())),
            ("rows".into(), Json::Num(n)),
            ("wall_seconds".into(), Json::Num(secs)),
            ("rows_per_second".into(), Json::Num(rps)),
        ])
    };
    let mut report_out = BenchReport::new("ingest");
    report_out.add(
        "config",
        Json::Obj(vec![
            ("rows".into(), Json::Num(rows as f64)),
            ("single_puts".into(), Json::Num(SINGLE_PUTS as f64)),
            ("deletes".into(), Json::Num(DELETES as f64)),
            ("batch_rows".into(), Json::Num(BATCH_ROWS as f64)),
            ("segment_rows".into(), Json::Num(config.segment_rows as f64)),
            (
                "row_group_size".into(),
                Json::Num(config.row_group_size as f64),
            ),
            ("wal_bytes".into(), Json::Num(wal_bytes as f64)),
        ]),
    );
    report_out.add(
        "ingest",
        Json::Arr(vec![
            ingest_row("single_put", SINGLE_PUTS as f64, single_secs, single_rps),
            ingest_row(
                "batch_put",
                (rows - SINGLE_PUTS) as f64,
                batch_secs,
                batch_rps,
            ),
        ]),
    );
    report_out.add(
        "recovery",
        Json::Arr(vec![Json::Obj(vec![
            ("phase".into(), Json::Str("replay".into())),
            ("rows_recovered".into(), Json::Num(rows_recovered as f64)),
            (
                "replay_divergence".into(),
                Json::Num(replay_divergence as f64),
            ),
            ("wall_seconds".into(), Json::Num(replay_secs)),
            ("rows_per_second".into(), Json::Num(replay_rps)),
            ("wal_records".into(), Json::Num(report.records as f64)),
            (
                "wal_durable_bytes".into(),
                Json::Num(report.durable_bytes as f64),
            ),
        ])]),
    );
    report_out.add(
        "compaction",
        Json::Arr(vec![Json::Obj(vec![
            ("phase".into(), Json::Str("flush".into())),
            ("rows_flushed".into(), Json::Num(flush.rows_flushed as f64)),
            (
                "files_written".into(),
                Json::Num(flush.files_written as f64),
            ),
            ("wall_seconds".into(), Json::Num(flush_secs)),
            ("rows_per_second".into(), Json::Num(compact_rps)),
        ])]),
    );
    report_out.add_table("phase_table", &text);
    let json_path = report_out.write()?;

    // Self-check: the emitted file must parse back with the report reader
    // and carry every section the CI gate keys on.
    let text = std::fs::read_to_string(&json_path)?;
    let parsed = Json::parse(text.trim()).unwrap_or_else(|e| panic!("BENCH_ingest.json: {e}"));
    assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("ingest"));
    let sections = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .expect("sections array");
    let rows_in = |label: &str| {
        sections
            .iter()
            .find(|s| s.get("label").and_then(Json::as_str) == Some(label))
            .and_then(|s| s.get("data"))
            .and_then(Json::as_arr)
            .unwrap_or_else(|| panic!("{label} section"))
            .len()
    };
    assert_eq!(rows_in("ingest"), 2);
    assert_eq!(rows_in("recovery"), 1);
    assert_eq!(rows_in("compaction"), 1);
    println!("BENCH_ingest.json re-parsed OK (2 ingest, 1 recovery, 1 compaction rows).");

    drop(table);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
