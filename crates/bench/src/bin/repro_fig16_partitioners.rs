//! Figure 16 (+ the §3.2.2 optimality claim): partitioner comparison.
//!
//! Compression ratio of LeCo with fixed partitions, the PLA partitioner, the
//! la_vector-style partitioner, the Sim-Piece-style partitioner and the
//! split–merge variable-length partitioner on `normal`, `house_price`,
//! `booksale` and `movieid`.  Passing `--dp` additionally compares the greedy
//! split–merge result with the exact dynamic-programming optimum on a small
//! sample.

use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_core::partition::dp;
use leco_core::{LecoCompressor, LecoConfig, PartitionerKind, RegressorKind};
use leco_datasets::{generate, IntDataset};

fn ratio(values: &[u64], width: usize, partitioner: PartitionerKind) -> (f64, usize) {
    let col = LecoCompressor::new(LecoConfig {
        regressor: RegressorKind::Linear,
        partitioner,
    })
    .compress(values);
    (
        col.size_bytes() as f64 / (values.len() * width) as f64,
        col.num_partitions(),
    )
}

fn main() {
    let with_dp = std::env::args().any(|a| a == "--dp");
    let n = leco_bench::small_bench_size().min(400_000);
    println!("# Figure 16 — partitioner efficiency ({n} values per data set)\n");
    // `timestamps` (the quickstart column) is the cost-model stress case:
    // long clean runs with periodic jumps, where `leco_var` used to compress
    // *worse* than `leco_fix` until the partitioner charged correction lists.
    // The CI bench gate pins its ratios, so a regression of that fix fails
    // the `bench-gate` job.
    let datasets = [
        IntDataset::Normal,
        IntDataset::HousePrice,
        IntDataset::Booksale,
        IntDataset::Movieid,
        IntDataset::Timestamps,
    ];
    let partitioners: [(&str, PartitionerKind); 5] = [
        ("LeCo-fix", PartitionerKind::FixedAuto),
        ("LeCo-PLA", PartitionerKind::Pla { epsilon: 64 }),
        ("LeCo-la-vec", PartitionerKind::LaVector),
        ("Sim-Piece", PartitionerKind::SimPiece { epsilon: 64 }),
        ("LeCo-var", PartitionerKind::SplitMerge { tau: 0.1 }),
    ];
    let mut table = TextTable::new(vec![
        "dataset",
        "partitioner",
        "compression ratio",
        "#partitions",
    ]);
    for dataset in datasets {
        let values = generate(dataset, n, 42);
        for (name, partitioner) in &partitioners {
            let (r, parts) = ratio(&values, dataset.value_width(), partitioner.clone());
            table.row(vec![
                dataset.name().to_string(),
                name.to_string(),
                pct(r),
                format!("{parts}"),
            ]);
            eprintln!("  finished {} / {}", dataset.name(), name);
        }
    }
    table.print();
    println!(
        "\nPaper reference (Fig. 16): the time-series partitioners (PLA, Sim-Piece) and la_vector"
    );
    println!("compress noticeably worse than LeCo-var; LeCo-var also beats LeCo-fix on globally-hard data.");

    let mut dp_section: Option<TextTable> = None;
    if with_dp {
        println!("\n## Greedy split-merge vs exact DP optimum (§3.2.2 claim, small samples)\n");
        let mut dp_table =
            TextTable::new(vec!["dataset", "greedy bits", "optimal bits", "overhead"]);
        for dataset in datasets {
            let values: Vec<u64> = generate(dataset, 1_500, 7);
            let greedy = leco_core::partition::split_merge::split_merge(
                &values,
                RegressorKind::Linear,
                0.05,
            );
            let optimal = dp::optimal_partitions(&values, RegressorKind::Linear);
            let g = dp::total_cost_bits(&values, &greedy, RegressorKind::Linear);
            let o = dp::total_cost_bits(&values, &optimal, RegressorKind::Linear);
            dp_table.row(vec![
                dataset.name().to_string(),
                format!("{g}"),
                format!("{o}"),
                format!("{:+.2}%", (g as f64 / o as f64 - 1.0) * 100.0),
            ]);
        }
        dp_table.print();
        dp_section = Some(dp_table);
        println!("\nPaper reference: the greedy algorithm stays within ~3% of the optimal compressed size.");
    } else {
        println!(
            "\n(Pass --dp to also compare the greedy partitioner against the exact DP optimum.)"
        );
    }
    let mut sections: Vec<(&str, &TextTable)> = vec![("partitioners", &table)];
    if let Some(dp_table) = &dp_section {
        sections.push(("dp_gap", dp_table));
    }
    write_bench_json("fig16_partitioners", &sections);
}
