//! CI benchmark-regression gate: compare current `BENCH_*.json` reports
//! against the committed baselines in `BENCH_baseline/` and exit non-zero
//! on any regression.
//!
//! ```text
//! bench_check --baseline BENCH_baseline --current bench-current \
//!             [--tolerance 0.5] [--max-obs-overhead 0.05]
//!             [--benches fig10_micro,fig16_partitioners,scan,scan_selectivity,scan_obs,serve,ingest]
//! ```
//!
//! Compression ratios are compared exactly (they are deterministic given
//! the pinned `LECO_N` and seeds); throughput and latency metrics fail only
//! beyond `--tolerance` (relative), a tripwire for order-of-magnitude
//! slowdowns that survives CI-runner variance.  With `--max-obs-overhead`
//! the `scan_obs` report's obs-on vs. obs-off ratio is additionally gated
//! against an absolute budget (the observability layer must stay close to
//! free).  See `leco_bench::check` for the per-benchmark rules.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use leco_bench::check::{check_overhead, compare_reports};
use leco_bench::report::Json;

const DEFAULT_BENCHES: &str =
    "fig10_micro,fig16_partitioners,scan,scan_selectivity,scan_obs,serve,ingest";

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
    max_obs_overhead: Option<f64>,
    benches: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = PathBuf::from("BENCH_baseline");
    let mut current = PathBuf::from(".");
    let mut tolerance = 0.5f64;
    let mut max_obs_overhead = None;
    let mut benches = DEFAULT_BENCHES.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--baseline" => baseline = PathBuf::from(value("--baseline")?),
            "--current" => current = PathBuf::from(value("--current")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?
            }
            "--max-obs-overhead" => {
                max_obs_overhead = Some(
                    value("--max-obs-overhead")?
                        .parse()
                        .map_err(|e| format!("bad --max-obs-overhead: {e}"))?,
                )
            }
            "--benches" => benches = value("--benches")?,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: bench_check --baseline DIR --current DIR \
                     [--tolerance 0.5] [--max-obs-overhead 0.05] \
                     [--benches {DEFAULT_BENCHES}]"
                ))
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        baseline,
        current,
        tolerance,
        max_obs_overhead,
        benches: benches.split(',').map(|s| s.trim().to_string()).collect(),
    })
}

fn load(dir: &Path, bench: &str) -> Result<Json, String> {
    let path = dir.join(format!("BENCH_{bench}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(text.trim()).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let mut violations = 0usize;
    let mut checked = 0usize;
    for bench in &args.benches {
        let pair = load(&args.baseline, bench).and_then(|b| Ok((b, load(&args.current, bench)?)));
        let (baseline, current) = match pair {
            Ok(pair) => pair,
            Err(message) => {
                eprintln!("FAIL  {bench}: {message}");
                violations += 1;
                continue;
            }
        };
        let mut found = compare_reports(&baseline, &current, args.tolerance);
        if let (Some(budget), "scan_obs") = (args.max_obs_overhead, bench.as_str()) {
            found.extend(check_overhead(&current, budget));
        }
        if found.is_empty() {
            println!("ok    {bench}");
        } else {
            for v in &found {
                eprintln!("FAIL  {v}");
            }
            violations += found.len();
        }
        checked += 1;
    }
    println!(
        "bench_check: {checked} report(s) checked, {violations} violation(s) \
         (ratio: exact, throughput/latency: within {:.1}x of baseline)",
        1.0 + args.tolerance
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
