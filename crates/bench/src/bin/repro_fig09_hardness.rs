//! Figure 9b: local vs global hardness of each integer data set, the scores
//! that drive the partition-strategy advice of §3.2.3.

use leco_bench::report::{f2, write_bench_json, TextTable};
use leco_core::advisor::hardness;
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::small_bench_size();
    println!("# Figure 9b — data set hardness ({n} values per data set)\n");
    let mut table = TextTable::new(vec![
        "dataset",
        "local hardness",
        "global hardness",
        "advice",
    ]);
    for dataset in IntDataset::MICROBENCH {
        let values = generate(dataset, n, 42);
        let h = hardness::hardness(&values);
        let advice = match hardness::advise(h) {
            hardness::PartitionAdvice::VariableLength => "variable-length",
            hardness::PartitionAdvice::Fixed => "fixed-length",
        };
        table.row(vec![
            dataset.name().to_string(),
            f2(h.local),
            f2(h.global),
            advice.to_string(),
        ]);
    }
    table.print();
    write_bench_json("fig09_hardness", &[("hardness", &table)]);
    println!(
        "\nPaper reference (Fig. 9b): linear/normal/libio/wiki/booksale/planet/ml/house_price are"
    );
    println!("locally easy; facebook/osm/(poisson) are locally hard; movieid/house_price are globally hard,");
    println!("which is where variable-length partitioning pays off most (§4.3.1).");
}
