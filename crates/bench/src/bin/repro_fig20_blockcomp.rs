//! Figure 20: file sizes when a general-purpose block codec (`lzb`, standing
//! in for zstd) is layered on top of the lightweight encodings (§5.1.3), on
//! `normal`, `booksale`, `poisson` and `ml`.

use leco_bench::report::{human_bytes, write_bench_json, TextTable};
use leco_columnar::{BlockCompression, Encoding, TableFile, TableFileOptions};
use leco_datasets::{generate, IntDataset};

fn main() -> std::io::Result<()> {
    let rows = leco_bench::small_bench_size();
    println!("# Figure 20 — Parquet-style file sizes with block compression ({rows} rows)\n");
    let datasets = [
        IntDataset::Normal,
        IntDataset::Booksale,
        IntDataset::Poisson,
        IntDataset::Ml,
    ];
    let encodings = [Encoding::Default, Encoding::For, Encoding::Leco];
    let mut table = TextTable::new(vec![
        "dataset",
        "encoding",
        "size",
        "size + lzb",
        "lzb improvement",
    ]);
    for dataset in datasets {
        let values = generate(dataset, rows, 42);
        for enc in encodings {
            let mut sizes = Vec::new();
            for compression in [BlockCompression::None, BlockCompression::Lzb] {
                let mut path = std::env::temp_dir();
                path.push(format!(
                    "leco-fig20-{}-{:?}-{:?}-{}.tbl",
                    dataset.name(),
                    enc,
                    compression,
                    std::process::id()
                ));
                let file = TableFile::write(
                    &path,
                    &["v"],
                    std::slice::from_ref(&values),
                    TableFileOptions {
                        encoding: enc,
                        row_group_size: 200_000,
                        block_compression: compression,
                    },
                )?;
                sizes.push(file.file_size_bytes());
                std::fs::remove_file(&path).ok();
            }
            table.row(vec![
                dataset.name().to_string(),
                enc.name().to_string(),
                human_bytes(sizes[0]),
                human_bytes(sizes[1]),
                format!("{:.1}x", sizes[0] as f64 / sizes[1] as f64),
            ]);
            eprintln!("  finished {} / {}", dataset.name(), enc.name());
        }
    }
    table.print();
    write_bench_json("fig20_blockcomp", &[("blockcomp", &table)]);
    println!(
        "\nPaper reference (Fig. 20): block compression still helps on top of the lightweight"
    );
    println!(
        "encodings, and the relative improvement over LeCo-encoded files is at least as large as"
    );
    println!(
        "over FOR — LeCo's serial-redundancy removal is complementary to general-purpose codecs."
    );
    Ok(())
}
