//! `repro_scan` — threads-vs-throughput scaling of the morsel-driven scan
//! engine (`leco-scan`) on a LeCo-encoded sensor table, the systems
//! experiment behind the paper's §5.1 claim that learned columns speed up
//! scan-heavy analytics end-to-end.
//!
//! Runs the same filter → group-by-average pipeline at 1, 2, 4 and 8 worker
//! threads, asserts the results are identical at every thread count, prints
//! the scaling table and writes `BENCH_scan.json` (which it immediately
//! re-parses with the report reader as a self-check).
//!
//! A second experiment sweeps predicate selectivity (1e-4 … 0.5) with
//! compressed execution (model-inverse pushdown) on vs. off, asserting both
//! paths select identical rows and that pushdown decodes strictly fewer rows
//! at selectivities ≤ 1%.  Results land in `BENCH_scan_selectivity.json`
//! (also re-parsed as a self-check) and are gated by `bench_check`.
//!
//! A third experiment exercises the observability layer itself: registry
//! snapshot deltas around a deterministic scan (morsel/row/prefetch
//! accounting must balance exactly), a deterministic LRU-cache workload
//! (hit rates and evictions are exact), and an interleaved obs-on vs.
//! obs-off A/B of the same group-by scan whose overhead ratio `bench_check
//! --max-obs-overhead` gates in CI.  Results land in `BENCH_scan_obs.json`.
//!
//! Defaults to 10M rows; override with `LECO_N`.  Pass `--trace <path>` to
//! dump the span rings as a Chrome `chrome://tracing` / Perfetto-loadable
//! trace after the scaling experiment.

use leco_bench::measure::{best_of, timed};
use leco_bench::report::{self, BenchReport, Json, TextTable};
use leco_columnar::{Encoding, TableFile, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};
use leco_kvstore::cache::BlockCache;
use leco_scan::Scanner;
use std::sync::Arc;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const ROW_GROUP_SIZE: usize = 100_000;

fn main() -> std::io::Result<()> {
    let trace_path = parse_trace_arg();
    let rows = std::env::var("LECO_N")
        .ok()
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(10_000_000)
        .max(ROW_GROUP_SIZE);
    println!("# Scan engine scaling — filter + group-by-avg ({rows} rows, LeCo encoding)\n");

    let t = sensor_table(rows, SensorDistribution::Correlated, 42);
    let mut path = std::env::temp_dir();
    path.push(format!("leco-repro-scan-{}.tbl", std::process::id()));
    let (table, build_secs) = timed("bench.table_build_ns", || {
        TableFile::write(
            &path,
            &["ts", "id", "val"],
            &[t.ts.clone(), t.id, t.val],
            TableFileOptions {
                encoding: Encoding::Leco,
                row_group_size: ROW_GROUP_SIZE,
                ..Default::default()
            },
        )
    });
    let table = table?;
    eprintln!(
        "encoded {} row groups ({:.1} MB on disk) in {build_secs:.1}s",
        table.num_row_groups(),
        table.file_size_bytes() as f64 / 1.0e6,
    );

    // Middle ~40% of the timestamp range: selective enough for zone maps to
    // prune, wide enough that every worker gets real decode work.
    let (ts_min, ts_max) = (t.ts[0], *t.ts.last().expect("rows > 0"));
    let lo = ts_min + (ts_max - ts_min) * 3 / 10;
    let hi = ts_min + (ts_max - ts_min) * 7 / 10;

    let mut text = TextTable::new(vec![
        "threads",
        "wall (ms)",
        "rows/s (M)",
        "speedup",
        "groups",
        "pruned",
    ]);
    let mut reference: Option<Vec<(u64, f64)>> = None;
    let mut base_seconds = 0.0f64;
    let mut json_rows = Vec::new();
    for threads in THREADS {
        // Best of three runs: the engine re-reads chunk bytes every run, so
        // repetition steadies the OS page-cache contribution.
        let (result, best) = best_of(3, "bench.scan_ns", || {
            Scanner::new(&table)
                .filter_col(0, lo, hi)
                .sorted_filter(true)
                .group_by_avg_cols(1, 2)
                .run(threads)
                .expect("scan should not fail")
        });
        match &reference {
            None => {
                base_seconds = best;
                reference = Some(result.groups.clone());
            }
            Some(expected) => {
                // Acceptance: results are identical at every thread count.
                assert_eq!(expected.len(), result.groups.len());
                for (a, b) in expected.iter().zip(&result.groups) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "group {} diverged", a.0);
                }
            }
        }
        let throughput = result.rows_scanned as f64 / best;
        let speedup = base_seconds / best;
        text.row(vec![
            format!("{threads}"),
            format!("{:.1}", best * 1_000.0),
            format!("{:.1}", throughput / 1.0e6),
            format!("{speedup:.2}"),
            format!("{}", result.groups.len()),
            format!("{}", result.stats.row_groups_pruned),
        ]);
        json_rows.push(Json::Obj(vec![
            ("threads".into(), Json::Num(threads as f64)),
            ("wall_seconds".into(), Json::Num(best)),
            ("rows_per_second".into(), Json::Num(throughput)),
            ("speedup".into(), Json::Num(speedup)),
            ("groups".into(), Json::Num(result.groups.len() as f64)),
            (
                "rows_selected".into(),
                Json::Num(result.rows_selected as f64),
            ),
            (
                "row_groups_pruned".into(),
                Json::Num(result.stats.row_groups_pruned as f64),
            ),
            ("io_bytes".into(), Json::Num(result.stats.io_bytes as f64)),
        ]));
        eprintln!("  finished {threads} thread(s)");
    }
    text.print();
    println!();
    println!("Results verified identical across all thread counts.");
    println!("(Speedups are hardware-bound: on a single-core container every thread count");
    println!(" measures ~1x; on an 8-core machine the 8-thread scan targets >= 3x.)");

    let mut report = BenchReport::new("scan");
    report.add(
        "config",
        Json::Obj(vec![
            ("rows".into(), Json::Num(rows as f64)),
            (
                "row_groups".into(),
                Json::Num(table.num_row_groups() as f64),
            ),
            ("encoding".into(), Json::Str("LeCo".into())),
            (
                "file_bytes".into(),
                Json::Num(table.file_size_bytes() as f64),
            ),
            ("filter_lo".into(), Json::Num(lo as f64)),
            ("filter_hi".into(), Json::Num(hi as f64)),
        ]),
    );
    report.add("scaling", Json::Arr(json_rows));
    report.add_table("scaling_table", &text);
    let json_path = report.write()?;

    // Self-check: the emitted file must parse back with the report reader
    // and contain one scaling row per thread count (the CI smoke test runs
    // this binary and relies on this assertion).
    let text = std::fs::read_to_string(&json_path)?;
    let parsed = Json::parse(text.trim()).unwrap_or_else(|e| panic!("BENCH_scan.json: {e}"));
    assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("scan"));
    let sections = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .expect("sections array");
    let scaling = sections
        .iter()
        .find(|s| s.get("label").and_then(Json::as_str) == Some("scaling"))
        .and_then(|s| s.get("data"))
        .and_then(Json::as_arr)
        .expect("scaling section");
    assert_eq!(scaling.len(), THREADS.len());
    println!(
        "BENCH_scan.json re-parsed OK ({} scaling rows).",
        scaling.len()
    );

    if let Some(trace_path) = &trace_path {
        dump_trace(trace_path)?;
    }

    obs_experiment(&table, rows, lo, hi)?;

    selectivity_sweep(&table, &t.ts)?;

    std::fs::remove_file(&path).ok();
    Ok(())
}

/// Parse the optional `--trace <path>` flag (the only flag this binary
/// takes; everything else is configured through `LECO_N`).
fn parse_trace_arg() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace" => Some(std::path::PathBuf::from(path)),
        _ => {
            eprintln!("usage: repro_scan [--trace PATH]");
            std::process::exit(2);
        }
    }
}

/// Export the span rings accumulated by the scaling runs as a Chrome
/// `trace_event` JSON file, then re-parse it as a self-check.
fn dump_trace(path: &std::path::Path) -> std::io::Result<()> {
    let n_spans = report::write_chrome_trace(path)?;
    let text = std::fs::read_to_string(path)?;
    let parsed = Json::parse(text.trim())
        .unwrap_or_else(|e| panic!("{}: emitted trace does not parse: {e}", path.display()));
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), n_spans);
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
    }
    println!(
        "wrote {} span(s) to {} (Chrome trace re-parsed OK)",
        n_spans,
        path.display()
    );
    Ok(())
}

/// Predicate selectivities swept by the compressed-execution experiment.
const SELECTIVITIES: [f64; 5] = [1e-4, 1e-3, 1e-2, 0.1, 0.5];
/// Worker threads used for every sweep measurement.
const SWEEP_THREADS: usize = 4;

/// Observability-layer experiment behind `BENCH_scan_obs.json`.
///
/// Three sections:
///
/// * `deterministic` — registry snapshot deltas around a read-ahead-free
///   scan plus a seeded LRU-cache workload.  Every value is exact given
///   `LECO_N` and the data-set seed, so `bench_check` compares them with
///   `Metric::Exact` (any drift, either direction, is a counting bug).
/// * `overhead` — interleaved obs-on vs. obs-off best-of-5 of the same
///   group-by scan; `overhead_ratio` is gated absolutely by
///   `bench_check --max-obs-overhead`.
/// * `informational` — timing-dependent counters (steals, prefetch hits /
///   stalls) from a read-ahead scan: reported, never gated.
fn obs_experiment(table: &TableFile, rows: usize, lo: u64, hi: u64) -> std::io::Result<()> {
    println!();
    println!("# Observability — exact accounting, cache workloads, overhead A/B");
    println!();
    leco_obs::set_enabled(true);
    let registry = leco_obs::Registry::global();

    // ── Deterministic accounting: read-ahead off so every morsel's I/O is
    // performed (and counted) exactly once by the worker that claims it.
    let before = registry.snapshot();
    let r = Scanner::new(table)
        .filter_col(0, lo, hi)
        .sorted_filter(true)
        .group_by_avg_cols(1, 2)
        .read_ahead(false)
        .run(SWEEP_THREADS)
        .expect("deterministic scan should not fail");
    let after = registry.snapshot();

    let morsels = after.counter_delta(&before, "scan.morsels");
    let morsel_rows = after.counter_delta(&before, "scan.morsel_rows");
    let rows_selected = after.counter_delta(&before, "scan.rows_selected");
    let prefetch_claims = after.counter_delta(&before, "scan.prefetch.hits")
        + after.counter_delta(&before, "scan.prefetch.misses");
    let chunk_reads = after.hist_count_delta(&before, "columnar.chunk_io_ns");
    // The registry must agree with the engine's own result struct exactly.
    assert_eq!(morsels, r.morsels as u64, "morsel counter vs ScanResult");
    assert_eq!(morsel_rows, r.rows_scanned, "row counter vs ScanResult");
    assert_eq!(rows_selected, r.rows_selected, "selected counter");
    assert_eq!(prefetch_claims, morsels, "claim() runs once per morsel");
    // filter col + two aggregate cols = 3 chunk reads per morsel.
    assert_eq!(chunk_reads, 3 * morsels, "chunk reads per morsel");
    assert_eq!(
        after.gauge("scan.pool.queue_depth"),
        0,
        "queue-depth gauge returns to zero after every scan"
    );

    // ── Deterministic LRU-cache workloads (single-threaded, fixed pattern):
    // a working set that fits (75% hit rate after the cold pass) and a 2x
    // sweep that thrashes (0% hits, working-set-minus-capacity evictions).
    let kv_before = registry.snapshot();
    let fits = BlockCache::new(16 * 128);
    for _ in 0..4u64 {
        for i in 0..16u64 {
            if fits.get(&(0, i)).is_none() {
                fits.insert((0, i), Arc::new(vec![0u8; 128]));
            }
        }
    }
    let thrash = BlockCache::new(16 * 128);
    for _ in 0..4u64 {
        for i in 0..32u64 {
            if thrash.get(&(0, i)).is_none() {
                thrash.insert((0, i), Arc::new(vec![0u8; 128]));
            }
        }
    }
    let kv_after = registry.snapshot();
    let (fits_hits, fits_misses) = fits.stats();
    let (thrash_hits, thrash_misses) = thrash.stats();
    let fits_hit_rate = fits_hits as f64 / (fits_hits + fits_misses) as f64;
    // Per-instance counters and the global registry must tell one story.
    assert_eq!(
        kv_after.counter_delta(&kv_before, "kv.cache.hits"),
        fits_hits + thrash_hits
    );
    assert_eq!(
        kv_after.counter_delta(&kv_before, "kv.cache.misses"),
        fits_misses + thrash_misses
    );
    assert_eq!(
        kv_after.counter_delta(&kv_before, "kv.cache.evictions"),
        fits.eviction_count() + thrash.eviction_count()
    );
    assert_eq!(thrash_hits, 0, "sequential sweep over 2x capacity");

    let det_row = |metric: &str, value: f64| {
        Json::Obj(vec![
            ("metric".into(), Json::Str(metric.into())),
            ("value".into(), Json::Num(value)),
        ])
    };
    let deterministic = vec![
        det_row("scan.morsels", morsels as f64),
        det_row("scan.morsel_rows", morsel_rows as f64),
        det_row("scan.rows_selected", rows_selected as f64),
        det_row("scan.prefetch.claims", prefetch_claims as f64),
        det_row("columnar.chunk_reads", chunk_reads as f64),
        det_row("kv.cache.fits.hit_rate", fits_hit_rate),
        det_row("kv.cache.fits.evictions", fits.eviction_count() as f64),
        det_row("kv.cache.thrash.hit_rate", 0.0),
        det_row("kv.cache.thrash.evictions", thrash.eviction_count() as f64),
    ];

    // ── Overhead A/B: the same group-by scan the scaling experiment runs,
    // obs enabled vs. disabled, interleaved so cache warmth and
    // CPU-frequency drift hit both arms.  The group-by arm runs for
    // milliseconds, long enough that thread-spawn jitter (which dominates a
    // sub-millisecond count scan) cannot masquerade as instrumentation
    // cost.  `timed` always reads the clock (the Stopwatch is deliberately
    // not gated), so the measurement harness is identical in both arms;
    // only the counters/histograms/spans inside the scan toggle.
    let group_scan = || {
        Scanner::new(table)
            .filter_col(0, lo, hi)
            .sorted_filter(true)
            .group_by_avg_cols(1, 2)
            .run(SWEEP_THREADS)
            .expect("overhead scan should not fail")
    };
    group_scan(); // warm the page cache before either arm is timed
    let mut on_best = f64::INFINITY;
    let mut off_best = f64::INFINITY;
    for _ in 0..5 {
        leco_obs::set_enabled(true);
        let (_, secs) = timed("bench.scan_ns", group_scan);
        on_best = on_best.min(secs);
        leco_obs::set_enabled(false);
        let (_, secs) = timed("bench.scan_ns", group_scan);
        off_best = off_best.min(secs);
    }
    leco_obs::set_enabled(true);
    let overhead_ratio = on_best / off_best - 1.0;
    println!(
        "obs overhead: enabled {:.1} ms vs disabled {:.1} ms ({:+.2}%)",
        on_best * 1e3,
        off_best * 1e3,
        overhead_ratio * 100.0
    );

    // ── Informational: a read-ahead scan's timing-dependent counters.
    let ra_before = registry.snapshot();
    Scanner::new(table)
        .filter_col(0, lo, hi)
        .sorted_filter(true)
        .group_by_avg_cols(1, 2)
        .run(SWEEP_THREADS)
        .expect("read-ahead scan should not fail");
    let ra_after = registry.snapshot();
    let informational = vec![
        det_row(
            "scan.pool.steals",
            ra_after.counter_delta(&ra_before, "scan.pool.steals") as f64,
        ),
        det_row(
            "scan.prefetch.hits",
            ra_after.counter_delta(&ra_before, "scan.prefetch.hits") as f64,
        ),
        det_row(
            "scan.prefetch.misses",
            ra_after.counter_delta(&ra_before, "scan.prefetch.misses") as f64,
        ),
        det_row(
            "scan.prefetch.stalls",
            ra_after.counter_delta(&ra_before, "scan.prefetch.stalls") as f64,
        ),
    ];

    let mut report = BenchReport::new("scan_obs");
    report.add(
        "config",
        Json::Obj(vec![
            ("rows".into(), Json::Num(rows as f64)),
            ("threads".into(), Json::Num(SWEEP_THREADS as f64)),
            (
                "row_groups".into(),
                Json::Num(table.num_row_groups() as f64),
            ),
        ]),
    );
    report.add("deterministic", Json::Arr(deterministic));
    report.add(
        "overhead",
        Json::Arr(vec![Json::Obj(vec![
            ("experiment".into(), Json::Str("group_scan".into())),
            ("enabled_seconds".into(), Json::Num(on_best)),
            ("disabled_seconds".into(), Json::Num(off_best)),
            ("overhead_ratio".into(), Json::Num(overhead_ratio)),
        ])]),
    );
    report.add("informational", Json::Arr(informational));
    let json_path = report.write()?;

    // Self-check: re-parse, and the deterministic section must carry every
    // exact metric the CI gate keys on.
    let text = std::fs::read_to_string(&json_path)?;
    let parsed = Json::parse(text.trim()).unwrap_or_else(|e| panic!("BENCH_scan_obs.json: {e}"));
    assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("scan_obs"));
    let det = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .expect("sections array")
        .iter()
        .find(|s| s.get("label").and_then(Json::as_str) == Some("deterministic"))
        .and_then(|s| s.get("data"))
        .and_then(Json::as_arr)
        .expect("deterministic section")
        .len();
    assert_eq!(det, 9);
    println!("BENCH_scan_obs.json re-parsed OK ({det} deterministic rows).");
    Ok(())
}

/// Compressed execution vs. decode-then-filter across predicate
/// selectivities: same unsorted filter over the (sorted but undeclared) `ts`
/// column, pushdown on vs. off, measuring wall time and — via the new
/// `QueryStats` row counters — how many rows each path actually decoded.
fn selectivity_sweep(table: &TableFile, ts: &[u64]) -> std::io::Result<()> {
    println!();
    println!("# Selectivity sweep — model-inverse pushdown vs decode-then-filter");
    println!();
    let n = ts.len();
    let lo_idx = n * 3 / 10; // anchor inside the range so zone maps stay honest
    let mut text = TextTable::new(vec![
        "selectivity",
        "rows selected",
        "pushdown decoded",
        "baseline decoded",
        "pushdown (ms)",
        "baseline (ms)",
    ]);
    let mut json_rows = Vec::new();
    for sel in SELECTIVITIES {
        let hi_idx = (lo_idx + (n as f64 * sel) as usize).min(n - 1);
        let (lo, hi) = (ts[lo_idx], ts[hi_idx]);
        let measure = |pushdown: bool| {
            best_of(3, "bench.scan_ns", || {
                Scanner::new(table)
                    .filter_col(0, lo, hi)
                    .pushdown_filter(pushdown)
                    .count()
                    .run(SWEEP_THREADS)
                    .expect("sweep scan should not fail")
            })
        };
        let (pd, pd_secs) = measure(true);
        let (base, base_secs) = measure(false);
        // Acceptance: identical selections, and at selective predicates the
        // pushdown kernels must decode strictly fewer rows.
        assert_eq!(pd.rows_selected, base.rows_selected, "sel {sel}");
        assert_eq!(pd.rows_scanned, base.rows_scanned, "sel {sel}");
        let pd_decoded = pd.stats.boundary_rows_decoded + pd.stats.rows_decoded_full;
        let base_decoded = base.stats.boundary_rows_decoded + base.stats.rows_decoded_full;
        assert_eq!(
            base_decoded, base.rows_scanned,
            "baseline decodes every scanned row"
        );
        let accounted = pd.stats.rows_skipped_by_model
            + pd.stats.boundary_rows_decoded
            + pd.stats.rows_decoded_full;
        assert_eq!(accounted, pd.rows_scanned, "pushdown row accounting");
        if sel <= 1e-2 {
            assert!(
                pd_decoded < base_decoded,
                "sel {sel}: pushdown decoded {pd_decoded} >= baseline {base_decoded}"
            );
        }
        let decoded_fraction = if pd.rows_scanned == 0 {
            0.0
        } else {
            pd_decoded as f64 / pd.rows_scanned as f64
        };
        text.row(vec![
            format!("{sel}"),
            format!("{}", pd.rows_selected),
            format!("{pd_decoded}"),
            format!("{base_decoded}"),
            format!("{:.1}", pd_secs * 1_000.0),
            format!("{:.1}", base_secs * 1_000.0),
        ]);
        json_rows.push(Json::Obj(vec![
            ("selectivity".into(), Json::Num(sel)),
            ("rows_selected".into(), Json::Num(pd.rows_selected as f64)),
            ("rows_scanned".into(), Json::Num(pd.rows_scanned as f64)),
            ("pushdown_rows_decoded".into(), Json::Num(pd_decoded as f64)),
            (
                "baseline_rows_decoded".into(),
                Json::Num(base_decoded as f64),
            ),
            ("decoded_fraction".into(), Json::Num(decoded_fraction)),
            ("pushdown_wall_seconds".into(), Json::Num(pd_secs)),
            ("baseline_wall_seconds".into(), Json::Num(base_secs)),
        ]));
    }
    text.print();
    println!();
    println!("Selections identical; pushdown decoded fewer rows at every selectivity <= 1%.");

    let mut report = BenchReport::new("scan_selectivity");
    report.add(
        "config",
        Json::Obj(vec![
            ("rows".into(), Json::Num(n as f64)),
            ("threads".into(), Json::Num(SWEEP_THREADS as f64)),
            ("encoding".into(), Json::Str("LeCo".into())),
        ]),
    );
    report.add("selectivity", Json::Arr(json_rows));
    report.add_table("selectivity_table", &text);
    let json_path = report.write()?;

    // Self-check: re-parse the emission, one row per swept selectivity.
    let text = std::fs::read_to_string(&json_path)?;
    let parsed =
        Json::parse(text.trim()).unwrap_or_else(|e| panic!("BENCH_scan_selectivity.json: {e}"));
    assert_eq!(
        parsed.get("bench").and_then(Json::as_str),
        Some("scan_selectivity")
    );
    let sweep = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .expect("sections array")
        .iter()
        .find(|s| s.get("label").and_then(Json::as_str) == Some("selectivity"))
        .and_then(|s| s.get("data"))
        .and_then(Json::as_arr)
        .expect("selectivity section")
        .len();
    assert_eq!(sweep, SELECTIVITIES.len());
    println!("BENCH_scan_selectivity.json re-parsed OK ({sweep} sweep rows).");
    Ok(())
}
