//! `repro_scan` — threads-vs-throughput scaling of the morsel-driven scan
//! engine (`leco-scan`) on a LeCo-encoded sensor table, the systems
//! experiment behind the paper's §5.1 claim that learned columns speed up
//! scan-heavy analytics end-to-end.
//!
//! Runs the same filter → group-by-average pipeline at 1, 2, 4 and 8 worker
//! threads, asserts the results are identical at every thread count, prints
//! the scaling table and writes `BENCH_scan.json` (which it immediately
//! re-parses with the report reader as a self-check).
//!
//! A second experiment sweeps predicate selectivity (1e-4 … 0.5) with
//! compressed execution (model-inverse pushdown) on vs. off, asserting both
//! paths select identical rows and that pushdown decodes strictly fewer rows
//! at selectivities ≤ 1%.  Results land in `BENCH_scan_selectivity.json`
//! (also re-parsed as a self-check) and are gated by `bench_check`.
//!
//! Defaults to 10M rows; override with `LECO_N`.

use leco_bench::report::{BenchReport, Json, TextTable};
use leco_columnar::{Encoding, TableFile, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};
use leco_scan::Scanner;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const ROW_GROUP_SIZE: usize = 100_000;

fn main() -> std::io::Result<()> {
    let rows = std::env::var("LECO_N")
        .ok()
        .and_then(|n| n.parse::<usize>().ok())
        .unwrap_or(10_000_000)
        .max(ROW_GROUP_SIZE);
    println!("# Scan engine scaling — filter + group-by-avg ({rows} rows, LeCo encoding)\n");

    let t = sensor_table(rows, SensorDistribution::Correlated, 42);
    let mut path = std::env::temp_dir();
    path.push(format!("leco-repro-scan-{}.tbl", std::process::id()));
    let build_start = Instant::now();
    let table = TableFile::write(
        &path,
        &["ts", "id", "val"],
        &[t.ts.clone(), t.id, t.val],
        TableFileOptions {
            encoding: Encoding::Leco,
            row_group_size: ROW_GROUP_SIZE,
            ..Default::default()
        },
    )?;
    eprintln!(
        "encoded {} row groups ({:.1} MB on disk) in {:.1}s",
        table.num_row_groups(),
        table.file_size_bytes() as f64 / 1.0e6,
        build_start.elapsed().as_secs_f64()
    );

    // Middle ~40% of the timestamp range: selective enough for zone maps to
    // prune, wide enough that every worker gets real decode work.
    let (ts_min, ts_max) = (t.ts[0], *t.ts.last().expect("rows > 0"));
    let lo = ts_min + (ts_max - ts_min) * 3 / 10;
    let hi = ts_min + (ts_max - ts_min) * 7 / 10;

    let mut text = TextTable::new(vec![
        "threads",
        "wall (ms)",
        "rows/s (M)",
        "speedup",
        "groups",
        "pruned",
    ]);
    let mut reference: Option<Vec<(u64, f64)>> = None;
    let mut base_seconds = 0.0f64;
    let mut json_rows = Vec::new();
    for threads in THREADS {
        // Best of three runs: the engine re-reads chunk bytes every run, so
        // repetition steadies the OS page-cache contribution.
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..3 {
            let start = Instant::now();
            let r = Scanner::new(&table)
                .filter_col(0, lo, hi)
                .sorted_filter(true)
                .group_by_avg_cols(1, 2)
                .run(threads)
                .expect("scan should not fail");
            best = best.min(start.elapsed().as_secs_f64());
            result = Some(r);
        }
        let result = result.expect("three runs completed");
        match &reference {
            None => {
                base_seconds = best;
                reference = Some(result.groups.clone());
            }
            Some(expected) => {
                // Acceptance: results are identical at every thread count.
                assert_eq!(expected.len(), result.groups.len());
                for (a, b) in expected.iter().zip(&result.groups) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "group {} diverged", a.0);
                }
            }
        }
        let throughput = result.rows_scanned as f64 / best;
        let speedup = base_seconds / best;
        text.row(vec![
            format!("{threads}"),
            format!("{:.1}", best * 1_000.0),
            format!("{:.1}", throughput / 1.0e6),
            format!("{speedup:.2}"),
            format!("{}", result.groups.len()),
            format!("{}", result.stats.row_groups_pruned),
        ]);
        json_rows.push(Json::Obj(vec![
            ("threads".into(), Json::Num(threads as f64)),
            ("wall_seconds".into(), Json::Num(best)),
            ("rows_per_second".into(), Json::Num(throughput)),
            ("speedup".into(), Json::Num(speedup)),
            ("groups".into(), Json::Num(result.groups.len() as f64)),
            (
                "rows_selected".into(),
                Json::Num(result.rows_selected as f64),
            ),
            (
                "row_groups_pruned".into(),
                Json::Num(result.stats.row_groups_pruned as f64),
            ),
            ("io_bytes".into(), Json::Num(result.stats.io_bytes as f64)),
        ]));
        eprintln!("  finished {threads} thread(s)");
    }
    text.print();
    println!();
    println!("Results verified identical across all thread counts.");
    println!("(Speedups are hardware-bound: on a single-core container every thread count");
    println!(" measures ~1x; on an 8-core machine the 8-thread scan targets >= 3x.)");

    let mut report = BenchReport::new("scan");
    report.add(
        "config",
        Json::Obj(vec![
            ("rows".into(), Json::Num(rows as f64)),
            (
                "row_groups".into(),
                Json::Num(table.num_row_groups() as f64),
            ),
            ("encoding".into(), Json::Str("LeCo".into())),
            (
                "file_bytes".into(),
                Json::Num(table.file_size_bytes() as f64),
            ),
            ("filter_lo".into(), Json::Num(lo as f64)),
            ("filter_hi".into(), Json::Num(hi as f64)),
        ]),
    );
    report.add("scaling", Json::Arr(json_rows));
    report.add_table("scaling_table", &text);
    let json_path = report.write()?;

    // Self-check: the emitted file must parse back with the report reader
    // and contain one scaling row per thread count (the CI smoke test runs
    // this binary and relies on this assertion).
    let text = std::fs::read_to_string(&json_path)?;
    let parsed = Json::parse(text.trim()).unwrap_or_else(|e| panic!("BENCH_scan.json: {e}"));
    assert_eq!(parsed.get("bench").and_then(Json::as_str), Some("scan"));
    let sections = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .expect("sections array");
    let scaling = sections
        .iter()
        .find(|s| s.get("label").and_then(Json::as_str) == Some("scaling"))
        .and_then(|s| s.get("data"))
        .and_then(Json::as_arr)
        .expect("scaling section");
    assert_eq!(scaling.len(), THREADS.len());
    println!(
        "BENCH_scan.json re-parsed OK ({} scaling rows).",
        scaling.len()
    );

    selectivity_sweep(&table, &t.ts)?;

    std::fs::remove_file(&path).ok();
    Ok(())
}

/// Predicate selectivities swept by the compressed-execution experiment.
const SELECTIVITIES: [f64; 5] = [1e-4, 1e-3, 1e-2, 0.1, 0.5];
/// Worker threads used for every sweep measurement.
const SWEEP_THREADS: usize = 4;

/// Compressed execution vs. decode-then-filter across predicate
/// selectivities: same unsorted filter over the (sorted but undeclared) `ts`
/// column, pushdown on vs. off, measuring wall time and — via the new
/// `QueryStats` row counters — how many rows each path actually decoded.
fn selectivity_sweep(table: &TableFile, ts: &[u64]) -> std::io::Result<()> {
    println!();
    println!("# Selectivity sweep — model-inverse pushdown vs decode-then-filter");
    println!();
    let n = ts.len();
    let lo_idx = n * 3 / 10; // anchor inside the range so zone maps stay honest
    let mut text = TextTable::new(vec![
        "selectivity",
        "rows selected",
        "pushdown decoded",
        "baseline decoded",
        "pushdown (ms)",
        "baseline (ms)",
    ]);
    let mut json_rows = Vec::new();
    for sel in SELECTIVITIES {
        let hi_idx = (lo_idx + (n as f64 * sel) as usize).min(n - 1);
        let (lo, hi) = (ts[lo_idx], ts[hi_idx]);
        let measure = |pushdown: bool| {
            let mut best = f64::INFINITY;
            let mut result = None;
            for _ in 0..3 {
                let start = Instant::now();
                let r = Scanner::new(table)
                    .filter_col(0, lo, hi)
                    .pushdown_filter(pushdown)
                    .count()
                    .run(SWEEP_THREADS)
                    .expect("sweep scan should not fail");
                best = best.min(start.elapsed().as_secs_f64());
                result = Some(r);
            }
            (result.expect("three runs completed"), best)
        };
        let (pd, pd_secs) = measure(true);
        let (base, base_secs) = measure(false);
        // Acceptance: identical selections, and at selective predicates the
        // pushdown kernels must decode strictly fewer rows.
        assert_eq!(pd.rows_selected, base.rows_selected, "sel {sel}");
        assert_eq!(pd.rows_scanned, base.rows_scanned, "sel {sel}");
        let pd_decoded = pd.stats.boundary_rows_decoded + pd.stats.rows_decoded_full;
        let base_decoded = base.stats.boundary_rows_decoded + base.stats.rows_decoded_full;
        assert_eq!(
            base_decoded, base.rows_scanned,
            "baseline decodes every scanned row"
        );
        let accounted = pd.stats.rows_skipped_by_model
            + pd.stats.boundary_rows_decoded
            + pd.stats.rows_decoded_full;
        assert_eq!(accounted, pd.rows_scanned, "pushdown row accounting");
        if sel <= 1e-2 {
            assert!(
                pd_decoded < base_decoded,
                "sel {sel}: pushdown decoded {pd_decoded} >= baseline {base_decoded}"
            );
        }
        let decoded_fraction = if pd.rows_scanned == 0 {
            0.0
        } else {
            pd_decoded as f64 / pd.rows_scanned as f64
        };
        text.row(vec![
            format!("{sel}"),
            format!("{}", pd.rows_selected),
            format!("{pd_decoded}"),
            format!("{base_decoded}"),
            format!("{:.1}", pd_secs * 1_000.0),
            format!("{:.1}", base_secs * 1_000.0),
        ]);
        json_rows.push(Json::Obj(vec![
            ("selectivity".into(), Json::Num(sel)),
            ("rows_selected".into(), Json::Num(pd.rows_selected as f64)),
            ("rows_scanned".into(), Json::Num(pd.rows_scanned as f64)),
            ("pushdown_rows_decoded".into(), Json::Num(pd_decoded as f64)),
            (
                "baseline_rows_decoded".into(),
                Json::Num(base_decoded as f64),
            ),
            ("decoded_fraction".into(), Json::Num(decoded_fraction)),
            ("pushdown_wall_seconds".into(), Json::Num(pd_secs)),
            ("baseline_wall_seconds".into(), Json::Num(base_secs)),
        ]));
    }
    text.print();
    println!();
    println!("Selections identical; pushdown decoded fewer rows at every selectivity <= 1%.");

    let mut report = BenchReport::new("scan_selectivity");
    report.add(
        "config",
        Json::Obj(vec![
            ("rows".into(), Json::Num(n as f64)),
            ("threads".into(), Json::Num(SWEEP_THREADS as f64)),
            ("encoding".into(), Json::Str("LeCo".into())),
        ]),
    );
    report.add("selectivity", Json::Arr(json_rows));
    report.add_table("selectivity_table", &text);
    let json_path = report.write()?;

    // Self-check: re-parse the emission, one row per swept selectivity.
    let text = std::fs::read_to_string(&json_path)?;
    let parsed =
        Json::parse(text.trim()).unwrap_or_else(|e| panic!("BENCH_scan_selectivity.json: {e}"));
    assert_eq!(
        parsed.get("bench").and_then(Json::as_str),
        Some("scan_selectivity")
    );
    let sweep = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .expect("sections array")
        .iter()
        .find(|s| s.get("label").and_then(Json::as_str) == Some("selectivity"))
        .and_then(|s| s.get("data"))
        .and_then(Json::as_arr)
        .expect("selectivity section")
        .len();
    assert_eq!(sweep, SELECTIVITIES.len());
    println!("BENCH_scan_selectivity.json re-parsed OK ({sweep} sweep rows).");
    Ok(())
}
