//! Figure 21: CPU/IO time breakdown of the bitmap-aggregation query with and
//! without block compression (`lzb` as the zstd stand-in), on the `ml` data
//! set at 0.01 selectivity — showing that the block codec's decompression CPU
//! can outweigh its I/O savings (§5.1.3).

use leco_bench::report::{write_bench_json, TextTable};
use leco_columnar::{
    exec, Bitmap, BlockCompression, Encoding, QueryStats, TableFile, TableFileOptions,
};
use leco_datasets::{generate, IntDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> std::io::Result<()> {
    let rows = leco_bench::small_bench_size();
    let values = generate(IntDataset::Ml, rows, 42);
    println!("# Figure 21 — time breakdown with block compression (ml, {rows} rows, selectivity 0.01%)\n");

    // Zipf-clustered bitmap at 0.01% selectivity.
    let mut rng = StdRng::seed_from_u64(5);
    let mut bitmap = Bitmap::new(rows);
    let total = (rows / 10_000).max(100);
    for _ in 0..10 {
        let start = rng.gen_range(0..rows - total / 10 - 1);
        bitmap.set_range(start, start + total / 10);
    }

    let mut table = TextTable::new(vec![
        "encoding",
        "block codec",
        "file size (MB)",
        "IO (ms)",
        "CPU (ms)",
        "total (ms)",
    ]);
    for enc in [Encoding::Default, Encoding::For, Encoding::Leco] {
        for compression in [BlockCompression::None, BlockCompression::Lzb] {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "leco-fig21-{:?}-{:?}-{}.tbl",
                enc,
                compression,
                std::process::id()
            ));
            let file = TableFile::write(
                &path,
                &["v"],
                std::slice::from_ref(&values),
                TableFileOptions {
                    encoding: enc,
                    row_group_size: 100_000,
                    block_compression: compression,
                },
            )?;
            let mut stats = QueryStats::default();
            let sum = exec::sum_selected(&file, 0, &bitmap, &mut stats)?;
            std::hint::black_box(sum);
            table.row(vec![
                enc.name().to_string(),
                match compression {
                    BlockCompression::None => "off".to_string(),
                    BlockCompression::Lzb => "lzb (zstd stand-in)".to_string(),
                },
                format!("{:.1}", file.file_size_bytes() as f64 / 1.0e6),
                format!("{:.2}", stats.io_seconds * 1_000.0),
                format!("{:.2}", stats.cpu_seconds * 1_000.0),
                format!("{:.2}", stats.total_seconds() * 1_000.0),
            ]);
            std::fs::remove_file(&path).ok();
            eprintln!("  finished {} / {:?}", enc.name(), compression);
        }
    }
    table.print();
    write_bench_json("fig21_blockcomp_time", &[("blockcomp_time", &table)]);
    println!("\nPaper reference (Fig. 21): the block codec's I/O savings are outweighed by its");
    println!(
        "decompression CPU on this selective query, so the total time increases — lightweight"
    );
    println!("encodings alone keep the CPU off the critical path.");
    Ok(())
}
