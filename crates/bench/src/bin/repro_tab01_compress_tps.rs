//! Table 1: compression throughput (GB/s) of every scheme, length-weighted
//! average ± standard deviation across the twelve microbenchmark data sets.

use leco_bench::measure::{measure_scheme, weighted_average, weighted_std};
use leco_bench::report::{write_bench_json, TextTable};
use leco_bench::scheme::Scheme;
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::small_bench_size();
    println!("# Table 1 — compression throughput (GB/s), {n} values per data set\n");
    let schemes = [
        Scheme::For,
        Scheme::EliasFano,
        Scheme::DeltaFix,
        Scheme::DeltaVar,
        Scheme::LecoFix,
        Scheme::LecoVar,
    ];
    let mut table = TextTable::new(vec!["scheme", "GB/s (weighted avg ± std)"]);
    for scheme in schemes {
        let mut samples: Vec<(f64, usize)> = Vec::new();
        for dataset in IntDataset::MICROBENCH {
            let values = generate(dataset, n, 42);
            if let Some(m) = measure_scheme(scheme, &values, dataset.value_width()) {
                samples.push((m.compress_gbps, values.len()));
            }
        }
        table.row(vec![
            scheme.name().to_string(),
            format!(
                "{:.2} ± {:.2}",
                weighted_average(&samples),
                weighted_std(&samples)
            ),
        ]);
        eprintln!("  finished {}", scheme.name());
    }
    table.print();
    write_bench_json("tab01_compress_tps", &[("compress_tps", &table)]);
    println!("\nPaper reference (Tab. 1): FOR/Delta/LeCo-fix compress at comparable speed;");
    println!("the variable-length schemes (Delta-var, LeCo-var) are an order of magnitude slower.");
}
