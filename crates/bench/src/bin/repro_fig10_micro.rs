//! Figure 10 + Figure 2 inputs: the integer microbenchmark.
//!
//! For every data set of §4.1 and every scheme of §4.2, reports the
//! compression ratio (with the model-size share), the average random-access
//! latency and the full-decompression throughput.  Figure 2 of the paper is
//! the length-weighted average of these per-data-set numbers; run
//! `repro_fig02_pareto` for that summary view.

use leco_bench::measure::measure_scheme;
use leco_bench::report::{f2, pct, write_bench_json, TextTable};
use leco_bench::scheme::Scheme;
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::bench_size();
    println!("# Figure 10 — integer microbenchmark ({n} values per data set)\n");
    let mut ratio = TextTable::new(vec![
        "dataset",
        "rANS",
        "FOR",
        "Elias-Fano",
        "Delta",
        "Delta-var",
        "LeCo",
        "LeCo-var",
        "LeCo model%",
    ]);
    let mut access = TextTable::new(vec![
        "dataset",
        "rANS",
        "FOR",
        "Elias-Fano",
        "Delta",
        "Delta-var",
        "LeCo",
        "LeCo-var",
    ]);
    let mut decode = TextTable::new(vec![
        "dataset",
        "rANS",
        "FOR",
        "Elias-Fano",
        "Delta",
        "Delta-var",
        "LeCo",
        "LeCo-var",
    ]);

    for dataset in IntDataset::MICROBENCH {
        let values = generate(dataset, n, 42);
        let width = dataset.value_width();
        let mut ratios = vec![dataset.name().to_string()];
        let mut accesses = vec![dataset.name().to_string()];
        let mut decodes = vec![dataset.name().to_string()];
        let mut leco_model_share = String::from("-");
        for scheme in Scheme::MICROBENCH {
            match measure_scheme(scheme, &values, width) {
                Some(m) => {
                    ratios.push(pct(m.compression_ratio));
                    accesses.push(format!("{:.0}ns", m.random_access_ns));
                    decodes.push(format!("{} GB/s", f2(m.decode_gbps)));
                    if scheme == Scheme::LecoFix {
                        leco_model_share = pct(m.model_ratio);
                    }
                }
                None => {
                    ratios.push("n/a".into());
                    accesses.push("n/a".into());
                    decodes.push("n/a".into());
                }
            }
        }
        ratios.push(leco_model_share);
        ratio.row(ratios);
        access.row(accesses);
        decode.row(decodes);
        eprintln!("  finished {}", dataset.name());
    }

    println!("## Compression ratio (compressed / uncompressed)\n");
    ratio.print();
    println!("\n## Random access latency\n");
    access.print();
    println!("\n## Full decompression throughput\n");
    decode.print();
    write_bench_json(
        "fig10_micro",
        &[
            ("ratio", &ratio),
            ("access_ns", &access),
            ("decode", &decode),
        ],
    );
    println!("\nPaper reference (Fig. 10): LeCo variants strictly beat FOR on ratio, match FOR on access;");
    println!(
        "Delta variants are ~an order of magnitude slower on random access; rANS compresses worst."
    );
}
