//! Figure 13: multi-column tabular data sets — per-table compression ratio of
//! FOR, Delta-fix, Delta-var, LeCo-fix and LeCo-var over (a) all numeric
//! columns and (b) high-cardinality columns only, together with the table's
//! sortedness.

use leco_bench::report::{f2, pct, BenchReport, TextTable};

const REPORT_NAME: &str = "fig13_tables";
use leco_bench::scheme::{encode, Scheme};
use leco_datasets::tables::{all_tables, Table};

const SCHEMES: [Scheme; 5] = [
    Scheme::For,
    Scheme::DeltaFix,
    Scheme::DeltaVar,
    Scheme::LecoFix,
    Scheme::LecoVar,
];

fn table_ratio(table: &Table, scheme: Scheme, high_cardinality_only: bool) -> f64 {
    let columns: Vec<&Vec<u64>> = if high_cardinality_only {
        table
            .high_cardinality_columns(0.10)
            .into_iter()
            .map(|(_, c)| c)
            .collect()
    } else {
        table.columns.iter().map(|(_, c)| c).collect()
    };
    if columns.is_empty() {
        return f64::NAN;
    }
    let mut compressed = 0usize;
    let mut raw = 0usize;
    for col in columns {
        raw += col.len() * 8;
        compressed += encode(scheme, col)
            .map(|e| e.size_bytes())
            .unwrap_or(col.len() * 8);
    }
    compressed as f64 / raw as f64
}

fn main() {
    let rows = (leco_bench::small_bench_size() / 4).max(50_000);
    println!("# Figure 13 — multi-column benchmark ({rows} rows per table)\n");
    let tables = all_tables(rows, 42);
    let mut report = BenchReport::new(REPORT_NAME);

    for (label, hc_only) in [
        ("all numeric columns", false),
        ("high-cardinality columns (NDV >= 10% rows)", true),
    ] {
        println!("## Compression ratio, {label}\n");
        let mut out = TextTable::new(vec![
            "table",
            "sortedness",
            "FOR",
            "Delta-fix",
            "Delta-var",
            "LeCo-fix",
            "LeCo-var",
            "LeCo-fix vs FOR",
        ]);
        for t in &tables {
            let mut cells = vec![t.name.to_string(), f2(t.sortedness())];
            let mut for_ratio = f64::NAN;
            let mut leco_ratio = f64::NAN;
            for scheme in SCHEMES {
                let r = table_ratio(t, scheme, hc_only);
                if scheme == Scheme::For {
                    for_ratio = r;
                }
                if scheme == Scheme::LecoFix {
                    leco_ratio = r;
                }
                cells.push(if r.is_nan() { "n/a".into() } else { pct(r) });
            }
            let improvement = if for_ratio.is_finite() && leco_ratio.is_finite() && for_ratio > 0.0
            {
                format!("-{:.1}%", (1.0 - leco_ratio / for_ratio) * 100.0)
            } else {
                "n/a".into()
            };
            cells.push(improvement);
            out.row(cells);
            eprintln!("  finished {} ({})", t.name, label);
        }
        out.print();
        report.add_table(label, &out);
        println!();
    }
    if let Err(e) = report.write() {
        eprintln!("failed to write BENCH_{REPORT_NAME}.json: {e}");
    }
    println!(
        "Paper reference (Fig. 13): LeCo beats FOR on every table; the advantage grows with the"
    );
    println!("table's sortedness (inventory, date_dim, stock) and on high-cardinality columns.");
}
