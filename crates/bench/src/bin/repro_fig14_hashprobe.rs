//! Figure 14: dictionary-compressed hash-probe throughput under a memory
//! budget (§4.5).
//!
//! The probe side (`medicare`-like column) is encoded with an order-preserving
//! dictionary; 1% of the rows pass a filter and probe an in-memory hash table
//! containing 50% of the distinct values.  The dictionary's value array is
//! stored Raw, FOR-compressed or LeCo-compressed, and lives in a byte-budgeted
//! buffer pool backed by a file: when the budget (minus the hash table) cannot
//! hold the dictionary, each code→value translation may fault a 4 KB page in
//! from disk.  Throughput is reported as raw probe-side bytes per second.

use leco_bench::measure::timed;
use leco_bench::report::{write_bench_json, TextTable};
use leco_codecs::{ForCodec, IntColumn, OpDict};
use leco_core::{LecoCompressor, LecoConfig};
use leco_datasets::{generate, IntDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::io::{Read, Seek, SeekFrom, Write};

const PAGE: usize = 4096;

/// A dictionary value array materialised behind a paged buffer pool.
struct PagedDictionary {
    /// The compressed (or raw) representation used to answer lookups.
    lookup: Box<dyn Fn(usize) -> u64>,
    /// Total footprint in bytes of the representation.
    bytes: usize,
    /// File simulating the spill location of pages that do not fit in memory.
    file: std::fs::File,
}

impl PagedDictionary {
    fn new(lookup: Box<dyn Fn(usize) -> u64>, bytes: usize) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("leco-fig14-{}-{bytes}.bin", std::process::id()));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .expect("create spill file");
        file.write_all(&vec![0u8; bytes.max(PAGE)])
            .expect("fill spill file");
        std::fs::remove_file(&path).ok(); // unlinked but kept open
        Self {
            lookup,
            bytes,
            file,
        }
    }

    /// Translate a dictionary code to its value under the given buffer-pool
    /// budget: codes mapping to pages beyond the resident prefix pay a 4 KB
    /// read from the spill file.
    fn translate(&mut self, code: usize, resident_bytes: usize) -> u64 {
        let byte_pos = (code * 8) % self.bytes.max(1);
        if byte_pos >= resident_bytes {
            let page = (byte_pos / PAGE) * PAGE;
            let mut buf = [0u8; PAGE];
            let off = page.min(self.bytes.saturating_sub(PAGE)) as u64;
            self.file.seek(SeekFrom::Start(off)).expect("seek spill");
            let _ = self.file.read(&mut buf).expect("read spill");
            std::hint::black_box(buf[0]);
        }
        (self.lookup)(code)
    }
}

fn main() {
    let n = leco_bench::small_bench_size();
    println!("# Figure 14 — hash probe with a dictionary-compressed probe side ({n} rows)\n");
    let probe = generate(IntDataset::Medicare, n, 42);
    let dict = OpDict::encode(&probe);
    let distinct = dict.dictionary().to_vec();
    println!(
        "probe column: {} rows, {} distinct values, dictionary {} KB raw\n",
        n,
        distinct.len(),
        distinct.len() * 8 / 1024
    );

    // Hash table with 50% of the distinct values (the join build side).
    let mut rng = StdRng::seed_from_u64(7);
    let build: HashSet<u64> = distinct
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    let hash_table_bytes = build.len() * 16;

    // Dictionary value-array representations.
    let raw_bytes = distinct.len() * 8;
    let for_col = ForCodec::encode(&distinct, 128);
    let leco_col = LecoCompressor::new(LecoConfig::leco_fix_with_len(1024)).compress(&distinct);
    println!(
        "dictionary footprints: Raw {} KB, FOR {} KB (ratio {:.1}%), LeCo {} KB (ratio {:.2}%)\n",
        raw_bytes / 1024,
        for_col.size_bytes() / 1024,
        for_col.size_bytes() as f64 / raw_bytes as f64 * 100.0,
        leco_col.size_bytes() / 1024,
        leco_col.size_bytes() as f64 / raw_bytes as f64 * 100.0
    );

    // Probe workload: 1% filter selectivity.
    let selected: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.01)).collect();
    let raw_probe_bytes = (n * 8) as f64;

    // Memory budgets as fractions of (hash table + raw dictionary), mirroring
    // the paper's 3 GB → 500 MB sweep on a laptop-sized problem.
    let full = hash_table_bytes + raw_bytes;
    let budgets: Vec<(String, usize)> = [1.2, 0.8, 0.5, 0.4, 0.35, 0.3, 0.25]
        .iter()
        .map(|f| (format!("{:.0}%", f * 100.0), (full as f64 * f) as usize))
        .collect();

    let mut table = TextTable::new(vec![
        "memory budget (of raw working set)",
        "Raw GB/s",
        "FOR GB/s",
        "LeCo GB/s",
        "LeCo vs FOR",
    ]);
    let distinct_for_lookup = distinct.clone();
    let mut variants: Vec<(&str, PagedDictionary)> = vec![
        (
            "Raw",
            PagedDictionary::new(Box::new(move |c| distinct_for_lookup[c]), raw_bytes),
        ),
        (
            "FOR",
            PagedDictionary::new(
                Box::new(move |c| for_col.get(c)),
                ForCodec::encode(&distinct, 128).size_bytes(),
            ),
        ),
        (
            "LeCo",
            PagedDictionary::new(
                Box::new(move |c| leco_col.get(c)),
                LecoCompressor::new(LecoConfig::leco_fix_with_len(1024))
                    .compress(&distinct)
                    .size_bytes(),
            ),
        ),
    ];

    for (label, budget) in budgets {
        let mut tputs = Vec::new();
        for (_, dictionary) in variants.iter_mut() {
            let resident = budget
                .saturating_sub(hash_table_bytes)
                .min(dictionary.bytes);
            let (matches, secs) = timed("bench.hash_probe_ns", || {
                let mut matches = 0u64;
                for &row in &selected {
                    let code = dict.code(row) as usize;
                    let value = dictionary.translate(code, resident);
                    if build.contains(&value) {
                        matches += 1;
                    }
                }
                matches
            });
            std::hint::black_box(matches);
            tputs.push(raw_probe_bytes / secs / 1.0e9);
        }
        let speedup = if tputs[1] > 0.0 {
            format!("{:.1}x", tputs[2] / tputs[1])
        } else {
            "n/a".into()
        };
        table.row(vec![
            label,
            format!("{:.2}", tputs[0]),
            format!("{:.2}", tputs[1]),
            format!("{:.2}", tputs[2]),
            speedup,
        ]);
        eprintln!("  finished budget {budget} bytes");
    }
    table.print();
    write_bench_json("fig14_hashprobe", &[("hashprobe", &table)]);
    println!(
        "\nPaper reference (Fig. 14): once the budget can no longer hold the FOR/raw dictionary,"
    );
    println!(
        "their throughput collapses (buffer-pool misses) while the LeCo dictionary still fits,"
    );
    println!("yielding up to ~two orders of magnitude higher probe throughput.");
}
