//! Figure 11: the Regressor Selector — compression ratio obtained with FOR,
//! LeCo (linear only), the selector's per-partition recommendation and the
//! exhaustive optimum on the eight non-linear data sets of §4.4.

use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_core::{LecoCompressor, LecoConfig, PartitionerKind, RegressorKind};
use leco_datasets::{generate, IntDataset};

const PARTITION: usize = 2_000;

fn ratio(values: &[u64], width: usize, regressor: RegressorKind) -> f64 {
    let col = LecoCompressor::new(LecoConfig {
        regressor,
        partitioner: PartitionerKind::Fixed { len: PARTITION },
    })
    .compress(values);
    col.size_bytes() as f64 / (values.len() * width) as f64
}

/// The exhaustive optimum: per partition, pick the candidate family with the
/// smallest compressed size.
fn optimal_ratio(values: &[u64], width: usize) -> f64 {
    let mut total = 0usize;
    for chunk in values.chunks(PARTITION) {
        let mut best_bytes = usize::MAX;
        for kind in leco_core::advisor::selector::CANDIDATES {
            let col = LecoCompressor::new(LecoConfig {
                regressor: kind,
                partitioner: PartitionerKind::Fixed { len: PARTITION },
            })
            .compress(chunk);
            best_bytes = best_bytes.min(col.size_bytes());
        }
        total += best_bytes;
    }
    total as f64 / (values.len() * width) as f64
}

fn main() {
    let n = leco_bench::small_bench_size().min(500_000);
    println!("# Figure 11 — Regressor Selector vs FOR / linear LeCo / optimal ({n} values)\n");
    let mut table = TextTable::new(vec![
        "dataset",
        "FOR",
        "LeCo (linear)",
        "recommend",
        "optimal",
    ]);
    for dataset in IntDataset::NONLINEAR {
        let values = generate(dataset, n, 42);
        let width = dataset.value_width();
        let for_ = ratio(&values, width, RegressorKind::Constant);
        let linear = ratio(&values, width, RegressorKind::Linear);
        let recommend = ratio(&values, width, RegressorKind::Auto);
        let optimal = optimal_ratio(&values, width);
        table.row(vec![
            dataset.name().to_string(),
            pct(for_),
            pct(linear),
            pct(recommend),
            pct(optimal),
        ]);
        eprintln!("  finished {}", dataset.name());
    }
    table.print();
    write_bench_json("fig11_selector", &[("selector", &table)]);
    println!(
        "\nPaper reference (Fig. 11): the recommended regressor tracks the optimal closely and"
    );
    println!("improves substantially over linear-only LeCo on higher-order data sets (poly, exp, polylog);");
    println!("on mostly-linear data (movieid) the gain is limited.");
}
