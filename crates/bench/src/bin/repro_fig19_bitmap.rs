//! Figure 19: single-column bitmap aggregation (§5.1.2) — sum the selected
//! positions of a column under Zipf-clustered bitmaps of varying selectivity,
//! for the `normal`, `booksale`, `poisson` and `ml` data sets.

use leco_bench::report::{BenchReport, TextTable};

const REPORT_NAME: &str = "fig19_bitmap";
use leco_columnar::{exec, Bitmap, Encoding, QueryStats, TableFile, TableFileOptions};
use leco_datasets::{generate, IntDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENCODINGS: [Encoding; 4] = [
    Encoding::Default,
    Encoding::Delta,
    Encoding::For,
    Encoding::Leco,
];
const SELECTIVITIES: [f64; 5] = [0.00001, 0.0001, 0.001, 0.01, 0.1];

/// Zipf-like clustered bitmap: ten clusters of set bits whose sizes follow a
/// skewed distribution, totalling `selectivity · n` bits.
fn clustered_bitmap(n: usize, selectivity: f64, rng: &mut StdRng) -> Bitmap {
    let mut bitmap = Bitmap::new(n);
    let total = ((n as f64 * selectivity) as usize).max(1);
    let clusters = 10usize;
    let mut remaining = total;
    for c in 0..clusters {
        // Zipf-ish cluster sizes: cluster c gets ~ total/(c+1)/H share.
        let share = (total as f64 / (c + 1) as f64 / 2.93) as usize;
        let size = share.min(remaining).max(1);
        let start = rng.gen_range(0..n.saturating_sub(size).max(1));
        bitmap.set_range(start, start + size);
        remaining = remaining.saturating_sub(size);
        if remaining == 0 {
            break;
        }
    }
    bitmap
}

fn main() -> std::io::Result<()> {
    let rows = leco_bench::small_bench_size();
    println!("# Figure 19 — bitmap aggregation ({rows} rows per data set)\n");
    let mut report = BenchReport::new(REPORT_NAME);
    let datasets = [
        IntDataset::Normal,
        IntDataset::Booksale,
        IntDataset::Poisson,
        IntDataset::Ml,
    ];
    for dataset in datasets {
        let values = generate(dataset, rows, 42);
        println!("## dataset: {}\n", dataset.name());
        let mut table = TextTable::new(vec![
            "selectivity",
            "encoding",
            "IO (ms)",
            "CPU (ms)",
            "total (ms)",
        ]);
        let mut files = Vec::new();
        for enc in ENCODINGS {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "leco-fig19-{}-{:?}-{}.tbl",
                dataset.name(),
                enc,
                std::process::id()
            ));
            let file = TableFile::write(
                &path,
                &["v"],
                std::slice::from_ref(&values),
                TableFileOptions {
                    encoding: enc,
                    row_group_size: 100_000,
                    ..Default::default()
                },
            )?;
            files.push((enc, file, path));
        }
        let mut rng = StdRng::seed_from_u64(99);
        for selectivity in SELECTIVITIES {
            let bitmap = clustered_bitmap(rows, selectivity, &mut rng);
            for (enc, file, _) in &files {
                let mut stats = QueryStats::default();
                let sum = exec::sum_selected(file, 0, &bitmap, &mut stats)?;
                std::hint::black_box(sum);
                table.row(vec![
                    format!("{:.3}%", selectivity * 100.0),
                    enc.name().to_string(),
                    format!("{:.2}", stats.io_seconds * 1_000.0),
                    format!("{:.2}", stats.cpu_seconds * 1_000.0),
                    format!("{:.2}", stats.total_seconds() * 1_000.0),
                ]);
            }
            eprintln!("  finished {} selectivity {selectivity}", dataset.name());
        }
        table.print();
        report.add_table(dataset.name(), &table);
        println!();
        for (_, _, path) in files {
            std::fs::remove_file(path).ok();
        }
    }
    if let Err(e) = report.write() {
        eprintln!("failed to write BENCH_{REPORT_NAME}.json: {e}");
    }
    println!(
        "Paper reference (Fig. 19): LeCo outperforms Default (up to 11.8x), Delta (up to 3.9x) and"
    );
    println!(
        "FOR (up to 5.0x) thanks to smaller files, fast random access and row-group skipping."
    );
    Ok(())
}
