//! Figure 2: the Pareto view — length-weighted average compression ratio and
//! random-access latency across the twelve microbenchmark data sets for FOR,
//! Elias-Fano, Delta, LeCo and LeCo-var.

use leco_bench::measure::{measure_scheme, weighted_average};
use leco_bench::report::{pct, write_bench_json, TextTable};
use leco_bench::scheme::Scheme;
use leco_datasets::{generate, IntDataset};

fn main() {
    let n = leco_bench::bench_size();
    println!(
        "# Figure 2 — Pareto trade-off (weighted average over 12 data sets, {n} values each)\n"
    );
    let schemes = [
        Scheme::For,
        Scheme::EliasFano,
        Scheme::DeltaFix,
        Scheme::LecoFix,
        Scheme::LecoVar,
    ];
    let mut table = TextTable::new(vec!["scheme", "compression ratio", "random access (ns)"]);
    for scheme in schemes {
        let mut ratios: Vec<(f64, usize)> = Vec::new();
        let mut latencies: Vec<(f64, usize)> = Vec::new();
        for dataset in IntDataset::MICROBENCH {
            let values = generate(dataset, n, 42);
            if let Some(m) = measure_scheme(scheme, &values, dataset.value_width()) {
                ratios.push((m.compression_ratio, values.len()));
                latencies.push((m.random_access_ns, values.len()));
            }
        }
        table.row(vec![
            scheme.name().to_string(),
            pct(weighted_average(&ratios)),
            format!("{:.0}", weighted_average(&latencies)),
        ]);
        eprintln!("  finished {}", scheme.name());
    }
    table.print();
    write_bench_json("fig02_pareto", &[("pareto", &table)]);
    println!("\nPaper reference (Fig. 2): LeCo sits on the Pareto frontier — better ratio than FOR/Elias-Fano");
    println!("at comparable access latency, and far faster access than Delta at a similar ratio.");
}
