//! Criterion bench backing Figures 18–21: the columnar engine's filter,
//! group-by and bitmap-aggregation kernels per encoding, plus the
//! morsel-driven parallel scan engine at 1/2/4/8 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leco_columnar::{exec, Bitmap, Encoding, QueryStats, TableFile, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};
use leco_scan::Scanner;

const ROWS: usize = 100_000;

fn write_file(encoding: Encoding) -> (TableFile, std::path::PathBuf) {
    let t = sensor_table(ROWS, SensorDistribution::Correlated, 42);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "leco-bench-columnar-{:?}-{}.tbl",
        encoding,
        std::process::id()
    ));
    let file = TableFile::write(
        &path,
        &["ts", "id", "val"],
        &[t.ts, t.id, t.val],
        TableFileOptions {
            encoding,
            row_group_size: 50_000,
            ..Default::default()
        },
    )
    .expect("write table file");
    (file, path)
}

fn bench_filter_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_filter_groupby");
    group.sample_size(10);
    for encoding in [
        Encoding::Default,
        Encoding::Delta,
        Encoding::For,
        Encoding::Leco,
    ] {
        let (file, path) = write_file(encoding);
        let ts_lo = 1_493_700_000_000u64;
        group.bench_function(BenchmarkId::new("query", encoding.name()), |b| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                let bitmap =
                    exec::filter_range(&file, 0, ts_lo, u64::MAX / 2, true, &mut stats).unwrap();
                let groups = exec::group_by_avg(&file, 1, 2, &bitmap, &mut stats).unwrap();
                std::hint::black_box(groups.len())
            })
        });
        std::fs::remove_file(path).ok();
    }
    group.finish();
}

fn bench_bitmap_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_bitmap_sum");
    group.sample_size(10);
    for encoding in [Encoding::Default, Encoding::For, Encoding::Leco] {
        let (file, path) = write_file(encoding);
        let mut bitmap = Bitmap::new(ROWS);
        bitmap.set_range(10_000, 11_000);
        bitmap.set_range(60_000, 60_100);
        group.bench_function(BenchmarkId::new("sum", encoding.name()), |b| {
            b.iter(|| {
                let mut stats = QueryStats::default();
                std::hint::black_box(exec::sum_selected(&file, 2, &bitmap, &mut stats).unwrap())
            })
        });
        std::fs::remove_file(path).ok();
    }
    group.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_parallel_filter_groupby");
    group.sample_size(10);
    let (file, path) = write_file(Encoding::Leco);
    let ts_lo = 1_493_700_000_000u64;
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let result = Scanner::new(&file)
                    .filter_col(0, ts_lo, u64::MAX / 2)
                    .sorted_filter(true)
                    .group_by_avg_cols(1, 2)
                    .run(threads)
                    .expect("scan");
                std::hint::black_box(result.groups.len())
            })
        });
    }
    std::fs::remove_file(path).ok();
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_groupby,
    bench_bitmap_sum,
    bench_parallel_scan
);
criterion_main!(benches);
