//! Criterion bench backing Figure 15: random access into compressed string
//! columns (FSST-style vs LeCo's string extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leco_codecs::FsstLike;
use leco_core::string::{CompressedStrings, StringConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 30_000;

fn bench_string_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_string_random_access");
    let mut rng = StdRng::seed_from_u64(42);
    let strings = leco_datasets::strings::email(N, &mut rng);
    let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();

    let fsst_plain = FsstLike::encode(&strings, 0);
    let fsst_blocked = FsstLike::encode(&strings, 100);
    let leco = CompressedStrings::encode(&refs, StringConfig::default());

    let mut access_rng = StdRng::seed_from_u64(7);
    group.bench_function(BenchmarkId::new("fsst", "offset_block_0"), |b| {
        b.iter(|| std::hint::black_box(fsst_plain.get(access_rng.gen_range(0..N)).len()))
    });
    group.bench_function(BenchmarkId::new("fsst", "offset_block_100"), |b| {
        b.iter(|| std::hint::black_box(fsst_blocked.get(access_rng.gen_range(0..N)).len()))
    });
    group.bench_function(BenchmarkId::new("leco", "reduced_charset"), |b| {
        b.iter(|| std::hint::black_box(leco.get(access_rng.gen_range(0..N)).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_string_access);
criterion_main!(benches);
