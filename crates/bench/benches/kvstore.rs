//! Criterion bench backing Figure 22: single-threaded seek latency of the
//! KV store under the different index-block formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leco_datasets::zipf::Zipf;
use leco_kvstore::{IndexBlockFormat, Store, StoreOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RECORDS: usize = 50_000;

fn bench_seek(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_seek");
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..RECORDS)
        .map(|i| {
            (
                format!("user{:016}", i as u64 * 7919).into_bytes(),
                vec![b'v'; 400],
            )
        })
        .collect();
    let zipf = Zipf::ycsb_skewed(RECORDS);
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<Vec<u8>> = zipf
        .sample_many(10_000, &mut rng)
        .into_iter()
        .map(|r| records[r].0.clone())
        .collect();
    for format in [
        IndexBlockFormat::RestartInterval(1),
        IndexBlockFormat::RestartInterval(128),
        IndexBlockFormat::Leco,
    ] {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "leco-bench-kv-{}-{}.sst",
            format.name(),
            std::process::id()
        ));
        let store = Store::load(
            &path,
            &records,
            StoreOptions {
                index_format: format,
                block_cache_bytes: 4 << 20,
            },
        )
        .expect("load store");
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new("seek", format.name()), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % queries.len();
                std::hint::black_box(store.seek(&queries[cursor]).unwrap())
            })
        });
        std::fs::remove_file(path).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_seek);
criterion_main!(benches);
