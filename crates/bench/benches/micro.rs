//! Criterion microbenchmark backing Figures 2 and 10: random access latency
//! and full-decompression throughput per scheme on representative data sets.
//!
//! The `repro_fig10_micro` binary prints the full 12-data-set table; this
//! bench keeps the wall-clock time manageable by measuring two contrasting
//! data sets (a locally-easy one and a globally-hard one).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use leco_bench::scheme::{encode, Scheme};
use leco_datasets::{generate, IntDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;
const DATASETS: [IntDataset; 2] = [IntDataset::Booksale, IntDataset::Movieid];

fn bench_random_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_random_access");
    for dataset in DATASETS {
        let values = generate(dataset, N, 42);
        for scheme in [
            Scheme::For,
            Scheme::EliasFano,
            Scheme::DeltaFix,
            Scheme::LecoFix,
            Scheme::LecoVar,
        ] {
            let Some(encoded) = encode(scheme, &values) else {
                continue;
            };
            let mut rng = StdRng::seed_from_u64(1);
            group.bench_function(BenchmarkId::new(scheme.name(), dataset.name()), |b| {
                b.iter(|| {
                    let i = rng.gen_range(0..values.len());
                    std::hint::black_box(encoded.get(i))
                })
            });
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_full_decode");
    group.sample_size(10);
    for dataset in DATASETS {
        let values = generate(dataset, N, 42);
        group.throughput(Throughput::Bytes((values.len() * 8) as u64));
        for scheme in [Scheme::For, Scheme::DeltaFix, Scheme::LecoFix] {
            let Some(encoded) = encode(scheme, &values) else {
                continue;
            };
            // One reused buffer: the measurement is the word-parallel bulk
            // decode itself, not the allocator.
            let mut buf: Vec<u64> = Vec::with_capacity(values.len());
            group.bench_function(BenchmarkId::new(scheme.name(), dataset.name()), |b| {
                b.iter(|| {
                    buf.clear();
                    encoded.decode_into(&mut buf);
                    std::hint::black_box(buf.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab01_compression");
    group.sample_size(10);
    let values = generate(IntDataset::Booksale, N, 42);
    group.throughput(Throughput::Bytes((values.len() * 8) as u64));
    for scheme in [Scheme::For, Scheme::DeltaFix, Scheme::LecoFix] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| std::hint::black_box(encode(scheme, &values).unwrap().size_bytes()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_random_access, bench_decode, bench_compress);
criterion_main!(benches);
