//! Criterion bench backing Figures 5, 16 and 17: compression cost of the
//! different partitioning strategies, plus an ablation of the ℓ∞ (minimax)
//! versus ℓ2 (least-squares) linear fit called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leco_core::regressor::linear;
use leco_core::{LecoCompressor, LecoConfig, PartitionerKind, RegressorKind};
use leco_datasets::{generate, IntDataset};

const N: usize = 100_000;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_partitioners");
    group.sample_size(10);
    let values = generate(IntDataset::Movieid, N, 42);
    let configs: [(&str, PartitionerKind); 4] = [
        ("fixed_auto", PartitionerKind::FixedAuto),
        ("split_merge", PartitionerKind::SplitMerge { tau: 0.1 }),
        ("pla", PartitionerKind::Pla { epsilon: 64 }),
        ("la_vector", PartitionerKind::LaVector),
    ];
    for (name, partitioner) in configs {
        group.bench_function(BenchmarkId::new("compress", name), |b| {
            b.iter(|| {
                let col = LecoCompressor::new(LecoConfig {
                    regressor: RegressorKind::Linear,
                    partitioner: partitioner.clone(),
                })
                .compress(&values);
                std::hint::black_box(col.size_bytes())
            })
        });
    }
    group.finish();
}

/// Split–merge throughput on the long-run timestamp workload whose cost
/// model this crate re-tuned; `LECO_N`/`LECO_SCALE` scale it up (the
/// ROADMAP's 200M-value runs) without recompiling.
fn bench_split_merge_timestamps(c: &mut Criterion) {
    let n = leco_bench::bench_size();
    let values = generate(IntDataset::Timestamps, n, 42);
    let mut group = c.benchmark_group("split_merge_timestamps");
    group.sample_size(10);
    group.throughput(criterion::Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        b.iter(|| {
            let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
            std::hint::black_box(col.size_bytes())
        })
    });
    group.finish();
}

fn bench_fit_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_linear_fit");
    let ys: Vec<f64> = generate(IntDataset::Booksale, 4_096, 42)
        .iter()
        .map(|&v| v as f64)
        .collect();
    group.bench_function("minimax_linf_hull", |b| {
        b.iter(|| std::hint::black_box(linear::fit_linear(&ys)))
    });
    group.bench_function("minimax_linf_ternary", |b| {
        b.iter(|| std::hint::black_box(linear::fit_linear_ternary(&ys)))
    });
    group.bench_function("least_squares_l2", |b| {
        b.iter(|| std::hint::black_box(linear::fit_least_squares(&ys)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioners,
    bench_split_merge_timestamps,
    bench_fit_ablation
);
criterion_main!(benches);
