//! Greedy variable-length partitioning: the split–merge algorithm of §3.2.2.
//!
//! * **Init** — candidate starting positions are scored by the magnitude of
//!   their (k+1)-th order differences (small means "locally polynomial of
//!   degree ≤ k", a good place to anchor a partition).
//! * **Split** — partitions grow greedily; a neighbouring point is admitted
//!   when its *inclusion cost* `C = (len+1)·Δ_new − len·Δ_old` stays below
//!   `τ·S_M`, where `Δ` is the cheap width proxy of §3.2.2 (the bit width of
//!   the spread of k-th order differences) and `S_M` the model size.
//! * **Merge** — adjacent partitions are merged whenever the exactly
//!   evaluated size of the merged partition is smaller than the sum of the
//!   parts, iterating until a fixed point.
//! * **Refine** — each boundary between adjacent partitions is hill-climbed
//!   over exponentially spaced offsets, keeping a move when the exactly
//!   evaluated cost of the pair shrinks. The split phase places boundaries
//!   using the cheap width proxy, which systematically misjudges where a
//!   linear fit actually starts to degrade; refinement recovers most of the
//!   gap to the DP optimum at a small extra cost.
//!
//! All exact evaluations go through one shared [`CostModel`] oracle: the
//! cost of a span is the *serialized* record size (correction list
//! included), fits are the O(n) hull minimax fit rather than the old
//! ~130-pass ternary search, repeat spans are served from a memo, and the
//! oracle's O(1) prefix-sum estimates pre-rank candidate cut points so the
//! bisect phase can scan a 3× finer grid for the same exact-fit budget
//! (see `docs/PARTITIONING.md`).

use super::Partition;
use crate::model::RegressorKind;
use crate::regressor::CostModel;

/// Cap on the length a merged partition may reach; prevents the merge phase
/// from degenerating to quadratic work on very long runs.
const MAX_MERGED_LEN: usize = 1 << 16;
/// Maximum number of merge passes. Pair-merging doubles partition lengths
/// at best, so reaching [`MAX_MERGED_LEN`] from singletons needs log₂(2¹⁶)
/// twice over; passes stop early at the first fixed point anyway.
const MAX_MERGE_PASSES: usize = 32;
/// Look-ahead window when choosing a good starting position.
const START_LOOKAHEAD: usize = 8;

/// Difference order used as the Δ proxy for each regressor family.
fn proxy_degree(kind: RegressorKind) -> usize {
    match kind {
        RegressorKind::Constant => 0,
        RegressorKind::Linear | RegressorKind::Auto => 1,
        RegressorKind::Poly2 => 2,
        RegressorKind::Poly3 => 3,
        // The special models behave roughly linearly at partition scale.
        RegressorKind::Exponential | RegressorKind::Logarithm | RegressorKind::Sine { .. } => 1,
    }
}

/// Nominal serialized model size in bits for the split threshold `τ·S_M`.
fn nominal_model_bits(kind: RegressorKind) -> f64 {
    let bytes = match kind {
        RegressorKind::Constant => 9,
        RegressorKind::Linear | RegressorKind::Auto => 17,
        RegressorKind::Poly2 => 26,
        RegressorKind::Poly3 => 34,
        RegressorKind::Exponential | RegressorKind::Logarithm => 17,
        RegressorKind::Sine { terms, .. } => 18 + terms as usize * 24,
    };
    (bytes * 8) as f64
}

/// Incrementally tracks the spread (max − min) of the `degree`-th order
/// differences of the values pushed so far, yielding the Δ width proxy.
#[derive(Debug, Clone)]
struct DiffTracker {
    degree: usize,
    /// Last `degree` raw values (enough to form the next difference).
    tail: Vec<i128>,
    count: usize,
    min_d: i128,
    max_d: i128,
}

impl DiffTracker {
    fn new(degree: usize) -> Self {
        Self {
            degree,
            tail: Vec::with_capacity(degree + 1),
            count: 0,
            min_d: i128::MAX,
            max_d: i128::MIN,
        }
    }

    /// The `degree`-th order difference ending at `v`, given the previous
    /// `degree` values in `tail` (oldest first).
    fn diff_with(&self, v: i128) -> Option<i128> {
        if self.tail.len() < self.degree {
            return if self.degree == 0 { Some(v) } else { None };
        }
        // Binomial expansion: Σ (-1)^k · C(d, k) · x_{last-k}
        let d = self.degree;
        let mut acc: i128 = 0;
        let mut coeff: i128 = 1;
        for k in 0..=d {
            let x = if k == 0 {
                v
            } else {
                self.tail[self.tail.len() - k]
            };
            acc += coeff * x;
            // next coefficient: C(d,k+1)·(-1)^{k+1}
            coeff = -coeff * (d as i128 - k as i128) / (k as i128 + 1);
        }
        Some(acc)
    }

    /// Δ width (bits) after hypothetically pushing `v`, without mutating.
    fn width_with(&self, v: i128) -> u8 {
        match self.diff_with(v) {
            None => self.width(),
            Some(d) => {
                let min_d = self.min_d.min(d);
                let max_d = self.max_d.max(d);
                spread_bits(min_d, max_d)
            }
        }
    }

    /// Current Δ width (bits).
    fn width(&self) -> u8 {
        if self.count == 0 || self.min_d > self.max_d {
            0
        } else {
            spread_bits(self.min_d, self.max_d)
        }
    }

    fn push(&mut self, v: i128) {
        if let Some(d) = self.diff_with(v) {
            self.min_d = self.min_d.min(d);
            self.max_d = self.max_d.max(d);
        }
        if self.degree > 0 {
            self.tail.push(v);
            if self.tail.len() > self.degree {
                self.tail.remove(0);
            }
        }
        self.count += 1;
    }
}

/// Bits needed to represent the spread `max − min` (saturating at 64).
fn spread_bits(min_d: i128, max_d: i128) -> u8 {
    if min_d > max_d {
        return 0;
    }
    let spread = (max_d - min_d) as u128;
    if spread > u64::MAX as u128 {
        64
    } else {
        leco_bitpack::bits_for(spread as u64)
    }
}

/// Scores for the init phase: the bit width of the (degree+1)-th order
/// difference ending at each position (0 for the first degree+1 positions).
fn start_scores(values: &[u64], degree: usize) -> Vec<u8> {
    let order = degree + 1;
    let mut scores = vec![0u8; values.len()];
    if values.len() <= order {
        return scores;
    }
    // Difference triangle, computed iteratively.
    let mut current: Vec<i128> = values.iter().map(|&v| v as i128).collect();
    for _ in 0..order {
        for i in (1..current.len()).rev() {
            current[i] -= current[i - 1];
        }
        current.remove(0);
    }
    for (i, &d) in current.iter().enumerate() {
        let mag = d.unsigned_abs();
        let bits = if mag > u64::MAX as u128 {
            64
        } else {
            leco_bitpack::bits_for(mag as u64)
        };
        scores[i + order] = bits;
    }
    scores
}

/// The split phase: grow partitions greedily from good starting positions.
fn split_phase(values: &[u64], regressor: RegressorKind, tau: f64) -> Vec<Partition> {
    let n = values.len();
    let degree = proxy_degree(regressor);
    let min_len = (degree + 2).max(2);
    let threshold = tau * nominal_model_bits(regressor);
    let scores = start_scores(values, degree);

    let mut parts: Vec<Partition> = Vec::new();
    let mut i = 0usize;
    while i < n {
        // Init: if the immediate position is "bumpy", emit singletons until a
        // locally smooth start within the look-ahead window.
        if i > 0 && n - i > min_len + START_LOOKAHEAD {
            let window_end = (i + START_LOOKAHEAD).min(n - min_len);
            let best = (i..window_end).min_by_key(|&p| scores[p]).unwrap_or(i);
            while i < best {
                parts.push(Partition::new(i, 1));
                i += 1;
            }
        }
        let start = i;
        let end = (start + min_len).min(n);
        let mut tracker = DiffTracker::new(degree);
        for &v in &values[start..end] {
            tracker.push(v as i128);
        }
        let mut j = end;
        while j < n {
            let old_width = tracker.width() as f64;
            let old_len = (j - start) as f64;
            let new_width = tracker.width_with(values[j] as i128) as f64;
            let cost = (old_len + 1.0) * new_width - old_len * old_width;
            if cost <= threshold {
                tracker.push(values[j] as i128);
                j += 1;
            } else {
                break;
            }
        }
        parts.push(Partition::new(start, j - start));
        i = j;
    }
    parts
}

/// All phases exchange `(partitions, per-partition exact costs)` so no phase
/// has to refit what the previous one already evaluated.
type PartsAndCosts = (Vec<Partition>, Vec<usize>);

/// The merge phase: repeatedly merge adjacent partitions while that reduces
/// the exactly evaluated compressed size.
///
/// Each pass merges disjoint *pairs* and advances past a merge, so a value
/// is re-fitted at most once per pass and long runs coalesce through
/// doubling across passes: O(n·log n) fit work overall. (Growing one
/// accumulator partition across a pass — re-fitting the whole chain on
/// every admission — is O(chain²) and took minutes on million-value columns
/// whose split phase emits many small partitions.)
fn merge_phase(oracle: &mut CostModel<'_>, (mut parts, mut costs): PartsAndCosts) -> PartsAndCosts {
    if parts.len() <= 1 {
        return (parts, costs);
    }
    for _ in 0..MAX_MERGE_PASSES {
        let mut changed = false;
        let mut new_parts: Vec<Partition> = Vec::with_capacity(parts.len());
        let mut new_costs: Vec<usize> = Vec::with_capacity(parts.len());
        let mut k = 0;
        while k < parts.len() {
            if k + 1 < parts.len() {
                let merged_len = parts[k].len + parts[k + 1].len;
                if merged_len <= MAX_MERGED_LEN {
                    let merged_cost =
                        oracle.exact_bits(parts[k].start, parts[k].start + merged_len);
                    if merged_cost < costs[k] + costs[k + 1] {
                        new_parts.push(Partition::new(parts[k].start, merged_len));
                        new_costs.push(merged_cost);
                        changed = true;
                        k += 2;
                        continue;
                    }
                }
            }
            new_parts.push(parts[k]);
            new_costs.push(costs[k]);
            k += 1;
        }
        parts = new_parts;
        costs = new_costs;
        if !changed {
            break;
        }
    }
    (parts, costs)
}

/// Interior candidate split points exactly evaluated per partition in the
/// bisect phase.
const BISECT_CANDIDATES: usize = 9;
/// Finer grid scanned with the oracle's O(1) estimates; its best entries
/// join the evenly spaced exact candidates.
const BISECT_ESTIMATE_GRID: usize = 31;
/// How many estimate-ranked grid points are promoted to exact evaluation.
const BISECT_PROMOTED: usize = 6;
/// Partitions shorter than this are never bisected.
const MIN_BISECT_LEN: usize = 8;

/// The bisect phase: recursively split any partition whose exactly evaluated
/// cost drops when cut in two.
///
/// The split phase's Δ width proxy tracks the spread of k-th order
/// differences, which stays flat on jittery-but-trending data even though
/// the *fit residual* grows like a random walk — so the proxy happily grows
/// one partition over data the DP optimum cuts several times. Working
/// top-down with exact costs catches exactly those misses; the follow-up
/// refine phase then fine-tunes the coarse cut positions.
///
/// Candidates are the classic evenly spaced grid, plus — when the oracle has
/// prefix-sum estimates — the best few points of a 3× finer grid ranked by
/// estimated pair cost, so jump positions that fall between coarse grid
/// points are still found without extra exact fits.
fn bisect_phase(oracle: &mut CostModel<'_>, (parts, costs): PartsAndCosts) -> PartsAndCosts {
    let mut out = (
        Vec::with_capacity(parts.len()),
        Vec::with_capacity(costs.len()),
    );
    for (p, cost) in parts.into_iter().zip(costs) {
        bisect_rec(oracle, p, cost, &mut out);
    }
    out
}

/// Candidate cut points for bisecting `p`: the evenly spaced exact grid
/// joined with the estimate-ranked picks, deduplicated and sorted.
fn bisect_candidates(oracle: &mut CostModel<'_>, p: Partition) -> Vec<usize> {
    let mut candidates: Vec<usize> = (1..=BISECT_CANDIDATES)
        .map(|k| p.start + p.len * k / (BISECT_CANDIDATES + 1))
        .filter(|&b| b > p.start && b < p.end())
        .collect();
    if oracle.has_estimates() && p.len >= 4 * BISECT_ESTIMATE_GRID {
        let mut ranked: Vec<(usize, usize)> = (1..=BISECT_ESTIMATE_GRID)
            .map(|k| p.start + p.len * k / (BISECT_ESTIMATE_GRID + 1))
            .filter(|&b| b > p.start && b < p.end())
            .map(|b| {
                (
                    oracle.estimate_bits(p.start, b) + oracle.estimate_bits(b, p.end()),
                    b,
                )
            })
            .collect();
        ranked.sort_unstable();
        candidates.extend(ranked.iter().take(BISECT_PROMOTED).map(|&(_, b)| b));
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

fn bisect_rec(oracle: &mut CostModel<'_>, p: Partition, cost: usize, out: &mut PartsAndCosts) {
    if p.len < MIN_BISECT_LEN {
        out.0.push(p);
        out.1.push(cost);
        return;
    }
    // Exactly evaluate the candidate cut points; keep the best one that
    // beats the unsplit cost.
    let mut best: Option<(usize, usize, usize)> = None;
    for b in bisect_candidates(oracle, p) {
        let left = oracle.exact_bits(p.start, b);
        let right = oracle.exact_bits(b, p.end());
        if left + right < cost && best.is_none_or(|(_, l, r)| left + right < l + r) {
            best = Some((b, left, right));
        }
    }
    match best {
        Some((b, left, right)) => {
            bisect_rec(oracle, Partition::new(p.start, b - p.start), left, out);
            bisect_rec(oracle, Partition::new(b, p.end() - b), right, out);
        }
        None => {
            out.0.push(p);
            out.1.push(cost);
        }
    }
}

/// Offsets tried when hill-climbing a boundary during the refine phase.
/// Memoised hull fits made exact evaluations ~50× cheaper than under the
/// ternary-search fit, so the climb reaches ±128 instead of ±32.
const REFINE_OFFSETS: [isize; 16] = [
    -128, -64, -32, -16, -8, -4, -2, -1, 1, 2, 4, 8, 16, 32, 64, 128,
];
/// Maximum number of whole-cover refine passes.
const MAX_REFINE_PASSES: usize = 3;
/// Maximum hill-climb moves per boundary per pass.
const MAX_REFINE_MOVES: usize = 8;
/// Boundaries whose two partitions together span more than this many values
/// are left alone: each candidate evaluation refits the whole pair, and
/// moving a boundary by ≤128 positions inside a pair this long changes the
/// total cost by a negligible fraction.  (Raised from 16k when the fits got
/// cheap; pairs this long mostly arise on very smooth data.)
const REFINE_SPAN_LIMIT: usize = 65_536;

/// The refine phase: hill-climb each interior boundary by exact cost.
fn refine_phase(
    oracle: &mut CostModel<'_>,
    (mut parts, mut costs): PartsAndCosts,
) -> PartsAndCosts {
    if parts.len() <= 1 {
        return (parts, costs);
    }
    for _ in 0..MAX_REFINE_PASSES {
        let mut changed = false;
        for k in 0..parts.len() - 1 {
            let lo = parts[k].start;
            let hi = parts[k + 1].end();
            if hi - lo > REFINE_SPAN_LIMIT {
                continue;
            }
            let mut best_b = parts[k + 1].start;
            let mut best_pair = (costs[k], costs[k + 1]);
            for _ in 0..MAX_REFINE_MOVES {
                let from = best_b;
                for off in REFINE_OFFSETS {
                    let b = from.saturating_add_signed(off);
                    // Both sides must keep at least one value.
                    if b <= lo || b >= hi {
                        continue;
                    }
                    let left = oracle.exact_bits(lo, b);
                    let right = oracle.exact_bits(b, hi);
                    if left + right < best_pair.0 + best_pair.1 {
                        best_b = b;
                        best_pair = (left, right);
                    }
                }
                if best_b == from {
                    break;
                }
            }
            if best_b != parts[k + 1].start {
                parts[k] = Partition::new(lo, best_b - lo);
                parts[k + 1] = Partition::new(best_b, hi - best_b);
                costs[k] = best_pair.0;
                costs[k + 1] = best_pair.1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (parts, costs)
}

/// Run the full init/split/merge/bisect/refine pipeline.
///
/// Each phase's wall-clock lands in its own `core.partition.*_ns` histogram
/// (one sample per column encoded), so encode-path regressions show up per
/// phase rather than as one opaque total.
pub fn split_merge(values: &[u64], regressor: RegressorKind, tau: f64) -> Vec<Partition> {
    if values.is_empty() {
        return Vec::new();
    }
    let _span = leco_obs::span("core.partition.split_merge");
    let mut oracle = CostModel::new(values, regressor);
    let state = leco_obs::histogram!("core.partition.split_ns").time(|| {
        let parts = split_phase(values, regressor, tau.clamp(0.0, 1.0));
        let costs: Vec<usize> = parts
            .iter()
            .map(|p| oracle.exact_bits(p.start, p.end()))
            .collect();
        (parts, costs)
    });
    let state =
        leco_obs::histogram!("core.partition.merge_ns").time(|| merge_phase(&mut oracle, state));
    let state =
        leco_obs::histogram!("core.partition.bisect_ns").time(|| bisect_phase(&mut oracle, state));
    let state =
        leco_obs::histogram!("core.partition.refine_ns").time(|| refine_phase(&mut oracle, state));
    // Bisection and refinement can leave adjacent partitions whose merge is
    // now profitable (e.g. a remnant shrunk by a moved boundary), so merge
    // once more to reach a local fixed point.
    leco_obs::histogram!("core.partition.merge_ns").time(|| merge_phase(&mut oracle, state).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{exact_cost_bits, is_valid_cover};

    #[test]
    fn diff_tracker_orders() {
        // degree 1: first-order differences of 0, 2, 4, 10 are 2, 2, 6.
        let mut t = DiffTracker::new(1);
        for v in [0i128, 2, 4] {
            t.push(v);
        }
        assert_eq!(t.width(), leco_bitpack::bits_for(0)); // spread 0
        assert_eq!(t.width_with(10), leco_bitpack::bits_for(4)); // diffs {2,6} spread 4
                                                                 // degree 2: second-order differences of a quadratic are constant.
        let mut t = DiffTracker::new(2);
        for v in [0i128, 1, 4, 9, 16, 25] {
            t.push(v);
        }
        assert_eq!(t.width(), 0);
    }

    #[test]
    fn diff_tracker_degree_zero_tracks_value_range() {
        let mut t = DiffTracker::new(0);
        for v in [100i128, 90, 110] {
            t.push(v);
        }
        assert_eq!(t.width(), leco_bitpack::bits_for(20));
    }

    #[test]
    fn start_scores_flag_bumps() {
        // Smooth line with one spike at position 50.
        let mut values: Vec<u64> = (0..100u64).map(|i| 10 * i).collect();
        values[50] += 5_000;
        let scores = start_scores(&values, 1);
        assert!(
            scores[50] > scores[25],
            "spike should raise the start score"
        );
    }

    #[test]
    fn splits_at_slope_change() {
        // Two clean linear pieces: expect roughly two partitions after merge.
        let values: Vec<u64> = (0..2_000u64)
            .map(|i| {
                if i < 1_000 {
                    100 + 2 * i
                } else {
                    1_000_000 + 50 * (i - 1_000)
                }
            })
            .collect();
        let parts = split_merge(&values, RegressorKind::Linear, 0.1);
        assert!(is_valid_cover(&parts, values.len()));
        assert!(
            parts.len() <= 8,
            "expected few partitions, got {}",
            parts.len()
        );
        // A partition boundary should land near the slope change.
        assert!(
            parts.iter().any(|p| (990..=1_010).contains(&p.start)),
            "expected a boundary near 1000: {parts:?}"
        );
    }

    #[test]
    fn variable_beats_fixed_on_irregular_boundaries() {
        // Piecewise-linear segments of irregular lengths.
        let mut values = Vec::new();
        let mut v = 0u64;
        let lens = [137usize, 901, 55, 333, 678, 41, 1500, 222];
        for (k, &len) in lens.iter().enumerate() {
            let slope = (k as u64 * 7) % 13 + 1;
            for _ in 0..len {
                values.push(v);
                v += slope;
            }
            v += 100_000; // jump between segments
        }
        let var_parts = split_merge(&values, RegressorKind::Linear, 0.05);
        let var_cost: usize = var_parts
            .iter()
            .map(|p| exact_cost_bits(&values[p.start..p.end()], RegressorKind::Linear))
            .sum();
        let fixed_parts = crate::partition::fixed::fixed_partitions(values.len(), 512);
        let fixed_cost: usize = fixed_parts
            .iter()
            .map(|p| exact_cost_bits(&values[p.start..p.end()], RegressorKind::Linear))
            .sum();
        assert!(
            var_cost < fixed_cost,
            "variable {var_cost} should beat fixed {fixed_cost}"
        );
    }

    #[test]
    fn merge_collapses_over_splitting() {
        // A single clean line: the split phase may produce several partitions
        // but the merge phase should collapse them down to very few.
        let values: Vec<u64> = (0..5_000u64).map(|i| 7 * i + 3).collect();
        let parts = split_merge(&values, RegressorKind::Linear, 0.0);
        assert!(is_valid_cover(&parts, values.len()));
        assert!(
            parts.len() <= 3,
            "expected ~1 partition, got {}",
            parts.len()
        );
    }

    #[test]
    fn constant_regressor_groups_runs() {
        let mut values = vec![5u64; 500];
        values.extend(vec![900u64; 500]);
        values.extend(vec![17u64; 500]);
        let parts = split_merge(&values, RegressorKind::Constant, 0.1);
        assert!(is_valid_cover(&parts, values.len()));
        assert!(
            parts.len() <= 6,
            "runs should form few partitions: {}",
            parts.len()
        );
    }

    #[test]
    fn handles_tiny_inputs() {
        for n in 1..6usize {
            let values: Vec<u64> = (0..n as u64).collect();
            let parts = split_merge(&values, RegressorKind::Linear, 0.1);
            assert!(is_valid_cover(&parts, n));
        }
    }

    #[test]
    fn tau_zero_only_grows_exact_fits() {
        let values: Vec<u64> = vec![10, 20, 30, 40, 1000, 2000, 4000, 8000];
        let parts = split_merge(&values, RegressorKind::Linear, 0.0);
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn smaller_tau_gives_no_fewer_partitions_before_merge() {
        let values: Vec<u64> = (0..3_000u64).map(|i| i * 3 + (i % 97) * (i % 13)).collect();
        let fine = split_phase(&values, RegressorKind::Linear, 0.01);
        let coarse = split_phase(&values, RegressorKind::Linear, 0.5);
        assert!(fine.len() >= coarse.len());
    }
}
