//! la_vector-style partitioner (§4.8 comparison).
//!
//! Boffa et al. model optimal partitioning as a shortest-path problem over a
//! graph whose vertices are positions and whose edge weights are the
//! compressed size of the spanned segment, then approximate the graph with a
//! reduced edge set.  We reproduce that structure: candidate breakpoints come
//! from fine-grained PLA runs (small ε), and a dynamic program finds the
//! cheapest path through those breakpoints with a bounded look-ahead.
//!
//! As the paper observes, the approach optimises the *weight* of the path but
//! not its *length*, so on data sets with many sharp turns it tends to keep an
//! excessive number of segments whose model parameters dominate the output.

use super::{exact_cost_bits, Partition};
use crate::model::RegressorKind;

/// How many candidate breakpoints ahead an edge may span.
const MAX_SKIP: usize = 24;
/// Error bounds used to harvest candidate breakpoints.
const CANDIDATE_EPSILONS: [f64; 2] = [4.0, 64.0];

/// Run the la_vector-style partitioner.
pub fn la_vector_partitions(values: &[u64], regressor: RegressorKind) -> Vec<Partition> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    // Candidate breakpoints: union of PLA boundaries at a couple of error
    // bounds, plus the endpoints.
    let mut breakpoints: Vec<usize> = vec![0, n];
    for eps in CANDIDATE_EPSILONS {
        for p in super::pla::pla_partitions(values, eps) {
            breakpoints.push(p.start);
        }
    }
    breakpoints.sort_unstable();
    breakpoints.dedup();
    let m = breakpoints.len();

    // Shortest path over breakpoints: best[k] = minimal cost of covering
    // [0, breakpoints[k]).
    let mut best = vec![usize::MAX; m];
    let mut prev = vec![usize::MAX; m];
    best[0] = 0;
    for k in 0..m - 1 {
        if best[k] == usize::MAX {
            continue;
        }
        let start = breakpoints[k];
        let upper = (k + 1 + MAX_SKIP).min(m - 1);
        for next in (k + 1)..=upper {
            let end = breakpoints[next];
            let cost = exact_cost_bits(&values[start..end], regressor);
            let total = best[k] + cost;
            if total < best[next] {
                best[next] = total;
                prev[next] = k;
            }
        }
    }
    // Walk back the path.  The look-ahead bound guarantees reachability
    // because adjacent breakpoints are always connected.
    let mut cuts = Vec::new();
    let mut k = m - 1;
    while k != 0 {
        cuts.push(k);
        k = prev[k];
    }
    cuts.push(0);
    cuts.reverse();
    cuts.windows(2)
        .map(|w| Partition::new(breakpoints[w[0]], breakpoints[w[1]] - breakpoints[w[0]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_cover;

    #[test]
    fn produces_valid_cover() {
        let values: Vec<u64> = (0..4_000u64).map(|i| i * 5 + (i % 71)).collect();
        let parts = la_vector_partitions(&values, RegressorKind::Linear);
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn piecewise_linear_recovers_few_segments() {
        let values: Vec<u64> = (0..2_000u64)
            .map(|i| if i < 1_000 { 3 * i } else { 500_000 + 11 * i })
            .collect();
        let parts = la_vector_partitions(&values, RegressorKind::Linear);
        assert!(is_valid_cover(&parts, values.len()));
        assert!(parts.len() <= 16, "got {} segments", parts.len());
    }

    #[test]
    fn tiny_inputs() {
        assert!(la_vector_partitions(&[], RegressorKind::Linear).is_empty());
        let parts = la_vector_partitions(&[1, 2], RegressorKind::Linear);
        assert!(is_valid_cover(&parts, 2));
    }

    #[test]
    fn keeps_more_segments_than_split_merge_on_jumpy_data() {
        // The weakness the paper highlights: many sharp turns → too many models.
        let values: Vec<u64> = (0..4_000u64)
            .map(|i| (i % 40) * 1_000 + ((i / 40) % 17) * 31)
            .collect();
        let la = la_vector_partitions(&values, RegressorKind::Linear).len();
        let sm =
            crate::partition::split_merge::split_merge(&values, RegressorKind::Linear, 0.1).len();
        assert!(la + 2 >= sm, "la_vector {la} vs split-merge {sm}");
    }
}
