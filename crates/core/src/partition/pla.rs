//! Angle-based piecewise linear approximation (PLA) partitioner.
//!
//! This is the partitioning scheme used by lossy time-series compression
//! (§4.8 baseline "LeCo-PLA") and by the hardness metrics of the
//! Hyper-parameter Advisor: a segment is extended as long as *some* line
//! anchored at the segment's first point stays within a global error bound
//! `ε` of every point; otherwise a new segment starts.
//!
//! Keeping a single anchored slope cone makes the algorithm one-pass and
//! O(n), exactly like the original angle-based PLA of Cameron / swing
//! filters.

use super::Partition;

/// Summary of a PLA run; the segment list plus the statistics the hardness
/// scores need (§3.2.3).
#[derive(Debug, Clone)]
pub struct PlaResult {
    /// The produced segments.
    pub partitions: Vec<Partition>,
    /// Value gap between the last point of a segment and the first point of
    /// the next segment, for every adjacent pair.
    pub gaps: Vec<f64>,
}

/// Run angle-based PLA with error bound `epsilon` and return both the
/// partitions and the adjacency statistics.
pub fn pla_with_stats(values: &[u64], epsilon: f64) -> PlaResult {
    let n = values.len();
    let mut partitions = Vec::new();
    let mut gaps = Vec::new();
    if n == 0 {
        return PlaResult { partitions, gaps };
    }
    let mut start = 0usize;
    // Slope cone [lo, hi] of lines through (start, v[start]) that stay within
    // ±epsilon of every point seen so far in the segment.
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut anchor = values[0] as f64;
    for i in 1..n {
        let dx = (i - start) as f64;
        let dy = values[i] as f64 - anchor;
        let new_lo = lo.max((dy - epsilon) / dx);
        let new_hi = hi.min((dy + epsilon) / dx);
        if new_lo <= new_hi {
            lo = new_lo;
            hi = new_hi;
        } else {
            // Close the segment [start, i).
            partitions.push(Partition::new(start, i - start));
            gaps.push((values[i] as f64 - values[i - 1] as f64).abs());
            start = i;
            anchor = values[i] as f64;
            lo = f64::NEG_INFINITY;
            hi = f64::INFINITY;
        }
    }
    partitions.push(Partition::new(start, n - start));
    PlaResult { partitions, gaps }
}

/// PLA partitions only (the §4.8 comparison partitioner).
pub fn pla_partitions(values: &[u64], epsilon: f64) -> Vec<Partition> {
    pla_with_stats(values, epsilon).partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_cover;

    #[test]
    fn clean_line_is_one_segment() {
        let values: Vec<u64> = (0..10_000u64).map(|i| 3 * i + 5).collect();
        let parts = pla_partitions(&values, 1.0);
        assert_eq!(parts.len(), 1);
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn slope_change_creates_segments() {
        let values: Vec<u64> = (0..2_000u64)
            .map(|i| {
                if i < 1_000 {
                    2 * i
                } else {
                    2_000 + 100 * (i - 1_000)
                }
            })
            .collect();
        let parts = pla_partitions(&values, 4.0);
        assert!(parts.len() >= 2);
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn every_segment_admits_a_line_within_epsilon() {
        // Verify the defining invariant of PLA on noisy data.
        let epsilon = 16.0;
        let values: Vec<u64> = (0..5_000u64)
            .map(|i| 1_000 + 7 * i + ((i * 2654435761) % 23))
            .collect();
        let parts = pla_partitions(&values, epsilon);
        assert!(is_valid_cover(&parts, values.len()));
        for p in &parts {
            let seg = &values[p.start..p.end()];
            let ys: Vec<f64> = seg.iter().map(|&v| v as f64).collect();
            let model = crate::regressor::linear::fit_linear(&ys);
            let err = crate::regressor::linear::max_abs_error(&model, &ys);
            // The anchored-cone guarantee is one-sided (anchor has zero
            // error); the best free line can only be better, and must be
            // within epsilon.
            assert!(err <= epsilon + 1e-6, "segment error {err} exceeds ε");
        }
    }

    #[test]
    fn smaller_epsilon_gives_more_segments() {
        let values: Vec<u64> = (0..3_000u64).map(|i| i + (i % 37) * (i % 11)).collect();
        let fine = pla_partitions(&values, 2.0).len();
        let coarse = pla_partitions(&values, 256.0).len();
        assert!(fine >= coarse);
    }

    #[test]
    fn gaps_reported_for_adjacent_segments() {
        let values: Vec<u64> = (0..100u64)
            .map(|i| if i < 50 { i } else { 1_000_000 + i })
            .collect();
        let result = pla_with_stats(&values, 1.0);
        assert_eq!(result.gaps.len(), result.partitions.len() - 1);
        assert!(result.gaps.iter().any(|&g| g > 100_000.0));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pla_partitions(&[], 1.0).is_empty());
        let parts = pla_partitions(&[42], 1.0);
        assert_eq!(parts, vec![Partition::new(0, 1)]);
    }
}
