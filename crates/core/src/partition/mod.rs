//! The Partitioner module (§3.2): split a sequence into partitions so the
//! overall "model + delta" size is minimised.
//!
//! Implemented strategies:
//!
//! * [`fixed`] — fixed-length partitions with the sampling-based automatic
//!   block-size search of §3.2.1.
//! * [`split_merge`] — the greedy variable-length algorithm of §3.2.2
//!   (init / split / merge phases).
//! * [`pla`], [`sim_piece`], [`la_vector`] — the comparison partitioners of
//!   §4.8 adapted from lossy time-series compression and rank/select
//!   dictionaries.
//! * [`dp`] — the exact dynamic-programming partitioner used to bound the
//!   greedy algorithm's gap from optimal (only practical for small inputs).

pub mod dp;
pub mod fixed;
pub mod la_vector;
pub mod pla;
pub mod sim_piece;
pub mod split_merge;

use crate::model::RegressorKind;
use crate::regressor::{self, FitContext};

/// A half-open range `[start, start + len)` of the input sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Index of the first value of the partition.
    pub start: usize,
    /// Number of values in the partition.
    pub len: usize,
}

impl Partition {
    /// Construct a partition.
    pub fn new(start: usize, len: usize) -> Self {
        Self { start, len }
    }

    /// One-past-the-end index.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Partitioning strategy selected in a [`crate::LecoConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionerKind {
    /// Fixed-length partitions of exactly `len` values.
    Fixed {
        /// Partition length.
        len: usize,
    },
    /// Fixed-length partitions whose length is chosen by the sampling-based
    /// search of §3.2.1.
    FixedAuto,
    /// Greedy split–merge variable-length partitioning (§3.2.2).
    SplitMerge {
        /// Split aggressiveness τ ∈ [0, 1]: the split phase admits a new
        /// point when its inclusion cost is below `τ · model_size`.
        tau: f64,
    },
    /// Angle-based piecewise-linear-approximation partitioner with a global
    /// error bound (the time-series baseline of §4.8).
    Pla {
        /// Absolute error bound ε.
        epsilon: u64,
    },
    /// Sim-Piece-style partitioner: PLA segments with quantised anchors.
    SimPiece {
        /// Absolute error bound ε.
        epsilon: u64,
    },
    /// la_vector-style partitioner: shortest path over a reduced breakpoint
    /// graph.
    LaVector,
    /// Exact dynamic-programming partitioner (O(n²) states, exact fits);
    /// only use on small inputs.
    DynamicProgramming,
}

/// Produce a partition assignment of `values` for the given strategy and
/// regressor family.
///
/// The returned partitions are a disjoint cover of `[0, values.len())` in
/// increasing order (verified by a debug assertion).
pub fn partition(
    kind: &PartitionerKind,
    regressor: RegressorKind,
    values: &[u64],
) -> Vec<Partition> {
    if values.is_empty() {
        return Vec::new();
    }
    let parts = match kind {
        PartitionerKind::Fixed { len } => fixed::fixed_partitions(values.len(), *len),
        PartitionerKind::FixedAuto => {
            let len = fixed::search_partition_size(values, regressor);
            fixed::fixed_partitions(values.len(), len)
        }
        PartitionerKind::SplitMerge { tau } => split_merge::split_merge(values, regressor, *tau),
        PartitionerKind::Pla { epsilon } => pla::pla_partitions(values, *epsilon as f64),
        PartitionerKind::SimPiece { epsilon } => {
            sim_piece::sim_piece_partitions(values, *epsilon as f64)
        }
        PartitionerKind::LaVector => la_vector::la_vector_partitions(values, regressor),
        PartitionerKind::DynamicProgramming => dp::optimal_partitions(values, regressor),
    };
    debug_assert!(
        is_valid_cover(&parts, values.len()),
        "partitioner produced an invalid cover"
    );
    parts
}

/// Check that `parts` is a disjoint, ordered, complete cover of `[0, n)`.
pub fn is_valid_cover(parts: &[Partition], n: usize) -> bool {
    if n == 0 {
        return parts.is_empty();
    }
    let mut expected_start = 0usize;
    for p in parts {
        if p.start != expected_start || p.len == 0 {
            return false;
        }
        expected_start = p.end();
    }
    expected_start == n
}

/// Exact compressed size (in bits) of one partition under `regressor`:
/// fits the model the encoder would use, evaluates the delta statistics,
/// and charges the full serialized record — including the θ₁-accumulation
/// correction list ([`regressor::partition_cost_bits_exact`]).  Shared by
/// the partition-size search and the comparison partitioners; the
/// split–merge and DP partitioners go through the memoising
/// [`regressor::CostModel`] oracle, which computes the same quantity.
pub fn exact_cost_bits(values: &[u64], regressor: RegressorKind) -> usize {
    let (model, stats) = regressor::fit_checked(regressor, values, &FitContext::default());
    regressor::partition_cost_bits_exact(&model, values.len(), &stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piecewise(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| {
                if i < n as u64 / 2 {
                    10 + 3 * i
                } else {
                    1_000_000 + 17 * i
                }
            })
            .collect()
    }

    #[test]
    fn every_partitioner_produces_a_valid_cover() {
        let values = piecewise(3_000);
        let kinds = [
            PartitionerKind::Fixed { len: 100 },
            PartitionerKind::FixedAuto,
            PartitionerKind::SplitMerge { tau: 0.1 },
            PartitionerKind::Pla { epsilon: 16 },
            PartitionerKind::SimPiece { epsilon: 16 },
            PartitionerKind::LaVector,
        ];
        for kind in kinds {
            let parts = partition(&kind, RegressorKind::Linear, &values);
            assert!(is_valid_cover(&parts, values.len()), "{kind:?}");
        }
    }

    #[test]
    fn dp_partitioner_valid_on_small_input() {
        let values = piecewise(150);
        let parts = partition(
            &PartitionerKind::DynamicProgramming,
            RegressorKind::Linear,
            &values,
        );
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn empty_input_yields_no_partitions() {
        for kind in [
            PartitionerKind::Fixed { len: 10 },
            PartitionerKind::SplitMerge { tau: 0.1 },
        ] {
            assert!(partition(&kind, RegressorKind::Linear, &[]).is_empty());
        }
    }

    #[test]
    fn cover_validation_rejects_gaps_and_overlaps() {
        assert!(is_valid_cover(
            &[Partition::new(0, 5), Partition::new(5, 5)],
            10
        ));
        assert!(!is_valid_cover(
            &[Partition::new(0, 5), Partition::new(6, 4)],
            10
        ));
        assert!(!is_valid_cover(
            &[Partition::new(0, 6), Partition::new(5, 5)],
            10
        ));
        assert!(!is_valid_cover(&[Partition::new(0, 5)], 10));
        assert!(!is_valid_cover(
            &[Partition::new(0, 0), Partition::new(0, 10)],
            10
        ));
    }

    #[test]
    fn exact_cost_prefers_good_fits() {
        let clean: Vec<u64> = (0..1000u64).map(|i| 5 * i).collect();
        let noisy: Vec<u64> = (0..1000u64)
            .map(|i| 5 * i + (i * 2654435761 % 1024))
            .collect();
        assert!(
            exact_cost_bits(&clean, RegressorKind::Linear)
                < exact_cost_bits(&noisy, RegressorKind::Linear)
        );
    }
}
