//! Sim-Piece-style partitioner (§4.8 comparison).
//!
//! Sim-Piece (Kitsios et al.) runs angle-based PLA but quantises each
//! segment's intercept to a multiple of the error bound `ε` so that segments
//! sharing an intercept can be stored together.  The quantisation costs
//! fitting precision: the slope cone is anchored at the *quantised* start
//! value rather than the true one, which tends to produce more segments and
//! larger residuals on data whose intercepts keep growing (the paper's
//! observation on mostly-sorted columns).
//!
//! We reproduce the partition-level behaviour (quantised anchors); the
//! model-compaction storage trick is irrelevant here because on sorted data
//! the intercepts are all distinct, which is exactly the regime the paper
//! evaluates.

use super::Partition;

/// Run the Sim-Piece-style partitioner with error bound `epsilon`.
pub fn sim_piece_partitions(values: &[u64], epsilon: f64) -> Vec<Partition> {
    let n = values.len();
    let mut partitions = Vec::new();
    if n == 0 {
        return partitions;
    }
    let eps = epsilon.max(1.0);
    let quantise = |v: f64| (v / eps).floor() * eps;
    let mut start = 0usize;
    let mut anchor = quantise(values[0] as f64);
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for (i, &v) in values.iter().enumerate().skip(1) {
        let dx = (i - start) as f64;
        let dy = v as f64 - anchor;
        let new_lo = lo.max((dy - eps) / dx);
        let new_hi = hi.min((dy + eps) / dx);
        if new_lo <= new_hi {
            lo = new_lo;
            hi = new_hi;
        } else {
            partitions.push(Partition::new(start, i - start));
            start = i;
            anchor = quantise(v as f64);
            lo = f64::NEG_INFINITY;
            hi = f64::INFINITY;
        }
    }
    partitions.push(Partition::new(start, n - start));
    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_cover;

    #[test]
    fn produces_valid_cover() {
        let values: Vec<u64> = (0..5_000u64).map(|i| i * 3 + (i % 50)).collect();
        let parts = sim_piece_partitions(&values, 16.0);
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn quantised_anchor_never_beats_plain_pla() {
        // The quantised anchor can only shrink the feasible cone, so
        // Sim-Piece produces at least as many segments as plain PLA.
        let values: Vec<u64> = (0..10_000u64).map(|i| 100_000 + 7 * i + (i % 13)).collect();
        let pla = crate::partition::pla::pla_partitions(&values, 32.0).len();
        let sim = sim_piece_partitions(&values, 32.0).len();
        assert!(sim >= pla, "sim-piece {sim} vs pla {pla}");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(sim_piece_partitions(&[], 8.0).is_empty());
        assert_eq!(sim_piece_partitions(&[7], 8.0), vec![Partition::new(0, 1)]);
    }

    #[test]
    fn constant_data_single_segment() {
        let values = vec![1_000u64; 1_000];
        assert_eq!(sim_piece_partitions(&values, 8.0).len(), 1);
    }
}
