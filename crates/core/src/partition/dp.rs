//! Exact dynamic-programming partitioner.
//!
//! Computes the optimal partition assignment under the encoder's exact cost
//! model by evaluating every `(start, end)` segment — `O(n²)` states with an
//! `O(len)` fit each.  The paper notes this exhaustive search is forbiddingly
//! expensive on real data (§3.2); we keep it for two purposes:
//!
//! * bounding the gap of the greedy split–merge algorithm in tests and in the
//!   partitioner-efficiency experiment (the paper claims < 3%), and
//! * tiny columns where optimality is cheap.

use super::{exact_cost_bits, Partition};
use crate::model::RegressorKind;
use crate::regressor::CostModel;

/// Maximum input length the DP partitioner accepts before falling back to the
/// greedy algorithm (the DP is cubic in practice once fits are included).
pub const MAX_DP_LEN: usize = 4_096;

/// Compute the optimal partitioning of `values` under `regressor`.
///
/// Inputs longer than [`MAX_DP_LEN`] are delegated to the split–merge
/// partitioner so callers cannot accidentally trigger hours of work.
pub fn optimal_partitions(values: &[u64], regressor: RegressorKind) -> Vec<Partition> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    if n > MAX_DP_LEN {
        return super::split_merge::split_merge(values, regressor, 0.1);
    }
    let _span = leco_obs::span("core.partition.dp");
    // The DP prices every span through the same exact oracle the greedy
    // partitioner (and the encoder's serializer) uses, so its optimum is an
    // optimum in real output bytes, correction lists included.
    let oracle = CostModel::new(values, regressor);
    // best[j] = minimal cost of covering [0, j); cut[j] = start of last segment.
    let mut best = vec![usize::MAX; n + 1];
    let mut cut = vec![0usize; n + 1];
    best[0] = 0;
    let dp_clock = leco_obs::Stopwatch::start();
    for j in 1..=n {
        for i in 0..j {
            if best[i] == usize::MAX {
                continue;
            }
            // Uncached: the DP visits every (i, j) span exactly once.
            let cost = best[i] + oracle.exact_bits_uncached(i, j);
            if cost < best[j] {
                best[j] = cost;
                cut[j] = i;
            }
        }
    }
    leco_obs::histogram!("core.partition.dp_ns").record_secs(dp_clock.elapsed_secs());
    let mut parts = Vec::new();
    let mut j = n;
    while j > 0 {
        let i = cut[j];
        parts.push(Partition::new(i, j - i));
        j = i;
    }
    parts.reverse();
    parts
}

/// Total cost in bits of a partitioning (helper shared with tests and the
/// partitioner-efficiency benchmark).
pub fn total_cost_bits(values: &[u64], parts: &[Partition], regressor: RegressorKind) -> usize {
    parts
        .iter()
        .map(|p| exact_cost_bits(&values[p.start..p.end()], regressor))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::is_valid_cover;

    #[test]
    fn optimal_on_two_clean_segments() {
        let values: Vec<u64> = (0..120u64)
            .map(|i| if i < 60 { 5 * i } else { 1_000_000 + 2 * i })
            .collect();
        let parts = optimal_partitions(&values, RegressorKind::Linear);
        assert!(is_valid_cover(&parts, values.len()));
        assert!(
            parts.len() <= 3,
            "expected ~2 partitions, got {:?}",
            parts.len()
        );
    }

    #[test]
    fn dp_never_worse_than_single_partition_or_greedy() {
        let values: Vec<u64> = (0..200u64).map(|i| (i % 40) * 100 + i).collect();
        let dp = optimal_partitions(&values, RegressorKind::Linear);
        let dp_cost = total_cost_bits(&values, &dp, RegressorKind::Linear);
        let single_cost = exact_cost_bits(&values, RegressorKind::Linear);
        let greedy =
            crate::partition::split_merge::split_merge(&values, RegressorKind::Linear, 0.1);
        let greedy_cost = total_cost_bits(&values, &greedy, RegressorKind::Linear);
        assert!(dp_cost <= single_cost);
        assert!(dp_cost <= greedy_cost);
    }

    #[test]
    fn greedy_is_close_to_optimal_on_piecewise_data() {
        // The §3.2.2 claim: split–merge stays within a few percent of optimal.
        // We allow 10% here because the inputs are tiny (header costs weigh
        // relatively more than on the paper's 200M-value data sets).
        let mut values = Vec::new();
        let mut v: u64 = 1_000;
        for seg in 0..6u64 {
            let slope = seg % 3 + 1;
            for _ in 0..40 {
                values.push(v);
                v += slope;
            }
            v += 10_000;
        }
        let dp_cost = total_cost_bits(
            &values,
            &optimal_partitions(&values, RegressorKind::Linear),
            RegressorKind::Linear,
        );
        let greedy =
            crate::partition::split_merge::split_merge(&values, RegressorKind::Linear, 0.05);
        let greedy_cost = total_cost_bits(&values, &greedy, RegressorKind::Linear);
        assert!(
            greedy_cost as f64 <= dp_cost as f64 * 1.10,
            "greedy {greedy_cost} vs optimal {dp_cost}"
        );
    }

    #[test]
    fn falls_back_on_large_input() {
        let values: Vec<u64> = (0..(MAX_DP_LEN as u64 + 10)).collect();
        let parts = optimal_partitions(&values, RegressorKind::Linear);
        assert!(is_valid_cover(&parts, values.len()));
    }

    #[test]
    fn singleton_input() {
        let parts = optimal_partitions(&[9], RegressorKind::Linear);
        assert_eq!(parts, vec![Partition::new(0, 1)]);
    }
}
