//! Fixed-length partitioning with automatic block-size search (§3.2.1).
//!
//! Fixed-length partitions give the fastest random access (the target
//! partition is `i / L`, no metadata search) at the cost of flexibility.  The
//! block size matters a great deal — the compression ratio as a function of
//! the block size is typically U-shaped (Figure 5) — so LeCo picks it by:
//!
//! 1. sampling < 1% of the data as contiguous subsequences,
//! 2. exponentially increasing the candidate size until the ratio has clearly
//!    passed the minimum, and
//! 3. refining backwards with smaller steps until the improvement between
//!    iterations falls below a convergence threshold.

use super::{exact_cost_bits, Partition};
use crate::model::RegressorKind;

/// Maximum partition length considered by the automatic search.
pub const MAX_SEARCH_LEN: usize = 10_000;
/// Minimum partition length considered by the automatic search.
pub const MIN_SEARCH_LEN: usize = 16;
/// Convergence threshold on the relative compression-ratio decline.
const CONVERGENCE: f64 = 1e-4;

/// Split `[0, n)` into partitions of exactly `len` values (last one shorter).
pub fn fixed_partitions(n: usize, len: usize) -> Vec<Partition> {
    assert!(len > 0, "partition length must be positive");
    let mut parts = Vec::with_capacity(n / len + 1);
    let mut start = 0;
    while start < n {
        let l = len.min(n - start);
        parts.push(Partition::new(start, l));
        start += l;
    }
    parts
}

/// Compressed size in bits of the sampled subsequences when each is cut into
/// fixed blocks of `len`.  Chunks are evaluated independently so the
/// artificial discontinuity between two sampled regions never pollutes a
/// block.
fn sample_cost_bits(sample: &[&[u64]], len: usize, regressor: RegressorKind) -> usize {
    sample
        .iter()
        .flat_map(|chunk| chunk.chunks(len))
        .map(|block| exact_cost_bits(block, regressor))
        .sum()
}

/// Draw a deterministic sample of at most ~1% of `values` (but at least
/// `MAX_SEARCH_LEN` values when available) as contiguous subsequences, so the
/// sample preserves local serial correlation.
fn draw_sample(values: &[u64]) -> Vec<&[u64]> {
    let n = values.len();
    let target = ((n / 100).max(MAX_SEARCH_LEN)).min(n);
    if target == n {
        return vec![values];
    }
    // A handful of evenly spaced chunks.
    let chunks = 4usize;
    let chunk_len = target / chunks;
    let mut sample = Vec::with_capacity(chunks);
    for c in 0..chunks {
        let start = c * (n - chunk_len) / (chunks - 1).max(1);
        sample.push(&values[start..start + chunk_len]);
    }
    sample
}

/// Search the fixed partition size that minimises the compression ratio on a
/// sample of `values` (§3.2.1).
pub fn search_partition_size(values: &[u64], regressor: RegressorKind) -> usize {
    let n = values.len();
    if n <= MIN_SEARCH_LEN {
        return n.max(1);
    }
    let sample = draw_sample(values);
    let sample_total: usize = sample.iter().map(|c| c.len()).sum();
    let upper = MAX_SEARCH_LEN.min(sample_total);

    // Phase 1: exponential search until the cost stops improving (we are past
    // the bottom of the U) or we hit the upper bound.
    let mut candidates: Vec<(usize, usize)> = Vec::new(); // (len, cost_bits)
    let mut len = MIN_SEARCH_LEN;
    let mut best = (len, usize::MAX);
    let mut worse_streak = 0;
    while len <= upper {
        let cost = sample_cost_bits(&sample, len, regressor);
        candidates.push((len, cost));
        if cost < best.1 {
            best = (len, cost);
            worse_streak = 0;
        } else {
            worse_streak += 1;
            if worse_streak >= 2 {
                break;
            }
        }
        len *= 2;
    }

    // Phase 2: refine around the best exponential candidate with smaller
    // steps until convergence.
    let mut step = (best.0 / 4).max(1);
    let mut best_len = best.0;
    let mut best_cost = best.1;
    while step >= 1 {
        let mut improved = false;
        for candidate in [
            best_len.saturating_sub(step).max(MIN_SEARCH_LEN),
            best_len + step,
        ] {
            if candidate == best_len || candidate > upper {
                continue;
            }
            let cost = sample_cost_bits(&sample, candidate, regressor);
            if (best_cost as f64 - cost as f64) / best_cost as f64 > CONVERGENCE {
                best_cost = cost;
                best_len = candidate;
                improved = true;
            }
        }
        if !improved {
            if step == 1 {
                break;
            }
            step /= 2;
        }
    }
    best_len.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_partitions_cover_exactly() {
        let parts = fixed_partitions(1000, 128);
        assert!(super::super::is_valid_cover(&parts, 1000));
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.last().unwrap().len, 1000 - 7 * 128);
    }

    #[test]
    fn fixed_partitions_exact_multiple() {
        let parts = fixed_partitions(1024, 256);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len == 256));
    }

    #[test]
    fn search_returns_small_size_for_noisy_data() {
        // Locally hard data: large partitions are fine because nothing fits
        // anyway; the search must at least return something valid.
        let values: Vec<u64> = (0..50_000u64)
            .map(|i| (i * 2654435761) % 1_000_000)
            .collect();
        let len = search_partition_size(&values, RegressorKind::Linear);
        assert!((1..=MAX_SEARCH_LEN).contains(&len));
    }

    #[test]
    fn search_prefers_large_partitions_for_clean_lines() {
        let values: Vec<u64> = (0..100_000u64).map(|i| 13 + 7 * i).collect();
        let len = search_partition_size(&values, RegressorKind::Linear);
        // On a perfect line bigger partitions amortise header cost.
        assert!(len >= 1024, "expected a large partition size, got {len}");
    }

    #[test]
    fn search_prefers_small_partitions_for_jumpy_data() {
        // Piecewise-constant with jumps every 64 values: small partitions can
        // isolate the plateaus, big ones pay for the jumps.
        let values: Vec<u64> = (0..100_000u64).map(|i| (i / 64) * 1_000_003).collect();
        let small = search_partition_size(&values, RegressorKind::Constant);
        assert!(
            small <= 1024,
            "expected a modest partition size, got {small}"
        );
    }

    #[test]
    fn tiny_input_uses_single_partition() {
        let values: Vec<u64> = (0..10u64).collect();
        assert_eq!(search_partition_size(&values, RegressorKind::Linear), 10);
    }

    #[test]
    fn u_shape_exists_on_jumpy_data() {
        // Sanity check of the Figure 5 premise: mid-sized blocks beat both
        // tiny and huge blocks on data with occasional level shifts.
        let values: Vec<u64> = (0..20_000u64)
            .map(|i| (i / 500) * 100_000 + (i % 500) * 3)
            .collect();
        let cost = |len: usize| sample_cost_bits(&[values.as_slice()], len, RegressorKind::Linear);
        let tiny = cost(4);
        let mid = cost(500);
        let huge = cost(20_000);
        assert!(mid < tiny, "mid {mid} should beat tiny {tiny}");
        assert!(mid < huge, "mid {mid} should beat huge {huge}");
    }
}
