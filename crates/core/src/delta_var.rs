//! Delta-var: Delta encoding improved with LeCo's variable-length partitioner
//! (§4.2's `Delta-var` baseline).
//!
//! Delta encoding is the LeCo special case whose model is an implicit step
//! function: only the first value of a partition is stored and every other
//! value is reconstructed by accumulating stored gaps.  For Delta the width
//! proxy `Δ(v[i..j))` is exact and updates in O(1) when a point is appended
//! (§3.2.2), so the split phase below uses the exact metric; the merge phase
//! uses exact partition costs.

use crate::partition::Partition;
use leco_bitpack::{bits_for, stream::read_bits, zigzag_decode, zigzag_encode, BitWriter};

/// Split aggressiveness: inclusion cost threshold as a fraction of the model
/// size (first value + width byte = 72 bits).
const MODEL_BITS: f64 = 72.0;
const MAX_MERGE_PASSES: usize = 6;

#[derive(Debug, Clone)]
struct DeltaPartition {
    start: u64,
    len: u32,
    first: u64,
    width: u8,
    bit_offset: u64,
}

/// A Delta-encoded column with variable-length partitions.
#[derive(Debug, Clone)]
pub struct DeltaVarColumn {
    partitions: Vec<DeltaPartition>,
    payload: Vec<u64>,
    payload_bits: usize,
    len: usize,
}

/// Width in bits of the largest zigzag-coded gap in `values`.
fn gaps_width(values: &[u64]) -> u8 {
    values
        .windows(2)
        .map(|w| bits_for(zigzag_encode(w[1].wrapping_sub(w[0]) as i64)))
        .max()
        .unwrap_or(0)
}

/// Exact cost in bits of one Delta partition.
fn partition_cost_bits(len: usize, width: u8) -> usize {
    MODEL_BITS as usize + len.saturating_sub(1) * width as usize
}

fn split_phase(values: &[u64], tau: f64) -> Vec<Partition> {
    let n = values.len();
    let threshold = tau * MODEL_BITS;
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut width = 0u8;
    let mut j = 1usize;
    while j < n {
        let gap = bits_for(zigzag_encode(values[j].wrapping_sub(values[j - 1]) as i64));
        let new_width = width.max(gap);
        let old_len = j - start;
        let cost = (old_len + 1) as f64 * new_width as f64 - old_len as f64 * width as f64;
        if cost <= threshold {
            width = new_width;
            j += 1;
        } else {
            parts.push(Partition::new(start, j - start));
            start = j;
            width = 0;
            j += 1;
        }
    }
    parts.push(Partition::new(start, n - start));
    parts
}

fn merge_phase(values: &[u64], mut parts: Vec<Partition>) -> Vec<Partition> {
    for _ in 0..MAX_MERGE_PASSES {
        if parts.len() <= 1 {
            break;
        }
        let mut changed = false;
        let mut out: Vec<Partition> = Vec::with_capacity(parts.len());
        let mut cur = parts[0];
        let mut cur_cost = partition_cost_bits(cur.len, gaps_width(&values[cur.start..cur.end()]));
        for &next in &parts[1..] {
            let next_cost =
                partition_cost_bits(next.len, gaps_width(&values[next.start..next.end()]));
            let merged_len = cur.len + next.len;
            let merged_width = gaps_width(&values[cur.start..cur.start + merged_len]);
            let merged_cost = partition_cost_bits(merged_len, merged_width);
            if merged_cost < cur_cost + next_cost {
                cur = Partition::new(cur.start, merged_len);
                cur_cost = merged_cost;
                changed = true;
            } else {
                out.push(cur);
                cur = next;
                cur_cost = next_cost;
            }
        }
        out.push(cur);
        parts = out;
        if !changed {
            break;
        }
    }
    parts
}

impl DeltaVarColumn {
    /// Encode `values` with the default split aggressiveness (τ = 0.1).
    pub fn encode(values: &[u64]) -> Self {
        Self::encode_with_tau(values, 0.1)
    }

    /// Encode with an explicit split aggressiveness τ ∈ [0, 1].
    pub fn encode_with_tau(values: &[u64], tau: f64) -> Self {
        if values.is_empty() {
            return Self {
                partitions: Vec::new(),
                payload: Vec::new(),
                payload_bits: 0,
                len: 0,
            };
        }
        let parts = merge_phase(values, split_phase(values, tau.clamp(0.0, 1.0)));
        let mut partitions = Vec::with_capacity(parts.len());
        let mut writer = BitWriter::with_capacity(values.len() * 4);
        for p in &parts {
            let slice = &values[p.start..p.end()];
            let width = gaps_width(slice);
            let bit_offset = writer.len_bits() as u64;
            for w in slice.windows(2) {
                writer.write(zigzag_encode(w[1].wrapping_sub(w[0]) as i64), width);
            }
            partitions.push(DeltaPartition {
                start: p.start as u64,
                len: p.len as u32,
                first: slice[0],
                width,
                bit_offset,
            });
        }
        let (payload, payload_bits) = writer.finish();
        Self {
            partitions,
            payload,
            payload_bits,
            len: values.len(),
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions produced by the variable-length partitioner.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Compressed size in bytes: per partition the anchor value, a width byte
    /// and a varint length, plus the packed gap payload.
    pub fn size_bytes(&self) -> usize {
        let header: usize = self
            .partitions
            .iter()
            .map(|p| 8 + 1 + varint_len(p.len as u64))
            .sum();
        header + leco_bitpack::div_ceil(self.payload_bits, 8)
    }

    fn partition_of(&self, i: usize) -> usize {
        let n = self.partitions.len();
        let mut guess = ((i as f64 / self.len as f64) * n as f64) as usize;
        if guess >= n {
            guess = n - 1;
        }
        while self.partitions[guess].start as usize > i {
            guess -= 1;
        }
        while guess + 1 < n && self.partitions[guess + 1].start as usize <= i {
            guess += 1;
        }
        guess
    }

    /// Random access: requires sequentially decoding the partition prefix
    /// (the fundamental cost of Delta encoding, §4.3.2).
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        let p = &self.partitions[self.partition_of(i)];
        let local = i - p.start as usize;
        let mut current = p.first;
        let mut bit_pos = p.bit_offset as usize;
        for _ in 0..local {
            let gap = zigzag_decode(read_bits(&self.payload, bit_pos, p.width));
            bit_pos += p.width as usize;
            current = current.wrapping_add(gap as u64);
        }
        current
    }

    /// Decode every value, appending to `out`.
    ///
    /// The zigzag gaps of each partition are bulk-unpacked straight into the
    /// output buffer by the word-parallel kernels, then turned into values by
    /// an in-place prefix sum — the same fused structure as LeCo's partition
    /// decode, with accumulation playing the role of the model.
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        let written = out.len();
        out.resize(written + self.len, 0);
        let mut dst = &mut out[written..];
        for p in &self.partitions {
            let (seg, rest) = dst.split_at_mut(p.len as usize);
            let (head, gaps) = seg.split_first_mut().expect("partitions are non-empty");
            leco_bitpack::unpack_bits_into(&self.payload, p.bit_offset as usize, p.width, gaps);
            let mut current = p.first;
            *head = current;
            for slot in gaps.iter_mut() {
                current = current.wrapping_add(zigzag_decode(*slot) as u64);
                *slot = current;
            }
            dst = rest;
        }
    }

    /// Decode every value.
    pub fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_into(&mut out);
        out
    }
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_sorted() {
        let values: Vec<u64> = (0..20_000u64).map(|i| i * 3 + (i % 5)).collect();
        let c = DeltaVarColumn::encode(&values);
        assert_eq!(c.decode_all(), values);
        for i in (0..values.len()).step_by(997) {
            assert_eq!(c.get(i), values[i]);
        }
    }

    #[test]
    fn variable_partitions_beat_fixed_on_mixed_gaps() {
        // Long stretches of tiny gaps interrupted by bursts of huge gaps:
        // fixed-frame Delta pays the worst-case width everywhere in a frame.
        let mut values = Vec::new();
        let mut v = 0u64;
        for block in 0..40u64 {
            let gap = if block % 4 == 0 { 1_000_000 } else { 1 };
            for _ in 0..500 {
                v += gap;
                values.push(v);
            }
        }
        let var = DeltaVarColumn::encode(&values);
        let fix = leco_bitpack::div_ceil(values.len() * gaps_width(&values) as usize, 8);
        assert!(
            var.size_bytes() < fix,
            "var {} vs single-frame {}",
            var.size_bytes(),
            fix
        );
    }

    #[test]
    fn runs_compress_to_nearly_nothing() {
        let values = vec![777u64; 10_000];
        let c = DeltaVarColumn::encode(&values);
        assert_eq!(c.num_partitions(), 1);
        assert!(c.size_bytes() < 32);
        assert_eq!(c.decode_all(), values);
    }

    #[test]
    fn empty_and_singleton() {
        let c = DeltaVarColumn::encode(&[]);
        assert!(c.is_empty());
        assert!(c.decode_all().is_empty());
        let c = DeltaVarColumn::encode(&[5]);
        assert_eq!(c.get(0), 5);
        assert_eq!(c.decode_all(), vec![5]);
    }

    #[test]
    fn extreme_values_round_trip() {
        let values = vec![u64::MAX, 0, u64::MAX / 2, 3, u64::MAX];
        let c = DeltaVarColumn::encode(&values);
        assert_eq!(c.decode_all(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(any::<u64>(), 1..400), tau in 0.0f64..0.3) {
            let c = DeltaVarColumn::encode_with_tau(&values, tau);
            prop_assert_eq!(c.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(c.get(i), v);
            }
        }
    }
}
