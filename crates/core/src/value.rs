//! Value-type abstraction.
//!
//! LeCo operates internally on `u64` sequences.  Signed and 32-bit integer
//! columns are mapped to `u64` through an *order-preserving* bijection so that
//! serial patterns (monotonicity, piecewise linearity) survive the conversion,
//! and so the benchmark harness can report compression ratios against the
//! original value width.

/// An integer type that can be stored in a LeCo column.
///
/// The mapping to `u64` must be order preserving: `a < b ⇔ a.to_ordered_u64()
/// < b.to_ordered_u64()`.
pub trait LecoInt: Copy + Ord + std::fmt::Debug {
    /// Width of the original type in bytes (used for compression-ratio
    /// accounting).
    const WIDTH_BYTES: usize;

    /// Map to `u64`, preserving order.
    fn to_ordered_u64(self) -> u64;

    /// Inverse of [`Self::to_ordered_u64`].
    fn from_ordered_u64(v: u64) -> Self;
}

impl LecoInt for u64 {
    const WIDTH_BYTES: usize = 8;

    #[inline]
    fn to_ordered_u64(self) -> u64 {
        self
    }

    #[inline]
    fn from_ordered_u64(v: u64) -> Self {
        v
    }
}

impl LecoInt for u32 {
    const WIDTH_BYTES: usize = 4;

    #[inline]
    fn to_ordered_u64(self) -> u64 {
        self as u64
    }

    #[inline]
    fn from_ordered_u64(v: u64) -> Self {
        v as u32
    }
}

impl LecoInt for i64 {
    const WIDTH_BYTES: usize = 8;

    #[inline]
    fn to_ordered_u64(self) -> u64 {
        // Flip the sign bit: i64::MIN -> 0, -1 -> 0x7FFF.., 0 -> 0x8000.., MAX -> u64::MAX.
        (self as u64) ^ (1u64 << 63)
    }

    #[inline]
    fn from_ordered_u64(v: u64) -> Self {
        (v ^ (1u64 << 63)) as i64
    }
}

impl LecoInt for i32 {
    const WIDTH_BYTES: usize = 4;

    #[inline]
    fn to_ordered_u64(self) -> u64 {
        ((self as u32) ^ (1u32 << 31)) as u64
    }

    #[inline]
    fn from_ordered_u64(v: u64) -> Self {
        ((v as u32) ^ (1u32 << 31)) as i32
    }
}

/// Convert a slice of any [`LecoInt`] into the internal `u64` representation.
pub fn to_ordered_u64s<T: LecoInt>(values: &[T]) -> Vec<u64> {
    values.iter().map(|v| v.to_ordered_u64()).collect()
}

/// Convert back from the internal representation.
pub fn from_ordered_u64s<T: LecoInt>(values: &[u64]) -> Vec<T> {
    values.iter().map(|&v| T::from_ordered_u64(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn i64_mapping_is_order_preserving_on_extremes() {
        let values = [i64::MIN, -1, 0, 1, i64::MAX];
        for w in values.windows(2) {
            assert!(w[0].to_ordered_u64() < w[1].to_ordered_u64());
        }
    }

    #[test]
    fn i32_round_trip_extremes() {
        for v in [i32::MIN, -1, 0, 1, i32::MAX] {
            assert_eq!(i32::from_ordered_u64(v.to_ordered_u64()), v);
        }
    }

    proptest! {
        #[test]
        fn prop_i64_round_trip_and_order(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(i64::from_ordered_u64(a.to_ordered_u64()), a);
            prop_assert_eq!(a.cmp(&b), a.to_ordered_u64().cmp(&b.to_ordered_u64()));
        }

        #[test]
        fn prop_i32_round_trip_and_order(a in any::<i32>(), b in any::<i32>()) {
            prop_assert_eq!(i32::from_ordered_u64(a.to_ordered_u64()), a);
            prop_assert_eq!(a.cmp(&b), a.to_ordered_u64().cmp(&b.to_ordered_u64()));
        }

        #[test]
        fn prop_u32_round_trip(a in any::<u32>()) {
            prop_assert_eq!(u32::from_ordered_u64(a.to_ordered_u64()), a);
        }

        #[test]
        fn prop_slice_round_trip(values in proptest::collection::vec(any::<i64>(), 0..100)) {
            let u = to_ordered_u64s(&values);
            prop_assert_eq!(from_ordered_u64s::<i64>(&u), values);
        }
    }
}
