//! # LeCo — Learned Compression for serial correlations
//!
//! A from-scratch Rust implementation of the LeCo framework (Liu, Zeng &
//! Zhang, SIGMOD 2024): lossless lightweight columnar compression that fits a
//! small regression model per partition of a value sequence and stores only
//! the bit-packed prediction errors ("Model + Delta").
//!
//! The crate mirrors the five modules of the paper's architecture (Figure 3):
//!
//! * [`regressor`] — fits one model to one partition, minimising the *maximum*
//!   prediction error so the delta array can be bit-packed at a fixed width.
//! * [`partition`] — splits the sequence into partitions: fixed-length with an
//!   automatic block-size search, the greedy split–merge variable-length
//!   algorithm, and the comparison partitioners of §4.8 (PLA, Sim-Piece,
//!   la_vector, exact dynamic programming).
//! * [`advisor`] — the Hyper-parameter Advisor: feature extraction, a CART
//!   regressor selector, and the local/global hardness scores that drive the
//!   partition-strategy advice.
//! * [`column`](mod@column) + [`format`](mod@format) — the Encoder/Decoder
//!   pair: a self-describing
//!   storage format with O(1)-ish random access and a fused word-parallel
//!   sequential decoder (bulk delta unpack + in-place model reconstruction;
//!   §3.3's θ₁-accumulation survives as the wide-value fallback).  The byte
//!   layout is specified in `docs/FORMAT.md` at the repository root and
//!   enforced by `tests/format_spec.rs`.
//! * [`string`] — the order-preserving string extension (§3.4).
//!
//! [`delta_var`] implements "Delta-var", the paper's improved Delta encoding
//! that reuses LeCo's variable-length partitioner.
//!
//! ## Quick start
//!
//! ```
//! use leco_core::{LecoConfig, LecoCompressor};
//!
//! // A piecewise-linear sequence: LeCo stores two models + tiny deltas.
//! let values: Vec<u64> = (0..10_000u64)
//!     .map(|i| if i < 5_000 { 10 + 3 * i } else { 100_000 + 7 * (i - 5_000) })
//!     .collect();
//!
//! let compressor = LecoCompressor::new(LecoConfig::leco_var());
//! let column = compressor.compress(&values);
//!
//! assert!(column.size_bytes() < values.len()); // < 1 byte per value here
//! assert_eq!(column.get(7_123), values[7_123]); // random access
//! assert_eq!(column.decode_all(), values);      // lossless
//! ```

pub mod advisor;
pub mod column;
pub mod delta_var;
pub mod format;
pub mod model;
pub mod partition;
pub mod regressor;
pub mod string;
pub mod value;

pub use column::{CompressedColumn, LecoCompressor, PushdownCounts};
pub use model::{Model, Monotone, RegressorKind, SlackBands};
pub use partition::{Partition, PartitionerKind};
pub use value::LecoInt;

/// Top-level configuration: which regressor family and which partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct LecoConfig {
    /// Regressor family used for every partition (or `Auto` to let the
    /// Hyper-parameter Advisor pick per partition).
    pub regressor: RegressorKind,
    /// Partitioning strategy.
    pub partitioner: PartitionerKind,
}

impl LecoConfig {
    /// `LeCo-fix`: linear regressor, fixed-length partitions with an
    /// automatically searched block size (§3.2.1).
    pub fn leco_fix() -> Self {
        Self {
            regressor: RegressorKind::Linear,
            partitioner: PartitionerKind::FixedAuto,
        }
    }

    /// `LeCo-fix` with an explicit partition length.
    pub fn leco_fix_with_len(len: usize) -> Self {
        Self {
            regressor: RegressorKind::Linear,
            partitioner: PartitionerKind::Fixed { len },
        }
    }

    /// `LeCo-var`: linear regressor, split–merge variable-length partitions
    /// (§3.2.2) with the paper's default split aggressiveness.
    pub fn leco_var() -> Self {
        Self {
            regressor: RegressorKind::Linear,
            partitioner: PartitionerKind::SplitMerge { tau: 0.1 },
        }
    }

    /// `LeCo-Poly-fix`: polynomial (degree ≤ 3) regressor, fixed partitions.
    pub fn leco_poly_fix() -> Self {
        Self {
            regressor: RegressorKind::Poly3,
            partitioner: PartitionerKind::FixedAuto,
        }
    }

    /// `LeCo-Poly-var`: polynomial regressor, variable-length partitions.
    pub fn leco_poly_var() -> Self {
        Self {
            regressor: RegressorKind::Poly3,
            partitioner: PartitionerKind::SplitMerge { tau: 0.1 },
        }
    }

    /// Frame-of-Reference expressed inside the LeCo framework: a constant
    /// (horizontal-line) regressor with fixed-length partitions.
    pub fn for_() -> Self {
        Self {
            regressor: RegressorKind::Constant,
            partitioner: PartitionerKind::FixedAuto,
        }
    }
}

impl Default for LecoConfig {
    fn default() -> Self {
        Self::leco_fix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_example_compiles_and_is_lossless() {
        let values: Vec<u64> = (0..2_000u64)
            .map(|i| {
                if i < 1_000 {
                    10 + 3 * i
                } else {
                    100_000 + 7 * (i - 1_000)
                }
            })
            .collect();
        let column = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        assert_eq!(column.decode_all(), values);
        assert_eq!(column.get(1_500), values[1_500]);
    }

    #[test]
    fn config_presets_differ() {
        assert_ne!(LecoConfig::leco_fix(), LecoConfig::leco_var());
        assert_ne!(LecoConfig::leco_fix(), LecoConfig::for_());
        assert_eq!(LecoConfig::default(), LecoConfig::leco_fix());
    }
}
