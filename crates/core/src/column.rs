//! The Encoder/Decoder pair: compressing a column and accessing it.
//!
//! A [`CompressedColumn`] holds, per partition, the fitted model, the exact
//! integer `bias`, the delta bit width and the position of its packed deltas
//! inside a shared bit-packed payload (Figure 7's layout).  Decoding one
//! value is a model inference plus one bit-extract; decoding a range uses the
//! θ₁-accumulation optimisation with an error-correction list (§3.3).

use crate::advisor::RegressorSelector;
use crate::model::{Model, RegressorKind, SlackBands};
use crate::partition::{self, PartitionerKind};
use crate::regressor::{self, FitContext};
use crate::value::LecoInt;
use crate::LecoConfig;
use leco_bitpack::{stream::read_bits, BitWriter};

/// Per-partition metadata kept in memory (and serialized by [`crate::format`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PartitionMeta {
    /// Logical index of the first value.
    pub start: u64,
    /// Number of values.
    pub len: u32,
    /// Fitted model (predicting offsets; the absolute anchor lives in `bias`).
    pub model: Model,
    /// Exact minimum delta: stored deltas are `delta - bias`.
    pub bias: i128,
    /// Bits per packed delta.
    pub width: u8,
    /// Bit offset of this partition's deltas inside the shared payload
    /// (derived, not serialized).
    pub bit_offset: u64,
    /// Local positions where the θ₁-accumulation floor differs from the exact
    /// model floor (only populated for linear models).
    pub corrections: Vec<u32>,
}

/// Row accounting for a pushdown filter over one column: every row lands in
/// exactly one bucket, so `total()` always equals the column length.
///
/// This is the observable half of the tentpole claim — pushdown wins exactly
/// when `rows_skipped_by_model` dominates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PushdownCounts {
    /// Rows resolved (in *or* out) purely by model inversion, never decoded.
    pub rows_skipped_by_model: u64,
    /// Rows inside the correction-slack band that had to be decoded to
    /// settle the predicate.
    pub boundary_rows_decoded: u64,
    /// Rows of partitions whose model is not invertible
    /// ([`Model::monotone`] is `None`), decoded wholesale.
    pub rows_decoded_full: u64,
}

impl PushdownCounts {
    /// Sum of all buckets — always the number of rows filtered.
    pub fn total(&self) -> u64 {
        self.rows_skipped_by_model + self.boundary_rows_decoded + self.rows_decoded_full
    }
}

/// Scan `decoded` (values of global positions starting at `global0`) and
/// emit each maximal run of values satisfying `lo <= v <= hi` as a half-open
/// global range.
fn emit_matching_runs(
    decoded: &[u64],
    global0: usize,
    lo: u64,
    hi: u64,
    emit: &mut impl FnMut(usize, usize),
) {
    let mut k = 0;
    while k < decoded.len() {
        if (lo..=hi).contains(&decoded[k]) {
            let run0 = k;
            while k < decoded.len() && (lo..=hi).contains(&decoded[k]) {
                k += 1;
            }
            emit(global0 + run0, global0 + k);
        } else {
            k += 1;
        }
    }
}

/// The LeCo encoder: configuration plus (optionally) a trained Regressor
/// Selector for `RegressorKind::Auto`.
#[derive(Debug, Clone)]
pub struct LecoCompressor {
    config: LecoConfig,
    fit_ctx: FitContext,
    selector: Option<RegressorSelector>,
}

impl LecoCompressor {
    /// Create a compressor for the given configuration.  When the regressor
    /// is [`RegressorKind::Auto`] a default Regressor Selector is trained
    /// (deterministically) on construction.
    pub fn new(config: LecoConfig) -> Self {
        let selector = if config.regressor == RegressorKind::Auto {
            Some(RegressorSelector::train_default())
        } else {
            None
        };
        Self {
            config,
            fit_ctx: FitContext::default(),
            selector,
        }
    }

    /// Create a compressor with a caller-provided fit context (e.g. known
    /// sine frequencies for the `2sin-freq` configuration of §4.4).
    pub fn with_context(config: LecoConfig, fit_ctx: FitContext) -> Self {
        let mut c = Self::new(config);
        c.fit_ctx = fit_ctx;
        c
    }

    /// Create a compressor that uses a caller-trained Regressor Selector.
    pub fn with_selector(config: LecoConfig, selector: RegressorSelector) -> Self {
        Self {
            config,
            fit_ctx: FitContext::default(),
            selector: Some(selector),
        }
    }

    /// The configuration this compressor was built with.
    pub fn config(&self) -> &LecoConfig {
        &self.config
    }

    /// Compress a `u64` column.
    pub fn compress(&self, values: &[u64]) -> CompressedColumn {
        self.compress_with_width(values, 8)
    }

    /// Compress a column of any supported integer type, preserving its
    /// original width for compression-ratio accounting.
    pub fn compress_ints<T: LecoInt>(&self, values: &[T]) -> CompressedColumn {
        let mapped = crate::value::to_ordered_u64s(values);
        self.compress_with_width(&mapped, T::WIDTH_BYTES)
    }

    fn compress_with_width(&self, values: &[u64], value_width: usize) -> CompressedColumn {
        let parts = partition::partition(&self.config.partitioner, self.config.regressor, values);
        let fixed_len = match &self.config.partitioner {
            PartitionerKind::Fixed { len } => Some(*len),
            PartitionerKind::FixedAuto => parts.first().map(|p| p.len),
            _ => None,
        };
        let mut metas: Vec<PartitionMeta> = Vec::with_capacity(parts.len());
        let mut writer = BitWriter::with_capacity(values.len() * 8);
        for p in &parts {
            let slice = &values[p.start..p.end()];
            let kind = match (&self.config.regressor, &self.selector) {
                (RegressorKind::Auto, Some(sel)) => sel.recommend(slice),
                (kind, _) => *kind,
            };
            let (model, stats) = regressor::fit_checked(kind, slice, &self.fit_ctx);
            let bit_offset = writer.len_bits() as u64;
            for (local, &v) in slice.iter().enumerate() {
                let delta = v as i128 - model.predict_floor(local);
                let packed = (delta - stats.bias) as u128 as u64;
                writer.write(packed, stats.width);
            }
            // Only the θ₁-accumulation fallback decoder ever consults the
            // correction list (`Model::needs_corrections`); partitions on
            // the direct-evaluation fast path store none — format v2.
            let corrections = model.drift_corrections(p.len);
            metas.push(PartitionMeta {
                start: p.start as u64,
                len: p.len as u32,
                model,
                bias: stats.bias,
                width: stats.width,
                bit_offset,
                corrections,
            });
        }
        let (payload, payload_bits) = writer.finish();
        let mut column = CompressedColumn {
            partitions: metas,
            payload,
            payload_bits,
            len: values.len(),
            fixed_len,
            value_width,
            serialized_bytes: 0,
        };
        column.serialized_bytes = crate::format::serialized_size(&column);
        column
    }
}

/// A compressed, immutable LeCo column.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedColumn {
    pub(crate) partitions: Vec<PartitionMeta>,
    pub(crate) payload: Vec<u64>,
    pub(crate) payload_bits: usize,
    pub(crate) len: usize,
    /// `Some(L)` when every partition (except possibly the last) has length
    /// `L`, enabling O(1) partition lookup.
    pub(crate) fixed_len: Option<usize>,
    /// Original value width in bytes (4 or 8), for ratio accounting.
    pub(crate) value_width: usize,
    /// Exact serialized size in bytes.
    pub(crate) serialized_bytes: usize,
}

impl CompressedColumn {
    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes (exact size of [`Self::to_bytes`]).
    pub fn size_bytes(&self) -> usize {
        self.serialized_bytes
    }

    /// Bytes spent on models and per-partition metadata (the cross-hatched
    /// "model size" portion of Figure 10's compression-ratio bars).
    pub fn model_size_bytes(&self) -> usize {
        self.serialized_bytes - leco_bitpack::div_ceil(self.payload_bits, 8)
    }

    /// Compression ratio against the original fixed-width representation.
    pub fn compression_ratio(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.size_bytes() as f64 / (self.len * self.value_width) as f64
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The `(start, len)` span of every partition, in order — the layout the
    /// partitioner chose.  Useful for auditing partition decisions and for
    /// reconciling the cost model against the serialized size.
    pub fn partition_spans(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.partitions
            .iter()
            .map(|p| (p.start as usize, p.len as usize))
    }

    /// Original value width in bytes.
    pub fn value_width(&self) -> usize {
        self.value_width
    }

    /// Index of the partition containing logical position `i`.
    #[inline]
    fn partition_of(&self, i: usize) -> usize {
        if let Some(l) = self.fixed_len {
            return (i / l).min(self.partitions.len() - 1);
        }
        // Learned lookup: interpolate, then fix up with a local search.
        let n = self.partitions.len();
        let mut guess = ((i as f64 / self.len as f64) * n as f64) as usize;
        if guess >= n {
            guess = n - 1;
        }
        while self.partitions[guess].start as usize > i {
            guess -= 1;
        }
        while guess + 1 < n && self.partitions[guess + 1].start as usize <= i {
            guess += 1;
        }
        guess
    }

    /// Random access to the value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let p = &self.partitions[self.partition_of(i)];
        let local = i - p.start as usize;
        let packed = if p.width == 0 {
            0
        } else {
            read_bits(
                &self.payload,
                p.bit_offset as usize + local * p.width as usize,
                p.width,
            )
        };
        (p.model.predict_floor(local) + p.bias + packed as i128) as u64
    }

    /// Random access returning the original integer type.
    pub fn get_as<T: LecoInt>(&self, i: usize) -> T {
        T::from_ordered_u64(self.get(i))
    }

    /// Decode the half-open range `[from, to)` into `out`.
    ///
    /// Every partition segment is decoded with the fused word-parallel bulk
    /// path: the packed deltas are unpacked straight into the output buffer
    /// by [`leco_bitpack::unpack_bits_into`] (several values per word read),
    /// then the model prediction and bias are folded in with one in-place
    /// pass.  Full partitions with linear models additionally use the
    /// θ₁-accumulation fast path (one addition instead of a multiplication
    /// per value) with the correction list compensating for floating-point
    /// drift; partial partitions at the edges evaluate the model exactly.
    pub fn decode_range_into(&self, from: usize, to: usize, out: &mut Vec<u64>) {
        assert!(from <= to && to <= self.len, "invalid range {from}..{to}");
        if from == to {
            return;
        }
        let written = out.len();
        out.resize(written + (to - from), 0);
        let mut dst = &mut out[written..];
        let mut i = from;
        let mut part_idx = self.partition_of(from);
        while i < to {
            let p = &self.partitions[part_idx];
            let p_start = p.start as usize;
            let p_end = p_start + p.len as usize;
            let seg_from = i;
            let seg_to = to.min(p_end);
            let local0 = seg_from - p_start;
            let (seg, rest) = dst.split_at_mut(seg_to - seg_from);
            leco_bitpack::unpack_bits_into(
                &self.payload,
                p.bit_offset as usize + local0 * p.width as usize,
                p.width,
                seg,
            );
            if seg_from == p_start && seg_to == p_end {
                p.model.reconstruct_into(p.bias, &p.corrections, seg);
            } else {
                p.model.reconstruct_span_into(p.bias, local0, seg);
            }
            dst = rest;
            i = seg_to;
            part_idx += 1;
        }
    }

    /// Decode the whole column, appending to `out` (the bulk API used by the
    /// columnar scan kernels to reuse one buffer across row groups).
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        self.decode_range_into(0, self.len, out);
    }

    /// Decode the whole column.
    pub fn decode_all(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_range_into(0, self.len, &mut out);
        out
    }

    /// Decode the whole column into the original integer type.
    pub fn decode_all_as<T: LecoInt>(&self) -> Vec<T> {
        crate::value::from_ordered_u64s(&self.decode_all())
    }

    /// Serialize to the self-describing byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::format::to_bytes(self)
    }

    /// Deserialize a column produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::format::FormatError> {
        crate::format::from_bytes(bytes)
    }

    /// Evaluate the inclusive predicate `lo <= v <= hi` over the whole
    /// column *without decoding it*, wherever the models allow: compressed
    /// execution via [`Model::invert_range`].
    ///
    /// Per partition, monotone models are inverted into a definite interval
    /// (emitted without touching the payload) plus at most two boundary
    /// spans inside the correction-slack band, which are bulk-decoded into
    /// `scratch` and compared.  Partitions with non-invertible models fall
    /// back to decode-then-filter.  `emit` receives disjoint half-open
    /// global row ranges of matching rows (not necessarily in positional
    /// order: a partition's definite interval is emitted before its
    /// boundary spans).
    ///
    /// The returned [`PushdownCounts`] account for every row exactly once;
    /// the selection is bit-for-bit identical to decode-then-filter (locked
    /// by `tests/pushdown_differential.rs`).
    pub fn filter_range_pushdown(
        &self,
        lo: u64,
        hi: u64,
        scratch: &mut Vec<u64>,
        mut emit: impl FnMut(usize, usize),
    ) -> PushdownCounts {
        let mut counts = PushdownCounts::default();
        if lo > hi {
            // Empty predicate: every row is resolved without decoding.
            counts.rows_skipped_by_model = self.len as u64;
            return counts;
        }
        for p in &self.partitions {
            let start = p.start as usize;
            let len = p.len as usize;
            match p.model.invert_range(len, p.bias, p.width, lo, hi) {
                Some(SlackBands {
                    candidate,
                    definite,
                }) => {
                    if definite.start < definite.end {
                        emit(start + definite.start, start + definite.end);
                    }
                    let boundary =
                        (definite.start - candidate.start) + (candidate.end - definite.end);
                    counts.rows_skipped_by_model += (len - boundary) as u64;
                    counts.boundary_rows_decoded += boundary as u64;
                    for span in [candidate.start..definite.start, definite.end..candidate.end] {
                        if span.start >= span.end {
                            continue;
                        }
                        scratch.clear();
                        self.decode_range_into(start + span.start, start + span.end, scratch);
                        emit_matching_runs(scratch, start + span.start, lo, hi, &mut emit);
                    }
                }
                None => {
                    counts.rows_decoded_full += len as u64;
                    scratch.clear();
                    self.decode_range_into(start, start + len, scratch);
                    emit_matching_runs(scratch, start, lo, hi, &mut emit);
                }
            }
        }
        counts
    }

    /// For a sorted column compressed with monotone non-decreasing models,
    /// return the smallest position whose value is `>= target`, or `len` if
    /// all values are smaller.  Uses the per-partition model bounds to skip
    /// partitions entirely (the computation-pruning idea behind the filter
    /// speed-ups of §5.1.1), then binary-searches within the candidate
    /// partition using random access.
    pub fn lower_bound_sorted(&self, target: u64) -> usize {
        if self.len == 0 {
            return 0;
        }
        // Binary search over partitions by their first value.
        let mut lo = 0usize;
        let mut hi = self.partitions.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let first = self.get(self.partitions[mid].start as usize);
            if first <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Binary search within partition `lo` (and it may spill into later
        // partitions if duplicates straddle the boundary, handled by the
        // final forward scan which is O(1) amortised for sorted data).
        let p = &self.partitions[lo];
        let (mut a, mut b) = (p.start as usize, (p.start + p.len as u64) as usize);
        while a < b {
            let mid = (a + b) / 2;
            if self.get(mid) < target {
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LecoConfig;
    use proptest::prelude::*;

    fn movie_like(n: usize) -> Vec<u64> {
        // Piecewise-linear with plateaus and jumps, similar to movieid.
        (0..n as u64)
            .map(|i| {
                let seg = i / 500;
                let base = seg * seg * 1_000;
                base + (i % 500) * (seg % 7 + 1)
            })
            .collect()
    }

    #[test]
    fn round_trip_all_configs() {
        let values = movie_like(6_000);
        for config in [
            LecoConfig::leco_fix(),
            LecoConfig::leco_var(),
            LecoConfig::leco_poly_fix(),
            LecoConfig::for_(),
            LecoConfig {
                regressor: RegressorKind::Auto,
                partitioner: PartitionerKind::Fixed { len: 512 },
            },
        ] {
            let col = LecoCompressor::new(config.clone()).compress(&values);
            assert_eq!(col.decode_all(), values, "{config:?}");
            for i in [0usize, 1, 499, 500, 501, 5_999] {
                assert_eq!(col.get(i), values[i], "{config:?} at {i}");
            }
        }
    }

    #[test]
    fn compresses_linear_data_dramatically() {
        let values: Vec<u64> = (0..100_000u64).map(|i| 1_000_000 + 13 * i).collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix()).compress(&values);
        // A clean line needs essentially only the models: far below 1 bit/value.
        assert!(
            col.size_bytes() * 50 < values.len() * 8,
            "size {}",
            col.size_bytes()
        );
        assert_eq!(col.decode_all(), values);
    }

    #[test]
    fn beats_for_on_sloped_data() {
        let values: Vec<u64> = (0..50_000u64).map(|i| 7 * i + (i % 9)).collect();
        let leco = LecoCompressor::new(LecoConfig::leco_fix_with_len(1024)).compress(&values);
        let for_ = LecoCompressor::new(LecoConfig {
            regressor: RegressorKind::Constant,
            partitioner: PartitionerKind::Fixed { len: 1024 },
        })
        .compress(&values);
        assert!(leco.size_bytes() < for_.size_bytes() / 2);
    }

    #[test]
    fn random_access_equals_decode_all() {
        let values = movie_like(4_000);
        let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        let decoded = col.decode_all();
        for i in (0..values.len()).step_by(37) {
            assert_eq!(col.get(i), decoded[i]);
        }
    }

    #[test]
    fn decode_range_matches_slices() {
        let values = movie_like(5_000);
        let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(256)).compress(&values);
        for (from, to) in [
            (0usize, 5_000usize),
            (10, 20),
            (250, 260),
            (0, 256),
            (255, 513),
            (4_990, 5_000),
            (100, 100),
        ] {
            let mut out = Vec::new();
            col.decode_range_into(from, to, &mut out);
            assert_eq!(out, &values[from..to], "range {from}..{to}");
        }
    }

    #[test]
    fn signed_values_round_trip() {
        let values: Vec<i64> = (-5_000..5_000).map(|i| i * 3).collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix()).compress_ints(&values);
        assert_eq!(col.decode_all_as::<i64>(), values);
        assert_eq!(col.get_as::<i64>(123), values[123]);
        assert_eq!(col.value_width(), 8);
    }

    #[test]
    fn u32_ratio_accounting_uses_4_bytes() {
        let values: Vec<u32> = (0..10_000u32).map(|i| i * 2).collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix()).compress_ints(&values);
        assert_eq!(col.value_width(), 4);
        assert!(col.compression_ratio() < 0.2);
    }

    #[test]
    fn empty_and_singleton_columns() {
        let col = LecoCompressor::new(LecoConfig::leco_fix()).compress(&[]);
        assert!(col.is_empty());
        assert!(col.decode_all().is_empty());
        let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&[42]);
        assert_eq!(col.get(0), 42);
        assert_eq!(col.decode_all(), vec![42]);
    }

    #[test]
    fn model_size_breakdown_is_consistent() {
        // Add noise so the delta payload is non-empty.
        let values: Vec<u64> = movie_like(10_000)
            .iter()
            .enumerate()
            .map(|(i, &v)| v + (i as u64 * 2654435761) % 17)
            .collect();
        let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        assert!(col.model_size_bytes() > 0);
        assert!(col.model_size_bytes() < col.size_bytes());
        // A perfectly-predicted column degenerates to headers only.
        let clean: Vec<u64> = (0..1_000u64).map(|i| 3 * i).collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(1_000)).compress(&clean);
        assert_eq!(col.model_size_bytes(), col.size_bytes());
    }

    #[test]
    fn corrections_make_accumulation_exact() {
        // A slope chosen to accumulate floating-point error quickly.
        let values: Vec<u64> = (0..100_000u64)
            .map(|i| (i as f64 * 0.1).floor() as u64 * 10 + i / 3)
            .collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(10_000)).compress(&values);
        assert_eq!(col.decode_all(), values);
    }

    #[test]
    fn lower_bound_sorted_matches_std() {
        let values: Vec<u64> = (0..20_000u64).map(|i| i * 3 + (i % 7)).collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(1_000)).compress(&values);
        for target in [0u64, 1, 2, 3, 29_999, 30_000, 59_000, 100_000] {
            let expected = values.partition_point(|&v| v < target);
            assert_eq!(col.lower_bound_sorted(target), expected, "target {target}");
        }
    }

    #[test]
    fn extreme_u64_values_round_trip() {
        let values = vec![0u64, u64::MAX, u64::MAX - 3, 5, u64::MAX / 2, 0, 17];
        for config in [LecoConfig::leco_fix_with_len(4), LecoConfig::leco_var()] {
            let col = LecoCompressor::new(config).compress(&values);
            assert_eq!(col.decode_all(), values);
        }
    }

    /// Decode-then-filter reference for `filter_range_pushdown`.
    fn reference_selection(values: &[u64], lo: u64, hi: u64) -> Vec<bool> {
        values.iter().map(|v| (lo..=hi).contains(v)).collect()
    }

    fn pushdown_selection(col: &CompressedColumn, lo: u64, hi: u64) -> (Vec<bool>, PushdownCounts) {
        let mut sel = vec![false; col.len()];
        let mut scratch = Vec::new();
        let counts = col.filter_range_pushdown(lo, hi, &mut scratch, |a, b| {
            for s in sel[a..b].iter_mut() {
                assert!(!*s, "range {a}..{b} double-emitted");
                *s = true;
            }
        });
        (sel, counts)
    }

    #[test]
    fn pushdown_filter_matches_decode_then_filter() {
        let values = movie_like(5_000);
        let vmax = *values.iter().max().unwrap();
        for config in [
            LecoConfig::leco_fix_with_len(256),
            LecoConfig::leco_var(),
            LecoConfig::leco_poly_fix(),
            LecoConfig::for_(),
        ] {
            let col = LecoCompressor::new(config.clone()).compress(&values);
            for (lo, hi) in [
                (0u64, u64::MAX),
                (0, 0),
                (values[100], values[100]),
                (values[700], values[4_200]),
                (vmax + 1, u64::MAX),
                (10, 5),
            ] {
                let (sel, counts) = pushdown_selection(&col, lo, hi);
                assert_eq!(
                    sel,
                    reference_selection(&values, lo, hi),
                    "{config:?} [{lo},{hi}]"
                );
                assert_eq!(
                    counts.total(),
                    values.len() as u64,
                    "{config:?} [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn pushdown_skips_most_rows_on_selective_predicates() {
        // Clean linear data, selective predicate: nearly everything should be
        // resolved by the model inverse alone.
        let values: Vec<u64> = (0..100_000u64).map(|i| 1_000 + 13 * i).collect();
        let col = LecoCompressor::new(LecoConfig::leco_fix()).compress(&values);
        let (sel, counts) = pushdown_selection(&col, values[500], values[600]);
        assert_eq!(sel.iter().filter(|&&s| s).count(), 101);
        assert_eq!(counts.total(), values.len() as u64);
        assert_eq!(counts.rows_decoded_full, 0);
        assert!(
            counts.rows_skipped_by_model > counts.total() * 99 / 100,
            "{counts:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_lossless_any_values(values in proptest::collection::vec(any::<u64>(), 0..400)) {
            let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(64)).compress(&values);
            prop_assert_eq!(col.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(col.get(i), v);
            }
        }

        #[test]
        fn prop_lossless_variable_partitions(values in proptest::collection::vec(0u64..1_000_000, 1..400)) {
            let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
            prop_assert_eq!(col.decode_all(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(col.get(i), v);
            }
        }

        #[test]
        fn prop_sorted_data_compresses(mut values in proptest::collection::vec(0u64..u64::MAX / 2, 200..600)) {
            values.sort_unstable();
            let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(128)).compress(&values);
            prop_assert_eq!(col.decode_all(), values.clone());
            // Sorted data must never blow past the raw size by more than the
            // per-partition header overhead.
            prop_assert!(col.size_bytes() <= values.len() * 9 + 128);
        }
    }
}
