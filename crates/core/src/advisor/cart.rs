//! A small CART (Classification And Regression Tree) implementation.
//!
//! The Regressor Selector of the paper trains a CART classifier offline on
//! features extracted from synthetic training sequences, then uses it at
//! runtime to pick a regressor family per partition.  This module provides a
//! dependency-free trainer (Gini impurity, axis-aligned splits, depth and
//! leaf-size limits) and a predictor; the labels are opaque `usize` class
//! ids, mapped to [`crate::model::RegressorKind`] by the selector.

use serde::{Deserialize, Serialize};

/// A trained decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CartTree {
    nodes: Vec<Node>,
    num_classes: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the subtree taken when `x[feature] <= threshold`.
        left: usize,
        /// Index of the subtree taken otherwise.
        right: usize,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct CartParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
}

impl Default for CartParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 8,
        }
    }
}

/// Gini impurity of a label multiset.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

fn majority_class(labels: &[usize], num_classes: usize) -> usize {
    let mut counts = vec![0usize; num_classes];
    for &l in labels {
        counts[l] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl CartTree {
    /// Train a tree on `samples` (feature vectors) with the given `labels`.
    ///
    /// # Panics
    /// Panics if `samples` and `labels` differ in length or are empty.
    pub fn train(samples: &[Vec<f64>], labels: &[usize], params: CartParams) -> Self {
        assert_eq!(samples.len(), labels.len());
        assert!(!samples.is_empty(), "training set must not be empty");
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut tree = Self {
            nodes: Vec::new(),
            num_classes,
        };
        let indices: Vec<usize> = (0..samples.len()).collect();
        tree.build(samples, labels, &indices, 0, params);
        tree
    }

    fn build(
        &mut self,
        samples: &[Vec<f64>],
        labels: &[usize],
        indices: &[usize],
        depth: usize,
        params: CartParams,
    ) -> usize {
        let node_labels: Vec<usize> = indices.iter().map(|&i| labels[i]).collect();
        let mut counts = vec![0usize; self.num_classes];
        for &l in &node_labels {
            counts[l] += 1;
        }
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= params.max_depth || indices.len() < params.min_samples_split {
            let idx = self.nodes.len();
            self.nodes.push(Node::Leaf {
                class: majority_class(&node_labels, self.num_classes),
            });
            return idx;
        }
        // Find the best axis-aligned split by Gini gain.
        let num_features = samples[indices[0]].len();
        let parent_gini = gini(&counts, indices.len());
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
                                                        // (clippy's iterator suggestion is wrong here: `feature` indexes the
                                                        // inner per-sample vectors, not `samples` itself.)
        #[allow(clippy::needless_range_loop)]
        for feature in 0..num_features {
            let mut values: Vec<f64> = indices.iter().map(|&i| samples[i][feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values.dedup();
            // Candidate thresholds: midpoints between consecutive distinct values,
            // subsampled to at most 32 candidates to bound training time.
            let step = (values.len() / 32).max(1);
            for w in values.windows(2).step_by(step) {
                let threshold = (w[0] + w[1]) / 2.0;
                let mut left_counts = vec![0usize; self.num_classes];
                let mut right_counts = vec![0usize; self.num_classes];
                let mut left_n = 0usize;
                for &i in indices {
                    if samples[i][feature] <= threshold {
                        left_counts[labels[i]] += 1;
                        left_n += 1;
                    } else {
                        right_counts[labels[i]] += 1;
                    }
                }
                let right_n = indices.len() - left_n;
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let weighted = (left_n as f64 * gini(&left_counts, left_n)
                    + right_n as f64 * gini(&right_counts, right_n))
                    / indices.len() as f64;
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        let (feature, threshold, _gain) = match best {
            Some(b) if b.2 > 1e-9 => b,
            _ => {
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    class: majority_class(&node_labels, self.num_classes),
                });
                return idx;
            }
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| samples[i][feature] <= threshold);
        // Reserve this node's slot before building children so the root stays
        // at index 0.
        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { class: 0 }); // placeholder
        let left = self.build(samples, labels, &left_idx, depth + 1, params);
        let right = self.build(samples, labels, &right_idx, depth + 1, params);
        self.nodes[idx] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        idx
    }

    /// Predict the class of a feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (useful to sanity-check model complexity).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of classes seen at training time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_simple_threshold() {
        // class = (x0 > 5)
        let samples: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0, 0.0]).collect();
        let labels: Vec<usize> = (0..100)
            .map(|i| usize::from(i as f64 / 10.0 > 5.0))
            .collect();
        let tree = CartTree::train(&samples, &labels, CartParams::default());
        assert_eq!(tree.predict(&[2.0, 0.0]), 0);
        assert_eq!(tree.predict(&[8.0, 0.0]), 1);
    }

    #[test]
    fn learns_a_two_feature_rule() {
        // class 0: x0 <= 0.5; class 1: x0 > 0.5 && x1 <= 0.5; class 2: rest.
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                let x0 = a as f64 / 10.0;
                let x1 = b as f64 / 10.0;
                samples.push(vec![x0, x1]);
                labels.push(if x0 <= 0.5 {
                    0
                } else if x1 <= 0.5 {
                    1
                } else {
                    2
                });
            }
        }
        let tree = CartTree::train(&samples, &labels, CartParams::default());
        let accuracy = samples
            .iter()
            .zip(&labels)
            .filter(|(s, &l)| tree.predict(s) == l)
            .count() as f64
            / samples.len() as f64;
        assert!(accuracy > 0.95, "accuracy {accuracy}");
        assert_eq!(tree.num_classes(), 3);
    }

    #[test]
    fn pure_training_set_is_a_single_leaf() {
        let samples = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let tree = CartTree::train(&samples, &labels, CartParams::default());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[100.0]), 1);
    }

    #[test]
    fn depth_limit_is_respected() {
        // Alternating labels on one feature can't be separated at depth 1,
        // but training must still terminate and produce a small tree.
        let samples: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| i % 2).collect();
        let tree = CartTree::train(
            &samples,
            &labels,
            CartParams {
                max_depth: 2,
                min_samples_split: 2,
            },
        );
        assert!(tree.num_nodes() <= 7);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-9);
    }
}
