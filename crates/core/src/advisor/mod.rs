//! The Hyper-parameter Advisor (§3.1, §3.2.3).
//!
//! Two responsibilities:
//!
//! * the **Regressor Selector** — extract cheap single-pass features from a
//!   partition and feed them to an offline-trained CART classifier that picks
//!   the regressor family (constant / linear / polynomial / exponential /
//!   logarithmic);
//! * the **partition-strategy advisor** — the local-hardness and
//!   global-hardness scores (`H_l`, `H_g`) that estimate whether
//!   variable-length partitioning is worth its extra compression and access
//!   cost.

pub mod cart;
pub mod features;
pub mod hardness;
pub mod selector;

pub use cart::CartTree;
pub use features::{extract_features, Features, NUM_FEATURES};
pub use hardness::{hardness, Hardness, PartitionAdvice};
pub use selector::RegressorSelector;
