//! The Regressor Selector: an offline-trained CART classifier that recommends
//! a regressor family for a partition from its extracted features (§3.1,
//! evaluated in §4.4 / Figure 11).

use super::cart::{CartParams, CartTree};
use super::features::extract_features;
use crate::model::RegressorKind;
use crate::regressor::{self, FitContext};

/// Candidate regressor families the selector chooses among, in class-id
/// order.  This mirrors the six types of the paper's experiment: constant
/// (FOR), linear, polynomial up to degree three, exponential and logarithm.
pub const CANDIDATES: [RegressorKind; 6] = [
    RegressorKind::Constant,
    RegressorKind::Linear,
    RegressorKind::Poly2,
    RegressorKind::Poly3,
    RegressorKind::Exponential,
    RegressorKind::Logarithm,
];

/// A trained Regressor Selector.
#[derive(Debug, Clone)]
pub struct RegressorSelector {
    tree: CartTree,
}

/// Minimal xorshift generator so training data is reproducible without
/// pulling `rand` into the library's public dependency set.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f64 in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Generate one synthetic training sequence of the given class.
fn synth_sequence(class: usize, rng: &mut XorShift, n: usize) -> Vec<u64> {
    let noise_scale = rng.range(0.0, 8.0);
    let noise = |rng: &mut XorShift| rng.range(-noise_scale, noise_scale);
    let base = rng.range(1_000.0, 1.0e9);
    let mut out = Vec::with_capacity(n);
    match CANDIDATES[class] {
        RegressorKind::Constant => {
            for _ in 0..n {
                out.push((base + noise(rng)).max(0.0) as u64);
            }
        }
        RegressorKind::Linear => {
            let slope = rng.range(0.5, 5_000.0);
            for i in 0..n {
                out.push((base + slope * i as f64 + noise(rng)).max(0.0) as u64);
            }
        }
        RegressorKind::Poly2 => {
            let a = rng.range(0.01, 10.0);
            let b = rng.range(-50.0, 50.0);
            for i in 0..n {
                let x = i as f64;
                out.push((base + a * x * x + b * x + noise(rng)).max(0.0) as u64);
            }
        }
        RegressorKind::Poly3 => {
            let a = rng.range(0.0005, 0.05);
            let b = rng.range(-5.0, 5.0);
            for i in 0..n {
                let x = i as f64;
                out.push((base + a * x * x * x + b * x * x + noise(rng)).max(0.0) as u64);
            }
        }
        RegressorKind::Exponential => {
            let rate = rng.range(0.005, 0.02);
            for i in 0..n {
                out.push((base * (rate * i as f64).exp() + noise(rng)).max(0.0) as u64);
            }
        }
        RegressorKind::Logarithm => {
            let scale = rng.range(1_000.0, 100_000.0);
            for i in 0..n {
                out.push((base + scale * ((i + 1) as f64).ln() + noise(rng)).max(0.0) as u64);
            }
        }
        _ => unreachable!("CANDIDATES only contains concrete families"),
    }
    out
}

impl RegressorSelector {
    /// Train the selector on internally generated synthetic sequences (the
    /// "offline" training step of the paper).  Deterministic for a given
    /// seed, so results are reproducible.
    pub fn train_default() -> Self {
        Self::train_with(64, 512, 42)
    }

    /// Train with explicit sizes: `per_class` sequences of `seq_len` values
    /// for each candidate family.
    pub fn train_with(per_class: usize, seq_len: usize, seed: u64) -> Self {
        let mut rng = XorShift::new(seed);
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(per_class * CANDIDATES.len());
        let mut labels: Vec<usize> = Vec::with_capacity(per_class * CANDIDATES.len());
        for class in 0..CANDIDATES.len() {
            for _ in 0..per_class {
                let seq = synth_sequence(class, &mut rng, seq_len);
                samples.push(extract_features(&seq).to_array().to_vec());
                labels.push(class);
            }
        }
        let tree = CartTree::train(&samples, &labels, CartParams::default());
        Self { tree }
    }

    /// Recommend a regressor family for the given partition.
    pub fn recommend(&self, values: &[u64]) -> RegressorKind {
        if values.len() < 8 {
            return RegressorKind::Linear;
        }
        let features = extract_features(values).to_array();
        CANDIDATES[self.tree.predict(&features).min(CANDIDATES.len() - 1)]
    }

    /// Exhaustively pick the candidate with the smallest compressed size for
    /// the partition (the "optimal" line of Figure 11); much more expensive
    /// than [`Self::recommend`] because it fits every family.
    pub fn optimal(values: &[u64]) -> RegressorKind {
        let mut best = (RegressorKind::Linear, usize::MAX);
        for &kind in &CANDIDATES {
            let (model, stats) = regressor::fit_checked(kind, values, &FitContext::default());
            let cost = regressor::partition_cost_bits_exact(&model, values.len(), &stats);
            if cost < best.1 {
                best = (kind, cost);
            }
        }
        best.0
    }

    /// Access to the underlying decision tree (e.g. to report its size).
    pub fn tree(&self) -> &CartTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::partition_cost_bits_exact;

    /// Helper: compressed cost of `values` under `kind`.
    fn cost(values: &[u64], kind: RegressorKind) -> usize {
        let (model, stats) = regressor::fit_checked(kind, values, &FitContext::default());
        partition_cost_bits_exact(&model, values.len(), &stats)
    }

    #[test]
    fn training_is_deterministic() {
        let a = RegressorSelector::train_with(16, 128, 7);
        let b = RegressorSelector::train_with(16, 128, 7);
        let values: Vec<u64> = (0..500u64).map(|i| i * i).collect();
        assert_eq!(a.recommend(&values), b.recommend(&values));
    }

    #[test]
    fn recommendation_is_near_optimal_on_held_out_sequences() {
        // Figure 11's claim, in miniature: the recommended regressor's cost
        // should be close to the exhaustive optimum on unseen data.
        let selector = RegressorSelector::train_with(48, 512, 9);
        let mut rng = XorShift::new(12345);
        let mut within = 0usize;
        let total = 30usize;
        for t in 0..total {
            let class = t % CANDIDATES.len();
            let seq = synth_sequence(class, &mut rng, 512);
            let rec = selector.recommend(&seq);
            let opt = RegressorSelector::optimal(&seq);
            let rec_cost = cost(&seq, rec) as f64;
            let opt_cost = cost(&seq, opt) as f64;
            if rec_cost <= opt_cost * 1.25 {
                within += 1;
            }
        }
        assert!(
            within as f64 / total as f64 >= 0.7,
            "only {within}/{total} recommendations were within 25% of optimal"
        );
    }

    #[test]
    fn optimal_picks_poly_for_quadratic_data() {
        let values: Vec<u64> = (0..1_000u64).map(|i| 1_000 + i * i).collect();
        let opt = RegressorSelector::optimal(&values);
        assert!(
            matches!(opt, RegressorKind::Poly2 | RegressorKind::Poly3),
            "got {opt:?}"
        );
    }

    #[test]
    fn optimal_picks_cheap_model_for_constant_data() {
        let values = vec![9_999u64; 1_000];
        // Constant data is fit perfectly by every family; the cheapest model
        // (constant or linear) should win on parameter size.
        let opt = RegressorSelector::optimal(&values);
        assert!(
            matches!(opt, RegressorKind::Constant | RegressorKind::Linear),
            "got {opt:?}"
        );
    }

    #[test]
    fn short_partitions_default_to_linear() {
        let selector = RegressorSelector::train_with(8, 64, 3);
        assert_eq!(selector.recommend(&[1, 2, 3]), RegressorKind::Linear);
    }
}
