//! Data-set hardness scores and partition-strategy advice (§3.2.3).
//!
//! * **Local hardness `H_l`** — run piecewise linear approximation with a
//!   small error bound (ε = 7) and normalise the number of produced segments
//!   by the data size.  High `H_l` means no regressor fits well regardless of
//!   partitioning.
//! * **Global hardness `H_g`** — run PLA with a large error bound (ε = 4096)
//!   and combine (i) the normalised average value gap between adjacent
//!   segments and (ii) the normalised variance of segment lengths.  High
//!   `H_g` with low `H_l` is exactly the regime where variable-length
//!   partitioning pays off, because it can track the "sharp turns" of the
//!   global trend.

use crate::partition::pla;

/// Error bound used for the local-hardness PLA run.
pub const LOCAL_EPSILON: f64 = 7.0;
/// Error bound used for the global-hardness PLA run.
pub const GLOBAL_EPSILON: f64 = 4096.0;

/// Hardness scores of a data set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hardness {
    /// Local hardness `H_l` ∈ [0, 1].
    pub local: f64,
    /// Global hardness `H_g` ∈ [0, 1] (sum of two normalised components,
    /// clamped).
    pub global: f64,
}

/// Which partitioning strategy the advisor recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionAdvice {
    /// Fixed-length partitions: variable-length is unlikely to pay off.
    Fixed,
    /// Variable-length partitions: the data is locally easy but globally
    /// hard, so adaptive boundaries should improve compression noticeably.
    VariableLength,
}

/// Compute the hardness scores of a value sequence.
pub fn hardness(values: &[u64]) -> Hardness {
    let n = values.len();
    if n < 4 {
        return Hardness {
            local: 0.0,
            global: 0.0,
        };
    }
    // Local hardness: segment density under a tight error bound.
    let local_segments = pla::pla_partitions(values, LOCAL_EPSILON).len();
    let local = (local_segments as f64 / n as f64 * 50.0).min(1.0);

    // Global hardness: PLA under a loose bound; combine the average gap
    // between adjacent segments and the variance of the segment lengths.
    let result = pla::pla_with_stats(values, GLOBAL_EPSILON);
    let m = result.partitions.len();
    if m <= 1 {
        return Hardness { local, global: 0.0 };
    }
    let value_range = {
        let min = *values.iter().min().expect("non-empty") as f64;
        let max = *values.iter().max().expect("non-empty") as f64;
        (max - min).max(1.0)
    };
    let avg_gap = result.gaps.iter().sum::<f64>() / result.gaps.len() as f64;
    let gap_component = (avg_gap / (value_range / m as f64)).min(1.0);

    let lens: Vec<f64> = result.partitions.iter().map(|p| p.len as f64).collect();
    let mean_len = lens.iter().sum::<f64>() / m as f64;
    let var = lens
        .iter()
        .map(|l| (l - mean_len) * (l - mean_len))
        .sum::<f64>()
        / m as f64;
    // Coefficient of variation, squashed into [0, 1].
    let var_component = ((var.sqrt() / mean_len) / 2.0).min(1.0);

    Hardness {
        local,
        global: ((gap_component + var_component) / 2.0).min(1.0),
    }
}

/// Advise a partitioning strategy from the hardness scores: variable-length
/// is recommended when the data is locally easy but globally hard.
pub fn advise(h: Hardness) -> PartitionAdvice {
    if h.local < 0.5 && h.global > 0.45 {
        PartitionAdvice::VariableLength
    } else {
        PartitionAdvice::Fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_random(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| (i * 2654435761) % 1_000_000)
            .collect()
    }

    fn clean_line(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| 1_000 + 3 * i).collect()
    }

    fn piecewise_irregular(n: usize) -> Vec<u64> {
        // Locally smooth, but segment lengths and jumps vary wildly.
        let mut out = Vec::with_capacity(n);
        let mut v = 0u64;
        let mut i = 0usize;
        let mut seg = 0u64;
        while i < n {
            let len = 50 + ((seg * 7919) % 2_000) as usize;
            let slope = seg % 5 + 1;
            for _ in 0..len.min(n - i) {
                out.push(v);
                v += slope;
            }
            i += len;
            v += 1_000_000 + seg * 500_000; // irregular jumps
            seg += 1;
        }
        out.truncate(n);
        out
    }

    #[test]
    fn clean_line_is_easy_everywhere() {
        let h = hardness(&clean_line(50_000));
        assert!(h.local < 0.05, "local {}", h.local);
        assert!(h.global < 0.2, "global {}", h.global);
        assert_eq!(advise(h), PartitionAdvice::Fixed);
    }

    #[test]
    fn random_data_is_locally_hard() {
        let h = hardness(&noisy_random(50_000));
        assert!(h.local > 0.5, "local {}", h.local);
        assert_eq!(advise(h), PartitionAdvice::Fixed);
    }

    #[test]
    fn piecewise_irregular_is_locally_easy_globally_hard() {
        let h = hardness(&piecewise_irregular(50_000));
        assert!(h.local < 0.5, "local {}", h.local);
        assert!(h.global > 0.45, "global {}", h.global);
        assert_eq!(advise(h), PartitionAdvice::VariableLength);
    }

    #[test]
    fn variable_length_advice_correlates_with_actual_benefit() {
        // The data set that the advisor flags as variable-friendly should in
        // fact compress better with split–merge than with fixed partitions.
        use crate::{LecoCompressor, LecoConfig};
        let values = piecewise_irregular(20_000);
        let fix = LecoCompressor::new(LecoConfig::leco_fix()).compress(&values);
        let var = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        assert!(
            (var.size_bytes() as f64) < fix.size_bytes() as f64 * 0.95,
            "var {} should beat fix {}",
            var.size_bytes(),
            fix.size_bytes()
        );
    }

    #[test]
    fn tiny_inputs_are_neutral() {
        let h = hardness(&[1, 2, 3]);
        assert_eq!(
            h,
            Hardness {
                local: 0.0,
                global: 0.0
            }
        );
    }
}
