//! Feature extraction for the Regressor Selector (§3.1).
//!
//! All features are computable in a single pass (plus one pass per difference
//! order) over the partition:
//!
//! * **log-scale data range** — an upper bound on the delta-array width; a
//!   small range favours cheap models whose parameters would otherwise
//!   dominate the output.
//! * **deviation of the k-th order deltas** (k = 1, 2, 3) — the normalised
//!   deviation `Σ|d_i − avg| / (n·(max − min))`; a k-th degree polynomial has
//!   (near-)constant k-th order deltas, so a small deviation at order k hints
//!   at degree-k structure.
//! * **subrange trend and divergence** — the average and spread of the ratio
//!   between the value ranges of adjacent fixed-size sub-blocks; exponential
//!   growth shows up as a trend ≫ 1, irregular data as a large divergence.

/// Number of features produced by [`extract_features`].
pub const NUM_FEATURES: usize = 7;

/// Sub-block size used for the subrange trend/divergence features.
const SUBBLOCK: usize = 64;

/// Extracted feature vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Features {
    /// `log2(max − min + 1)`.
    pub log_range: f64,
    /// Normalised deviation of the 1st-order deltas.
    pub dev_delta1: f64,
    /// Normalised deviation of the 2nd-order deltas.
    pub dev_delta2: f64,
    /// Normalised deviation of the 3rd-order deltas.
    pub dev_delta3: f64,
    /// Average subrange ratio between adjacent sub-blocks (trend `T`).
    pub subrange_trend: f64,
    /// Max − min subrange ratio (divergence `D`).
    pub subrange_divergence: f64,
    /// Fraction of values equal to their predecessor (run-friendliness; helps
    /// separate constant from linear families).
    pub repeat_fraction: f64,
}

impl Features {
    /// Flatten to an array for the CART classifier.
    pub fn to_array(&self) -> [f64; NUM_FEATURES] {
        [
            self.log_range,
            self.dev_delta1,
            self.dev_delta2,
            self.dev_delta3,
            self.subrange_trend,
            self.subrange_divergence,
            self.repeat_fraction,
        ]
    }
}

/// Normalised deviation of a difference sequence:
/// `Σ|d_i − avg| / (n · (max − min))`, or 0 when the sequence is constant.
fn normalised_deviation(diffs: &[f64]) -> f64 {
    if diffs.is_empty() {
        return 0.0;
    }
    let n = diffs.len() as f64;
    let avg = diffs.iter().sum::<f64>() / n;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &d in diffs {
        min = min.min(d);
        max = max.max(d);
    }
    let spread = max - min;
    if spread <= f64::EPSILON {
        return 0.0;
    }
    diffs.iter().map(|&d| (d - avg).abs()).sum::<f64>() / (n * spread)
}

/// Extract the feature vector from a value sequence.
pub fn extract_features(values: &[u64]) -> Features {
    if values.is_empty() {
        return Features {
            log_range: 0.0,
            dev_delta1: 0.0,
            dev_delta2: 0.0,
            dev_delta3: 0.0,
            subrange_trend: 1.0,
            subrange_divergence: 0.0,
            repeat_fraction: 0.0,
        };
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    let log_range = ((max - min) as f64 + 1.0).log2();

    // Difference pyramid up to order 3 (as f64 offsets; precision is ample
    // for a classification feature).
    let mut level: Vec<f64> = values
        .iter()
        .map(|&v| (v.wrapping_sub(min)) as f64)
        .collect();
    let mut devs = [0.0f64; 3];
    let mut repeats = 0usize;
    for w in values.windows(2) {
        if w[0] == w[1] {
            repeats += 1;
        }
    }
    for (d, dev) in devs.iter_mut().enumerate() {
        if level.len() < 2 {
            break;
        }
        let diffs: Vec<f64> = level.windows(2).map(|w| w[1] - w[0]).collect();
        *dev = normalised_deviation(&diffs);
        level = diffs;
        let _ = d;
    }

    // Subrange trend / divergence.
    let mut ratios: Vec<f64> = Vec::new();
    let mut prev_range: Option<f64> = None;
    for chunk in values.chunks(SUBBLOCK) {
        let lo = *chunk.iter().min().expect("non-empty chunk") as f64;
        let hi = *chunk.iter().max().expect("non-empty chunk") as f64;
        let range = (hi - lo).max(1.0);
        if let Some(prev) = prev_range {
            ratios.push(range / prev);
        }
        prev_range = Some(range);
    }
    let (trend, divergence) = if ratios.is_empty() {
        (1.0, 0.0)
    } else {
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in &ratios {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        (avg, hi - lo)
    };

    Features {
        log_range,
        dev_delta1: devs[0],
        dev_delta2: devs[1],
        dev_delta3: devs[2],
        subrange_trend: trend,
        subrange_divergence: divergence,
        repeat_fraction: if values.len() > 1 {
            repeats as f64 / (values.len() - 1) as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_data_has_tiny_first_order_deviation() {
        let values: Vec<u64> = (0..2_000u64).map(|i| 17 + 3 * i).collect();
        let f = extract_features(&values);
        assert!(f.dev_delta1 < 1e-9, "dev1 {}", f.dev_delta1);
    }

    #[test]
    fn quadratic_data_has_small_second_order_deviation() {
        let values: Vec<u64> = (0..2_000u64).map(|i| i * i).collect();
        let f = extract_features(&values);
        assert!(f.dev_delta2 < 1e-9, "dev2 {}", f.dev_delta2);
        assert!(f.dev_delta1 > 0.01, "dev1 {}", f.dev_delta1);
    }

    #[test]
    fn constant_data_features() {
        let values = vec![5u64; 1_000];
        let f = extract_features(&values);
        assert_eq!(f.log_range, 0.0);
        assert_eq!(f.repeat_fraction, 1.0);
    }

    #[test]
    fn exponential_data_shows_growing_subranges() {
        let values: Vec<u64> = (0..1_000u64)
            .map(|i| (1.01f64.powi(i as i32) * 1_000.0) as u64)
            .collect();
        let f = extract_features(&values);
        assert!(f.subrange_trend > 1.2, "trend {}", f.subrange_trend);
    }

    #[test]
    fn random_data_has_large_deviation_everywhere() {
        let values: Vec<u64> = (0..2_000u64)
            .map(|i| (i * 2654435761) % 1_000_000)
            .collect();
        let f = extract_features(&values);
        assert!(f.dev_delta1 > 0.05);
        assert!(f.dev_delta2 > 0.05);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let f = extract_features(&[]);
        assert_eq!(f.log_range, 0.0);
        let f = extract_features(&[7]);
        assert_eq!(f.to_array().len(), NUM_FEATURES);
    }

    #[test]
    fn feature_array_matches_struct_order() {
        let values: Vec<u64> = (0..100u64).collect();
        let f = extract_features(&values);
        let arr = f.to_array();
        assert_eq!(arr[0], f.log_range);
        assert_eq!(arr[6], f.repeat_fraction);
    }
}
