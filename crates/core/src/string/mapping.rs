//! Order-preserving string ↔ integer mapping with character-set reduction.
//!
//! Many string columns only use a fraction of the byte alphabet (lower-case
//! letters, hex digits, ...).  Mapping each character to its rank within the
//! partition's character set and rounding the base up to a power of two makes
//! the mapped integers smaller *and* keeps digit extraction cheap: a modulo
//! becomes a mask and a division becomes a shift (§3.4).

/// Character table of one string partition.
#[derive(Debug, Clone)]
pub struct CharTable {
    /// Sorted distinct characters (rank → byte).
    charset: Vec<u8>,
    /// byte → rank (only meaningful for bytes present in `charset`).
    ranks: [u8; 256],
    /// Bits per character after rounding the base to a power of two.
    bits: u8,
    /// If `true`, characters are mapped by identity (8 bits each).
    full_byte: bool,
}

impl CharTable {
    /// Build the table from the partition's suffixes.  With
    /// `full_byte == true` the reduction step is skipped.
    pub fn build(suffixes: &[&[u8]], full_byte: bool) -> Self {
        if full_byte {
            let mut ranks = [0u8; 256];
            for (i, r) in ranks.iter_mut().enumerate() {
                *r = i as u8;
            }
            return Self {
                charset: (0..=255).collect(),
                ranks,
                bits: 8,
                full_byte: true,
            };
        }
        let mut present = [false; 256];
        for s in suffixes {
            for &b in *s {
                present[b as usize] = true;
            }
        }
        let charset: Vec<u8> = (0..=255u8).filter(|&b| present[b as usize]).collect();
        let mut ranks = [0u8; 256];
        for (rank, &b) in charset.iter().enumerate() {
            ranks[b as usize] = rank as u8;
        }
        let bits = if charset.is_empty() {
            0
        } else {
            leco_bitpack::bits_for((charset.len() - 1) as u64).max(1)
        };
        Self {
            charset,
            ranks,
            bits,
            full_byte: false,
        }
    }

    /// Bits per character (log2 of the rounded-up base).
    pub fn bits_per_char(&self) -> u8 {
        self.bits
    }

    /// Number of distinct characters (serialized table size).
    pub fn charset_len(&self) -> usize {
        if self.full_byte {
            0 // identity mapping needs no stored table
        } else {
            self.charset.len()
        }
    }

    /// The effective base `M = 2^bits`.
    pub fn base(&self) -> u64 {
        1u64 << self.bits
    }

    /// Map the first `width_chars` characters of `s` to a base-`M` integer,
    /// padding missing positions with the *smallest* character (rank 0).
    pub fn map_min(&self, s: &[u8], width_chars: usize) -> u128 {
        self.map_with_padding(s, width_chars, 0)
    }

    /// Like [`Self::map_min`] but padding with the *largest* digit `M − 1`.
    pub fn map_max(&self, s: &[u8], width_chars: usize) -> u128 {
        self.map_with_padding(s, width_chars, (1u32 << self.bits) - 1)
    }

    fn map_with_padding(&self, s: &[u8], width_chars: usize, pad_digit: u32) -> u128 {
        if self.bits == 0 || width_chars == 0 {
            return 0;
        }
        let mut acc: u128 = 0;
        for pos in 0..width_chars {
            let digit = if pos < s.len() {
                if self.full_byte {
                    s[pos] as u32
                } else {
                    self.ranks[s[pos] as usize] as u32
                }
            } else {
                pad_digit
            };
            acc = (acc << self.bits) | digit as u128;
        }
        acc
    }

    /// Decode the first `take` characters out of a mapped integer that was
    /// encoded with `total` digit positions, appending them to `out`.
    pub fn decode_digits(&self, mapped: u128, total: usize, take: usize, out: &mut Vec<u8>) {
        if self.bits == 0 {
            // Single-character (or empty) alphabet: the characters are all the
            // lone charset entry.
            if let Some(&c) = self.charset.first() {
                out.extend(std::iter::repeat_n(c, take));
            }
            return;
        }
        let mask: u128 = (1u128 << self.bits) - 1;
        for pos in 0..take {
            let shift = (total - 1 - pos) as u32 * self.bits as u32;
            let digit = ((mapped >> shift) & mask) as usize;
            let byte = if self.full_byte {
                digit as u8
            } else {
                self.charset[digit.min(self.charset.len() - 1)]
            };
            out.push(byte);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduced_charset_uses_fewer_bits() {
        let suffixes = [b"abc".as_slice(), b"cab".as_slice(), b"bca".as_slice()];
        let t = CharTable::build(&suffixes, false);
        assert_eq!(t.charset_len(), 3);
        assert_eq!(t.bits_per_char(), 2);
        assert_eq!(t.base(), 4);
    }

    #[test]
    fn lower_case_letters_use_five_bits() {
        let strings: Vec<Vec<u8>> = (b'a'..=b'z').map(|c| vec![c, c]).collect();
        let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
        let t = CharTable::build(&refs, false);
        assert_eq!(t.bits_per_char(), 5);
        assert_eq!(t.base(), 32);
    }

    #[test]
    fn mapping_is_order_preserving_for_equal_length() {
        let suffixes = [
            b"apple".as_slice(),
            b"bears".as_slice(),
            b"candy".as_slice(),
        ];
        let t = CharTable::build(&suffixes, false);
        let a = t.map_min(b"apple", 5);
        let b = t.map_min(b"bears", 5);
        let c = t.map_min(b"candy", 5);
        assert!(a < b && b < c);
    }

    #[test]
    fn min_and_max_padding_bracket_prefix_extensions() {
        let suffixes = [b"ab".as_slice(), b"abzzz".as_slice()];
        let t = CharTable::build(&suffixes, false);
        let lo = t.map_min(b"ab", 5);
        let hi = t.map_max(b"ab", 5);
        let extended = t.map_min(b"abzzz", 5);
        assert!(lo <= extended && extended <= hi);
    }

    #[test]
    fn decode_digits_round_trip() {
        let suffixes = [b"hello".as_slice(), b"world".as_slice()];
        let t = CharTable::build(&suffixes, false);
        let mapped = t.map_min(b"hello", 8);
        let mut out = Vec::new();
        t.decode_digits(mapped, 8, 5, &mut out);
        assert_eq!(out, b"hello");
    }

    #[test]
    fn full_byte_identity() {
        let t = CharTable::build(&[], true);
        assert_eq!(t.bits_per_char(), 8);
        let mapped = t.map_min(&[0xFF, 0x00, 0x7F], 3);
        let mut out = Vec::new();
        t.decode_digits(mapped, 3, 3, &mut out);
        assert_eq!(out, vec![0xFF, 0x00, 0x7F]);
    }

    #[test]
    fn single_character_alphabet() {
        let suffixes = [b"aaa".as_slice(), b"a".as_slice()];
        let t = CharTable::build(&suffixes, false);
        assert_eq!(t.bits_per_char(), 1);
        let mut out = Vec::new();
        t.decode_digits(t.map_min(b"aaa", 3), 3, 3, &mut out);
        assert_eq!(out, b"aaa");
    }

    proptest! {
        #[test]
        fn prop_map_decode_round_trip(s in proptest::collection::vec(any::<u8>(), 0..14)) {
            let refs = [s.as_slice()];
            let t = CharTable::build(&refs, false);
            let width = s.len().max(1);
            let mapped = t.map_min(&s, width);
            let mut out = Vec::new();
            t.decode_digits(mapped, width, s.len(), &mut out);
            prop_assert_eq!(out, s);
        }

        #[test]
        fn prop_order_preserved_same_charset(
            mut strings in proptest::collection::vec(proptest::collection::vec(b'a'..=b'f', 6), 2..20)
        ) {
            let refs: Vec<&[u8]> = strings.iter().map(|s| s.as_slice()).collect();
            let t = CharTable::build(&refs, false);
            let mapped: Vec<u128> = strings.iter().map(|s| t.map_min(s, 6)).collect();
            strings.sort();
            let mut sorted_mapped: Vec<u128> = mapped.clone();
            sorted_mapped.sort();
            let remapped: Vec<u128> = strings.iter().map(|s| t.map_min(s, 6)).collect();
            prop_assert_eq!(remapped, sorted_mapped);
        }
    }
}
