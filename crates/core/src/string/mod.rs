//! String extension (§3.4): LeCo for (mostly unique) string columns.
//!
//! Per partition the encoder:
//!
//! 1. extracts the common prefix and stores it once in the header,
//! 2. shrinks the character set of the remaining suffixes and rounds the base
//!    up to a power of two `M = 2^m`, so digit extraction is a shift + mask
//!    instead of a division/modulo,
//! 3. maps each suffix to an order-preserving base-`M` integer, padded to the
//!    partition's maximum suffix length, choosing the padding *adaptively*
//!    from the model prediction so that the stored delta is minimised, and
//! 4. fits a linear model over the mapped integers and stores bit-packed
//!    deltas, exactly like the integer pipeline.
//!
//! Mapped integers use up to [`MAX_MAPPED_BITS`] bits (u128 arithmetic);
//! suffix characters beyond that budget are stored verbatim in a per-value
//! tail so the scheme stays lossless for arbitrarily long strings.

pub mod mapping;

use crate::model::Model;
use crate::regressor::linear::fit_linear;
use leco_bitpack::{stream::read_bits, BitWriter};
use mapping::CharTable;

/// Maximum number of bits a mapped suffix integer may use.
pub const MAX_MAPPED_BITS: u32 = 120;

/// Configuration of the string compressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StringConfig {
    /// Values per partition.
    pub partition_len: usize,
    /// If `true`, skip character-set reduction and map raw bytes (8 bits per
    /// character).  This is the "large base" configuration of Figure 15;
    /// the default reduces the character set to the smallest power of two.
    pub full_byte_charset: bool,
}

impl Default for StringConfig {
    fn default() -> Self {
        Self {
            partition_len: 1024,
            full_byte_charset: false,
        }
    }
}

#[derive(Debug, Clone)]
struct StringPartition {
    start: usize,
    /// Common prefix shared by every string in the partition.
    prefix: Vec<u8>,
    /// Character table of the suffixes.
    chars: CharTable,
    /// Number of suffix characters folded into the mapped integer.
    mapped_chars: usize,
    /// Linear model over the mapped integers.
    model: Model,
    /// Exact minimum delta.
    bias: i128,
    /// Bits per stored delta (≤ 127, stored in two reads when > 64).
    width: u8,
    /// Bit offset of this partition's deltas.
    bit_offset: u64,
    /// Bit offset of this partition's suffix lengths.
    len_bit_offset: u64,
    /// Bits per stored suffix length.
    len_width: u8,
    /// Verbatim tails of strings whose suffix exceeded the mapped budget,
    /// concatenated; `tail_ranges[local]` indexes into it.
    tails: Vec<u8>,
    tail_ranges: Vec<(u32, u32)>,
}

/// A compressed string column.
#[derive(Debug, Clone)]
pub struct CompressedStrings {
    partitions: Vec<StringPartition>,
    /// Packed deltas of every partition.
    payload: Vec<u64>,
    payload_bits: usize,
    /// Packed suffix lengths of every partition.
    len_payload: Vec<u64>,
    len_payload_bits: usize,
    len: usize,
    partition_len: usize,
    raw_bytes: usize,
}

/// Write a value of up to 127 bits as two chunks.
fn write_wide(w: &mut BitWriter, value: u128, width: u8) {
    if width == 0 {
        return;
    }
    if width <= 64 {
        w.write(value as u64, width);
    } else {
        w.write(value as u64, 64);
        w.write((value >> 64) as u64, width - 64);
    }
}

/// Read a value of up to 127 bits written by [`write_wide`].
fn read_wide(words: &[u64], bit_pos: usize, width: u8) -> u128 {
    if width == 0 {
        return 0;
    }
    if width <= 64 {
        read_bits(words, bit_pos, width) as u128
    } else {
        let lo = read_bits(words, bit_pos, 64) as u128;
        let hi = read_bits(words, bit_pos + 64, width - 64) as u128;
        lo | (hi << 64)
    }
}

fn bits_for_u128(v: u128) -> u8 {
    (128 - v.leading_zeros()) as u8
}

/// Longest common prefix of a batch of strings.
fn common_prefix<'a>(strings: &[&'a [u8]]) -> &'a [u8] {
    let first = match strings.first() {
        Some(f) => *f,
        None => return &[],
    };
    let mut len = first.len();
    for s in &strings[1..] {
        len = len.min(s.len());
        while len > 0 && s[..len] != first[..len] {
            len -= 1;
        }
        if len == 0 {
            break;
        }
    }
    &first[..len]
}

impl CompressedStrings {
    /// Compress a string column.
    pub fn encode(strings: &[&[u8]], config: StringConfig) -> Self {
        let raw_bytes = strings.iter().map(|s| s.len()).sum::<usize>() + strings.len() * 4;
        let mut result = Self {
            partitions: Vec::new(),
            payload: Vec::new(),
            payload_bits: 0,
            len_payload: Vec::new(),
            len_payload_bits: 0,
            len: strings.len(),
            partition_len: config.partition_len.max(1),
            raw_bytes,
        };
        if strings.is_empty() {
            return result;
        }
        let mut delta_writer = BitWriter::new();
        let mut len_writer = BitWriter::new();
        let mut start = 0usize;
        while start < strings.len() {
            let len = result.partition_len.min(strings.len() - start);
            let slice = &strings[start..start + len];
            let part = encode_partition(slice, start, config, &mut delta_writer, &mut len_writer);
            result.partitions.push(part);
            start += len;
        }
        let (payload, payload_bits) = delta_writer.finish();
        let (len_payload, len_payload_bits) = len_writer.finish();
        result.payload = payload;
        result.payload_bits = payload_bits;
        result.len_payload = len_payload;
        result.len_payload_bits = len_payload_bits;
        result
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Compressed size in bytes: per-partition headers (prefix, character
    /// set, model, bias, widths), packed suffix lengths, packed deltas and
    /// verbatim tails.
    pub fn size_bytes(&self) -> usize {
        let headers: usize = self
            .partitions
            .iter()
            .map(|p| {
                2 + p.prefix.len()
                    + 1 + p.chars.charset_len()
                    + p.model.size_bytes()
                    + 7 // bias varint (typical) + width + len_width
                    + p.tails.len()
                    + p.tail_ranges.iter().filter(|r| r.1 > r.0).count() * 4
            })
            .sum();
        headers
            + leco_bitpack::div_ceil(self.payload_bits, 8)
            + leco_bitpack::div_ceil(self.len_payload_bits, 8)
    }

    /// Compression ratio against the raw strings plus a 4-byte offset each
    /// (the same accounting used for FSST in §4.7).
    pub fn compression_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 0.0;
        }
        self.size_bytes() as f64 / self.raw_bytes as f64
    }

    /// Random access: decode string `i`.
    pub fn get(&self, i: usize) -> Vec<u8> {
        assert!(i < self.len, "index {i} out of bounds");
        let p = &self.partitions[i / self.partition_len];
        let local = i - p.start;
        // Suffix length.
        let suffix_len = if p.len_width == 0 {
            0
        } else {
            read_bits(
                &self.len_payload,
                p.len_bit_offset as usize + local * p.len_width as usize,
                p.len_width,
            ) as usize
        };
        // Mapped integer = model prediction + bias + delta.
        let packed = read_wide(
            &self.payload,
            p.bit_offset as usize + local * p.width as usize,
            p.width,
        );
        let mapped = (p.model.predict_floor(local) + p.bias + packed as i128) as u128;
        let mapped_chars = suffix_len.min(p.mapped_chars);
        let mut out = Vec::with_capacity(p.prefix.len() + suffix_len);
        out.extend_from_slice(&p.prefix);
        p.chars
            .decode_digits(mapped, p.mapped_chars, mapped_chars, &mut out);
        // Tail characters beyond the mapped budget.
        let (t0, t1) = p.tail_ranges[local];
        out.extend_from_slice(&p.tails[t0 as usize..t1 as usize]);
        out
    }

    /// Decode every string.
    pub fn decode_all(&self) -> Vec<Vec<u8>> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// Encode one partition.
fn encode_partition(
    slice: &[&[u8]],
    start: usize,
    config: StringConfig,
    delta_writer: &mut BitWriter,
    len_writer: &mut BitWriter,
) -> StringPartition {
    let prefix = common_prefix(slice).to_vec();
    let suffixes: Vec<&[u8]> = slice.iter().map(|s| &s[prefix.len()..]).collect();
    let chars = CharTable::build(&suffixes, config.full_byte_charset);
    let bits_per_char = chars.bits_per_char();
    let max_suffix_len = suffixes.iter().map(|s| s.len()).max().unwrap_or(0);
    // Cap the number of characters folded into the mapped integer.
    let mapped_chars = if bits_per_char == 0 {
        0
    } else {
        max_suffix_len.min((MAX_MAPPED_BITS / bits_per_char as u32) as usize)
    };

    // Order-preserving mapped integers (minimum padding) used for fitting.
    let mins: Vec<u128> = suffixes
        .iter()
        .map(|s| chars.map_min(s, mapped_chars))
        .collect();
    let ys: Vec<f64> = {
        let base = mins[0];
        mins.iter()
            .map(|&m| {
                if m >= base {
                    (m - base) as f64
                } else {
                    -((base - m) as f64)
                }
            })
            .collect()
    };
    let model = fit_linear(&ys);

    // Adaptive padding: choose the padded integer closest to the prediction
    // within [map_min, map_max]; compute exact deltas against that choice.
    let mut deltas: Vec<i128> = Vec::with_capacity(slice.len());
    for (local, s) in suffixes.iter().enumerate() {
        let lo = chars.map_min(s, mapped_chars);
        let hi = chars.map_max(s, mapped_chars);
        let pred = model.predict_floor(local);
        let chosen: u128 = if pred <= 0 {
            lo
        } else {
            let pred_u = pred as u128;
            pred_u.clamp(lo, hi)
        };
        deltas.push(chosen as i128 - pred);
    }
    let bias = *deltas.iter().min().expect("non-empty partition");
    let spread = (*deltas.iter().max().expect("non-empty") - bias) as u128;
    let width = bits_for_u128(spread);

    let bit_offset = delta_writer.len_bits() as u64;
    for &d in &deltas {
        write_wide(delta_writer, (d - bias) as u128, width);
    }

    // Suffix lengths (capped at mapped budget for digit extraction; the full
    // length is implicit from the tail range).
    let len_width = leco_bitpack::bits_for(max_suffix_len.min(u32::MAX as usize) as u64);
    let len_bit_offset = len_writer.len_bits() as u64;
    for s in &suffixes {
        len_writer.write(s.len().min(mapped_chars) as u64, len_width);
    }

    // Tails for suffixes longer than the mapped budget.
    let mut tails = Vec::new();
    let mut tail_ranges = Vec::with_capacity(slice.len());
    for s in &suffixes {
        let t0 = tails.len() as u32;
        if s.len() > mapped_chars {
            tails.extend_from_slice(&s[mapped_chars..]);
        }
        tail_ranges.push((t0, tails.len() as u32));
    }

    StringPartition {
        start,
        prefix,
        chars,
        mapped_chars,
        model,
        bias,
        width,
        bit_offset,
        len_bit_offset,
        len_width,
        tails,
        tail_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn as_refs(strings: &[Vec<u8>]) -> Vec<&[u8]> {
        strings.iter().map(|s| s.as_slice()).collect()
    }

    fn emails(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| format!("com.mail@user{:06}", i * 13).into_bytes())
            .collect()
    }

    #[test]
    fn round_trip_emails() {
        let strings = emails(3_000);
        let c = CompressedStrings::encode(&as_refs(&strings), StringConfig::default());
        assert_eq!(c.decode_all(), strings);
        assert_eq!(c.get(1_234), strings[1_234]);
    }

    #[test]
    fn round_trip_full_byte_charset() {
        let strings = emails(500);
        let cfg = StringConfig {
            partition_len: 128,
            full_byte_charset: true,
        };
        let c = CompressedStrings::encode(&as_refs(&strings), cfg);
        assert_eq!(c.decode_all(), strings);
    }

    #[test]
    fn sorted_hex_strings_compress_well() {
        let strings: Vec<Vec<u8>> = (0..50_000u64)
            .map(|i| format!("{:08x}", i * 977).into_bytes())
            .collect();
        let c = CompressedStrings::encode(&as_refs(&strings), StringConfig::default());
        assert_eq!(c.get(49_999), strings[49_999]);
        assert!(
            c.compression_ratio() < 0.6,
            "ratio {} should show compression on sorted hex",
            c.compression_ratio()
        );
    }

    #[test]
    fn handles_empty_strings_and_varied_lengths() {
        let strings: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcdefghijklmnopqrstuvwxyz-very-long-string-beyond-the-mapped-budget".to_vec(),
            b"ab".to_vec(),
        ];
        let c = CompressedStrings::encode(
            &as_refs(&strings),
            StringConfig {
                partition_len: 4,
                full_byte_charset: false,
            },
        );
        assert_eq!(c.decode_all(), strings);
    }

    #[test]
    fn common_prefix_extraction() {
        let strings = [
            b"prefix_aaa".as_slice(),
            b"prefix_abc".as_slice(),
            b"prefix_b".as_slice(),
        ];
        assert_eq!(common_prefix(&strings), b"prefix_");
        let strings = [b"xyz".as_slice(), b"abc".as_slice()];
        assert_eq!(common_prefix(&strings), b"");
        assert_eq!(common_prefix(&[]), b"");
    }

    #[test]
    fn wide_write_read_round_trip() {
        let mut w = BitWriter::new();
        let values: Vec<(u128, u8)> = vec![
            (0, 1),
            ((1u128 << 100) - 3, 100),
            (u128::MAX >> 1, 127),
            (12345, 64),
            ((1u128 << 70) + 7, 71),
        ];
        for &(v, width) in &values {
            write_wide(&mut w, v, width);
        }
        let (words, _) = w.finish();
        let mut pos = 0usize;
        for &(v, width) in &values {
            assert_eq!(read_wide(&words, pos, width), v, "width {width}");
            pos += width as usize;
        }
    }

    #[test]
    fn empty_column() {
        let c = CompressedStrings::encode(&[], StringConfig::default());
        assert!(c.is_empty());
        assert_eq!(c.size_bytes() as u64, 0);
    }

    #[test]
    fn binary_strings_round_trip() {
        let strings: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i, 255 - i, 0, i / 2]).collect();
        let c = CompressedStrings::encode(
            &as_refs(&strings),
            StringConfig {
                partition_len: 64,
                full_byte_charset: false,
            },
        );
        assert_eq!(c.decode_all(), strings);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_round_trip(strings in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24), 1..80),
            full_byte in any::<bool>(),
            partition_len in 1usize..40)
        {
            let refs = as_refs(&strings);
            let c = CompressedStrings::encode(&refs, StringConfig { partition_len, full_byte_charset: full_byte });
            prop_assert_eq!(c.decode_all(), strings.clone());
            for (i, s) in strings.iter().enumerate() {
                prop_assert_eq!(&c.get(i), s);
            }
        }

        #[test]
        fn prop_ascii_round_trip(strings in proptest::collection::vec("[a-z]{0,20}", 1..60)) {
            let bytes: Vec<Vec<u8>> = strings.iter().map(|s| s.clone().into_bytes()).collect();
            let refs = as_refs(&bytes);
            let c = CompressedStrings::encode(&refs, StringConfig::default());
            prop_assert_eq!(c.decode_all(), bytes);
        }
    }
}
