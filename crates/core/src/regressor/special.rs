//! Exponential, logarithmic and sinusoidal regressors.
//!
//! These are the "more sophisticated models" of §3.1 and the domain-knowledge
//! extension of §4.4: the cosmos experiment shows that adding one or two sine
//! terms (optionally with known frequencies) to the model basis extracts far
//! more redundancy than a generic polynomial.

use crate::model::{Model, SineTerm};

/// Fit `pred(i) = exp(ln_a + b·i)` by linear regression on `ln(y − min + 1)`,
/// then re-centre residuals in the original domain.
///
/// Offsets may be negative (the fit works on offsets from the first value),
/// so the data is shifted to be positive before taking logs; the shift is
/// folded back into the residual centring step, which keeps the model family
/// intact while remaining lossless (any residual mis-fit simply lands in the
/// delta array).
pub fn fit_exponential(ys: &[f64]) -> Model {
    if ys.len() < 3 {
        return Model::Exponential { ln_a: 0.0, b: 0.0 };
    }
    let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let shift = if min <= 0.0 { 1.0 - min } else { 0.0 };
    let logs: Vec<f64> = ys.iter().map(|&y| (y + shift).ln()).collect();
    let lin = super::linear::fit_least_squares(&logs);
    let (ln_a, b) = match lin {
        Model::Linear { theta0, theta1 } => (theta0, theta1),
        _ => unreachable!(),
    };
    // Clamp the growth rate so predictions cannot overflow f64 within the
    // partition (b·n ≤ 700 keeps exp() finite).
    let b = b.clamp(-700.0 / ys.len() as f64, 700.0 / ys.len() as f64);
    Model::Exponential { ln_a, b }
}

/// Fit `pred(i) = θ0 + θ1·ln(i + 1)` by least squares on the transformed
/// positions, then centre the residuals (ℓ∞ flavour).
pub fn fit_logarithm(ys: &[f64]) -> Model {
    if ys.len() < 2 {
        return Model::Logarithm {
            theta0: ys.first().copied().unwrap_or(0.0),
            theta1: 0.0,
        };
    }
    let n = ys.len() as f64;
    let xs: Vec<f64> = (0..ys.len()).map(|i| ((i + 1) as f64).ln()).collect();
    let sum_x: f64 = xs.iter().sum();
    let sum_x2: f64 = xs.iter().map(|x| x * x).sum();
    let sum_y: f64 = ys.iter().sum();
    let sum_xy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let denom = n * sum_x2 - sum_x * sum_x;
    let theta1 = if denom.abs() < f64::EPSILON {
        0.0
    } else {
        (n * sum_xy - sum_x * sum_y) / denom
    };
    // Centre residuals.
    let mut rmin = f64::INFINITY;
    let mut rmax = f64::NEG_INFINITY;
    for (i, &y) in ys.iter().enumerate() {
        let r = y - theta1 * ((i + 1) as f64).ln();
        rmin = rmin.min(r);
        rmax = rmax.max(r);
    }
    Model::Logarithm {
        theta0: (rmin + rmax) / 2.0,
        theta1,
    }
}

/// Estimate up to `k` dominant angular frequencies with a coarse periodogram
/// scan over a grid of candidate periods (from 4 samples up to the partition
/// length).
pub fn estimate_frequencies(ys: &[f64], k: usize) -> Vec<f64> {
    let n = ys.len();
    if n < 8 || k == 0 {
        return Vec::new();
    }
    // Detrend first so the linear component does not swamp the spectrum.
    let lin = super::linear::fit_least_squares(ys);
    let resid: Vec<f64> = ys
        .iter()
        .enumerate()
        .map(|(i, &y)| y - lin.predict(i))
        .collect();
    // Candidate periods: geometric grid between 4 and 4n (frequencies below
    // one full cycle are indistinguishable from trend, but keep a margin).
    let mut candidates: Vec<f64> = Vec::new();
    let mut p = 4.0f64;
    while p <= (4 * n) as f64 {
        candidates.push(std::f64::consts::TAU / p);
        p *= 1.05;
    }
    let mut scored: Vec<(f64, f64)> = candidates
        .iter()
        .map(|&omega| {
            let mut s = 0.0;
            let mut c = 0.0;
            for (i, &r) in resid.iter().enumerate() {
                let phase = omega * i as f64;
                s += r * phase.sin();
                c += r * phase.cos();
            }
            (omega, s * s + c * c)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    // Pick the top-k frequencies that are not near-duplicates of an already
    // selected one.
    let mut out: Vec<f64> = Vec::new();
    for (omega, _) in scored {
        if out
            .iter()
            .all(|&o: &f64| (o - omega).abs() / o.max(omega) > 0.15)
        {
            out.push(omega);
            if out.len() == k {
                break;
            }
        }
    }
    out
}

/// Fit a linear trend plus sine terms at the given angular frequencies by
/// least squares (the model is linear in all coefficients once the
/// frequencies are fixed), then centre residuals.
pub fn fit_sine(ys: &[f64], omegas: &[f64]) -> Model {
    if omegas.is_empty() {
        let lin = super::linear::fit_linear(ys);
        if let Model::Linear { theta0, theta1 } = lin {
            return Model::Sine {
                theta0,
                theta1,
                terms: Vec::new(),
            };
        }
        unreachable!()
    }
    let dim = 2 + 2 * omegas.len();
    // Basis: [1, x, sin(ω1 x), cos(ω1 x), sin(ω2 x), cos(ω2 x), ...]
    let basis = |i: usize| -> Vec<f64> {
        let x = i as f64;
        let mut row = Vec::with_capacity(dim);
        row.push(1.0);
        row.push(x);
        for &omega in omegas {
            row.push((omega * x).sin());
            row.push((omega * x).cos());
        }
        row
    };
    let mut xtx = vec![0.0; dim * dim];
    let mut xty = vec![0.0; dim];
    for (i, &y) in ys.iter().enumerate() {
        let row = basis(i);
        for r in 0..dim {
            for c in 0..dim {
                xtx[r * dim + c] += row[r] * row[c];
            }
            xty[r] += row[r] * y;
        }
    }
    // Ridge regularisation keeps the system solvable when a frequency aliases.
    for r in 0..dim {
        xtx[r * dim + r] += 1e-9;
    }
    let coeffs = match solve(&mut xtx, &mut xty, dim) {
        Some(c) => c,
        None => {
            let lin = super::linear::fit_linear(ys);
            if let Model::Linear { theta0, theta1 } = lin {
                return Model::Sine {
                    theta0,
                    theta1,
                    terms: Vec::new(),
                };
            }
            unreachable!()
        }
    };
    let mut terms = Vec::with_capacity(omegas.len());
    for (t, &omega) in omegas.iter().enumerate() {
        terms.push(SineTerm {
            omega,
            a_sin: coeffs[2 + 2 * t],
            a_cos: coeffs[3 + 2 * t],
        });
    }
    let mut model = Model::Sine {
        theta0: coeffs[0],
        theta1: coeffs[1],
        terms,
    };
    // Residual centring on the constant term.
    let mut rmin = f64::INFINITY;
    let mut rmax = f64::NEG_INFINITY;
    for (i, &y) in ys.iter().enumerate() {
        let r = y - model.predict(i);
        rmin = rmin.min(r);
        rmax = rmax.max(r);
    }
    if let Model::Sine { ref mut theta0, .. } = model {
        *theta0 += (rmin + rmax) / 2.0;
    }
    model
}

/// Gaussian elimination used by [`fit_sine`] (same algorithm as the
/// polynomial fitter, duplicated locally to keep module dependencies flat).
fn solve(a: &mut [f64], b: &mut [f64], dim: usize) -> Option<Vec<f64>> {
    for col in 0..dim {
        let mut pivot = col;
        for row in (col + 1)..dim {
            if a[row * dim + col].abs() > a[pivot * dim + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * dim + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..dim {
                a.swap(col * dim + k, pivot * dim + k);
            }
            b.swap(col, pivot);
        }
        for row in (col + 1)..dim {
            let factor = a[row * dim + col] / a[col * dim + col];
            for k in col..dim {
                a[row * dim + k] -= factor * a[col * dim + k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; dim];
    for col in (0..dim).rev() {
        let mut acc = b[col];
        for k in (col + 1)..dim {
            acc -= a[col * dim + k] * x[k];
        }
        x[col] = acc / a[col * dim + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::linear::max_abs_error;

    #[test]
    fn exponential_fits_growth_curve() {
        let ys: Vec<f64> = (0..200).map(|i| (0.02 * i as f64).exp() * 50.0).collect();
        let m = fit_exponential(&ys);
        let err = max_abs_error(&m, &ys);
        let lin_err = max_abs_error(&crate::regressor::linear::fit_linear(&ys), &ys);
        assert!(err < lin_err, "exp err {err} should beat linear {lin_err}");
    }

    #[test]
    fn logarithm_fits_log_curve() {
        let ys: Vec<f64> = (0..500)
            .map(|i| 100.0 + 30.0 * ((i + 1) as f64).ln())
            .collect();
        let m = fit_logarithm(&ys);
        assert!(max_abs_error(&m, &ys) < 1e-6);
    }

    #[test]
    fn frequency_estimation_finds_dominant_period() {
        let period = 50.0;
        let omega_true = std::f64::consts::TAU / period;
        let ys: Vec<f64> = (0..2000)
            .map(|i| 1000.0 * (omega_true * i as f64).sin())
            .collect();
        let freqs = estimate_frequencies(&ys, 1);
        assert_eq!(freqs.len(), 1);
        assert!(
            (freqs[0] - omega_true).abs() / omega_true < 0.05,
            "estimated {} vs true {}",
            freqs[0],
            omega_true
        );
    }

    #[test]
    fn sine_with_known_frequency_fits_well() {
        let omega = std::f64::consts::TAU / 64.0;
        let ys: Vec<f64> = (0..1000)
            .map(|i| 5_000.0 + 2.0 * i as f64 + 300.0 * (omega * i as f64).sin())
            .collect();
        let m = fit_sine(&ys, &[omega]);
        let err = max_abs_error(&m, &ys);
        assert!(err < 5.0, "err {err}");
        // The same data under a pure linear model has error ~300.
        let lin_err = max_abs_error(&crate::regressor::linear::fit_linear(&ys), &ys);
        assert!(err < lin_err / 10.0);
    }

    #[test]
    fn two_sine_terms_beat_one_on_mixed_signal() {
        let o1 = std::f64::consts::TAU / 60.0;
        let o2 = std::f64::consts::TAU / 17.0;
        let ys: Vec<f64> = (0..3000)
            .map(|i| {
                let x = i as f64;
                1.0e6 * (o1 * x).sin() + 1.0e5 * (o2 * x).sin()
            })
            .collect();
        let one = max_abs_error(&fit_sine(&ys, &[o1]), &ys);
        let two = max_abs_error(&fit_sine(&ys, &[o1, o2]), &ys);
        assert!(two < one / 5.0, "two-term {two} vs one-term {one}");
    }

    #[test]
    fn sine_with_no_frequencies_degenerates_to_linear() {
        let ys: Vec<f64> = (0..100).map(|i| 2.0 * i as f64).collect();
        let m = fit_sine(&ys, &[]);
        assert!(max_abs_error(&m, &ys) < 1e-6);
    }

    #[test]
    fn small_inputs_do_not_panic() {
        assert!(matches!(fit_exponential(&[1.0]), Model::Exponential { .. }));
        assert!(matches!(fit_logarithm(&[]), Model::Logarithm { .. }));
        assert!(estimate_frequencies(&[1.0, 2.0], 2).is_empty());
    }
}
