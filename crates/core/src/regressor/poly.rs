//! Polynomial regressor (degree 2 and 3).
//!
//! The coefficients are obtained from the least-squares normal equations
//! (small dense system solved by Gaussian elimination with partial pivoting),
//! after which the constant term is re-centred so the positive and negative
//! residual extremes are balanced — a cheap approximation of the ℓ∞ optimum
//! that matches the paper's observation that higher-order fits only need to
//! be "good enough" because the delta array dominates.

use crate::model::Model;

/// Solve the linear system `A·x = b` in place (A is `dim × dim`, row major).
/// Returns `None` if the system is singular.
fn solve_linear_system(a: &mut [f64], b: &mut [f64], dim: usize) -> Option<Vec<f64>> {
    for col in 0..dim {
        // Partial pivoting.
        let mut pivot = col;
        for row in (col + 1)..dim {
            if a[row * dim + col].abs() > a[pivot * dim + col].abs() {
                pivot = row;
            }
        }
        if a[pivot * dim + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..dim {
                a.swap(col * dim + k, pivot * dim + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for row in (col + 1)..dim {
            let factor = a[row * dim + col] / a[col * dim + col];
            for k in col..dim {
                a[row * dim + k] -= factor * a[col * dim + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; dim];
    for col in (0..dim).rev() {
        let mut acc = b[col];
        for k in (col + 1)..dim {
            acc -= a[col * dim + k] * x[k];
        }
        x[col] = acc / a[col * dim + col];
    }
    Some(x)
}

/// Least-squares fit of a polynomial with the given `degree` (2 or 3),
/// followed by residual centring.  Positions are normalised to `[0, 1]`
/// before solving to keep the normal equations well conditioned; the
/// resulting coefficients are rescaled back to raw positions.
pub fn fit_poly(ys: &[f64], degree: usize) -> Model {
    let n = ys.len();
    let degree = degree.clamp(1, 3);
    if n <= degree {
        // Not enough points: fall back to the linear minimax fit padded with
        // zero high-order coefficients so the model family is preserved.
        let lin = super::linear::fit_linear(ys);
        if let Model::Linear { theta0, theta1 } = lin {
            let mut coeffs = vec![theta0, theta1];
            coeffs.resize(degree + 1, 0.0);
            return Model::Poly { coeffs };
        }
        unreachable!("fit_linear always returns a linear model");
    }
    let dim = degree + 1;
    let scale = (n - 1).max(1) as f64;
    // Normal equations on normalised x ∈ [0, 1].
    let mut xtx = vec![0.0; dim * dim];
    let mut xty = vec![0.0; dim];
    for (i, &y) in ys.iter().enumerate() {
        let x = i as f64 / scale;
        let mut pow = [1.0f64; 4];
        for d in 1..dim {
            pow[d] = pow[d - 1] * x;
        }
        for r in 0..dim {
            for c in 0..dim {
                xtx[r * dim + c] += pow[r] * pow[c];
            }
            xty[r] += pow[r] * y;
        }
    }
    let coeffs_norm = match solve_linear_system(&mut xtx, &mut xty, dim) {
        Some(c) => c,
        None => {
            let lin = super::linear::fit_linear(ys);
            if let Model::Linear { theta0, theta1 } = lin {
                let mut coeffs = vec![theta0, theta1];
                coeffs.resize(dim, 0.0);
                return Model::Poly { coeffs };
            }
            unreachable!()
        }
    };
    // Rescale: c_norm[k] * (i/scale)^k = (c_norm[k] / scale^k) * i^k.
    let mut coeffs: Vec<f64> = coeffs_norm
        .iter()
        .enumerate()
        .map(|(k, &c)| c / scale.powi(k as i32))
        .collect();
    // Residual centring: shift the constant term so max and min residuals are
    // balanced (halving the worst-case error versus a one-sided fit).
    let model = Model::Poly {
        coeffs: coeffs.clone(),
    };
    let mut rmin = f64::INFINITY;
    let mut rmax = f64::NEG_INFINITY;
    for (i, &y) in ys.iter().enumerate() {
        let r = y - model.predict(i);
        rmin = rmin.min(r);
        rmax = rmax.max(r);
    }
    coeffs[0] += (rmin + rmax) / 2.0;
    Model::Poly { coeffs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regressor::linear::max_abs_error;

    #[test]
    fn exact_quadratic_near_zero_error() {
        let ys: Vec<f64> = (0..500)
            .map(|i| {
                let x = i as f64;
                3.0 + 2.0 * x + 0.5 * x * x
            })
            .collect();
        let m = fit_poly(&ys, 2);
        assert!(
            max_abs_error(&m, &ys) < 1e-3,
            "err {}",
            max_abs_error(&m, &ys)
        );
    }

    #[test]
    fn exact_cubic_near_zero_error() {
        let ys: Vec<f64> = (0..300)
            .map(|i| {
                let x = i as f64;
                1.0 - x + 0.01 * x * x + 0.001 * x * x * x
            })
            .collect();
        let m = fit_poly(&ys, 3);
        let err = max_abs_error(&m, &ys);
        // Cubic values reach ~2.7e4; relative error should be tiny.
        assert!(err < 1.0, "err {err}");
    }

    #[test]
    fn poly_beats_linear_on_quadratic_data() {
        let ys: Vec<f64> = (0..200).map(|i| (i * i) as f64).collect();
        let poly_err = max_abs_error(&fit_poly(&ys, 2), &ys);
        let lin_err = max_abs_error(&crate::regressor::linear::fit_linear(&ys), &ys);
        assert!(
            poly_err < lin_err / 10.0,
            "poly {poly_err} vs linear {lin_err}"
        );
    }

    #[test]
    fn degenerate_small_inputs() {
        let m = fit_poly(&[5.0], 3);
        assert!(matches!(m, Model::Poly { ref coeffs } if coeffs.len() == 4));
        let m = fit_poly(&[5.0, 6.0, 7.0], 3);
        assert!(max_abs_error(&m, &[5.0, 6.0, 7.0]) < 1e-6);
    }

    #[test]
    fn solver_detects_singularity() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear_system(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn solver_solves_known_system() {
        // 2x + y = 5, x - y = 1  ->  x = 2, y = 1
        let mut a = vec![2.0, 1.0, 1.0, -1.0];
        let mut b = vec![5.0, 1.0];
        let x = solve_linear_system(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn residual_centring_balances_errors() {
        let ys: Vec<f64> = (0..100)
            .map(|i| (i * i) as f64 + if i % 2 == 0 { 10.0 } else { 0.0 })
            .collect();
        let m = fit_poly(&ys, 2);
        let (mut rmin, mut rmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, &y) in ys.iter().enumerate() {
            let r = y - m.predict(i);
            rmin = rmin.min(r);
            rmax = rmax.max(r);
        }
        assert!(
            (rmin + rmax).abs() < 1e-6,
            "residuals should be centred: {rmin} {rmax}"
        );
    }
}
