//! The Regressor module (§3.1): fit one model to one partition.
//!
//! Unlike classic least-squares regression, LeCo minimises the *maximum*
//! absolute error because the delta array is bit-packed at a fixed width
//! `φ = ⌈log2(δ_maxabs)⌉`: only the largest delta matters for space.
//!
//! Numerical strategy: every fit works on *offsets from the first value of
//! the partition* converted to `f64`.  The first value itself (which may use
//! the full 64-bit range) is folded into the partition's exact integer `bias`
//! by the encoder, so `f64` rounding never affects losslessness and rarely
//! affects the delta width.

pub mod cost;
pub mod linear;
pub mod poly;
pub mod special;

pub use cost::{CostModel, FitCache};

use crate::model::{Model, RegressorKind};

/// Extra information a caller can provide to a fit, currently only the known
/// sine frequencies of the paper's `2sin-freq` configuration (§4.4).
#[derive(Debug, Clone, Default)]
pub struct FitContext {
    /// Angular frequencies (radians/position) to use for `Sine` models with
    /// `estimate_freq == false`.
    pub known_frequencies: Vec<f64>,
}

/// Result of evaluating a fitted model against the partition it was fit on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Minimum signed delta `v_i - floor(pred(i))`; packed deltas are stored
    /// relative to this bias.
    pub bias: i128,
    /// Bits required per packed delta.
    pub width: u8,
}

/// Convert a value slice into f64 offsets from the first element.
pub(crate) fn offsets_f64(values: &[u64]) -> Vec<f64> {
    let base = values[0];
    values
        .iter()
        .map(|&v| {
            if v >= base {
                (v - base) as f64
            } else {
                -((base - v) as f64)
            }
        })
        .collect()
}

/// Fit a model of family `kind` to `values` (the offsets-from-first
/// convention described in the module docs).
///
/// `RegressorKind::Auto` is resolved by the Hyper-parameter Advisor before
/// this function is called; passing it here falls back to `Linear`.
pub fn fit(kind: RegressorKind, values: &[u64]) -> Model {
    fit_with_context(kind, values, &FitContext::default())
}

/// [`fit`] with caller-provided context (known sine frequencies).
pub fn fit_with_context(kind: RegressorKind, values: &[u64], ctx: &FitContext) -> Model {
    assert!(!values.is_empty(), "cannot fit an empty partition");
    let ys = offsets_f64(values);
    match kind {
        RegressorKind::Constant => linear::fit_constant(&ys),
        RegressorKind::Linear | RegressorKind::Auto => linear::fit_linear(&ys),
        RegressorKind::Poly2 => poly::fit_poly(&ys, 2),
        RegressorKind::Poly3 => poly::fit_poly(&ys, 3),
        RegressorKind::Exponential => special::fit_exponential(&ys),
        RegressorKind::Logarithm => special::fit_logarithm(&ys),
        RegressorKind::Sine {
            terms,
            estimate_freq,
        } => {
            let freqs = if estimate_freq || ctx.known_frequencies.is_empty() {
                special::estimate_frequencies(&ys, terms as usize)
            } else {
                ctx.known_frequencies
                    .iter()
                    .copied()
                    .take(terms as usize)
                    .collect()
            };
            special::fit_sine(&ys, &freqs)
        }
    }
}

/// Compute the delta statistics of `model` against `values`.
///
/// Deltas are `v_i - floor(pred(i))` computed in exact 128-bit arithmetic.
/// The returned `width` is the number of bits needed for
/// `max_delta - min_delta`; if that range exceeds 64 bits (which can only
/// happen when a badly diverging model meets values spanning the full u64
/// domain) the caller is expected to fall back to a constant model, which is
/// always representable.
pub fn delta_stats(model: &Model, values: &[u64]) -> Option<DeltaStats> {
    let mut min_d = i128::MAX;
    let mut max_d = i128::MIN;
    for (i, &v) in values.iter().enumerate() {
        let d = v as i128 - model.predict_floor(i);
        min_d = min_d.min(d);
        max_d = max_d.max(d);
    }
    let range = (max_d - min_d) as u128;
    if range > u64::MAX as u128 {
        return None;
    }
    Some(DeltaStats {
        bias: min_d,
        width: leco_bitpack::bits_for(range as u64),
    })
}

/// Fit `kind`, falling back to a constant model whenever the resulting delta
/// range would not fit in 64 bits.  Returns the model together with its delta
/// statistics.
pub fn fit_checked(kind: RegressorKind, values: &[u64], ctx: &FitContext) -> (Model, DeltaStats) {
    let model = fit_with_context(kind, values, ctx);
    if let Some(stats) = delta_stats(&model, values) {
        return (model, stats);
    }
    let fallback = linear::fit_constant(&offsets_f64(values));
    let stats = delta_stats(&fallback, values)
        .expect("constant model always yields a representable delta range");
    (fallback, stats)
}

/// Exact compressed size in bits of a partition under `model`: the
/// serialized metadata record — length varint, model parameters, bias
/// zigzag varint, width byte, and the θ₁-accumulation **correction list**
/// (count + delta-coded positions, when present) — plus `n` packed deltas.
///
/// This is the objective of §3 that the partitioners minimise, and it
/// matches `format::serialized_size` byte for byte: summing it over a
/// column's partitions and adding the file header and payload padding
/// reproduces `CompressedColumn::size_bytes() · 8` exactly.  The previous
/// cost model charged only `model + 7 bytes + n·width`, ignoring the
/// correction list entirely — which let the variable-length partitioner
/// grow partitions whose correction lists dwarfed their payload.
pub fn partition_cost_bits_exact(model: &Model, n: usize, stats: &DeltaStats) -> usize {
    let meta_bytes = crate::format::varint_len(n as u128)
        + model.size_bytes()
        + crate::format::varint_len(crate::format::zigzag_i128(stats.bias))
        + 1 // width byte
        + model.correction_cost_bytes(n);
    meta_bytes * 8 + n * stats.width as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_handle_decreasing_start() {
        let values = [100u64, 50, 150];
        let ys = offsets_f64(&values);
        assert_eq!(ys, vec![0.0, -50.0, 50.0]);
    }

    #[test]
    fn fit_linear_on_clean_line_has_zero_width() {
        let values: Vec<u64> = (0..1000u64).map(|i| 5 + 3 * i).collect();
        let (model, stats) = fit_checked(RegressorKind::Linear, &values, &FitContext::default());
        assert!(matches!(model, Model::Linear { .. }));
        assert!(
            stats.width <= 1,
            "width {} should be ~0 on a clean line",
            stats.width
        );
    }

    #[test]
    fn constant_fallback_on_extreme_range() {
        // Values spanning the full u64 range with a linear model that will
        // diverge: fit_checked must still return something representable.
        let values = vec![0u64, u64::MAX, 0, u64::MAX];
        let (_, stats) = fit_checked(RegressorKind::Linear, &values, &FitContext::default());
        assert!(stats.width <= 64);
    }

    #[test]
    fn delta_stats_exactness() {
        let model = Model::Linear {
            theta0: 0.0,
            theta1: 1.0,
        };
        let values = vec![10u64, 12, 13, 13]; // preds 0,1,2,3 -> deltas 10,11,11,10
        let stats = delta_stats(&model, &values).unwrap();
        assert_eq!(stats.bias, 10);
        assert_eq!(stats.width, 1);
    }

    #[test]
    fn cost_increases_with_width_and_len() {
        let m = Model::Linear {
            theta0: 0.0,
            theta1: 0.0,
        };
        let stats = |width| DeltaStats { bias: 0, width };
        assert!(
            partition_cost_bits_exact(&m, 100, &stats(4))
                < partition_cost_bits_exact(&m, 100, &stats(8))
        );
        assert!(
            partition_cost_bits_exact(&m, 100, &stats(4))
                < partition_cost_bits_exact(&m, 200, &stats(4))
        );
    }

    #[test]
    fn exact_cost_charges_the_correction_list() {
        // A model in the i128 fallback regime: corrections are stored, so
        // the exact cost must exceed the correction-free accounting.
        let m = Model::Linear {
            theta0: 4.2e18,
            theta1: 0.37,
        };
        let n = 10_000;
        assert!(m.needs_corrections(n));
        let corr_bytes = m.correction_cost_bytes(n);
        assert!(corr_bytes > 0, "drift must occur over 10k accumulations");
        let stats = DeltaStats { bias: 0, width: 3 };
        let without = crate::format::varint_len(n as u128) + m.size_bytes() + 1 + 1;
        assert_eq!(
            partition_cost_bits_exact(&m, n, &stats),
            (without + corr_bytes) * 8 + n * 3
        );
        // And in the common direct-evaluation regime the list costs nothing.
        let fast = Model::Linear {
            theta0: 0.0,
            theta1: 0.37,
        };
        assert!(!fast.needs_corrections(n));
        assert_eq!(fast.correction_cost_bytes(n), 0);
    }

    #[test]
    fn fit_dispatch_every_kind_is_lossless_representable() {
        let values: Vec<u64> = (0..500u64).map(|i| 1000 + i * i / 7 + (i % 5)).collect();
        for kind in [
            RegressorKind::Constant,
            RegressorKind::Linear,
            RegressorKind::Poly2,
            RegressorKind::Poly3,
            RegressorKind::Exponential,
            RegressorKind::Logarithm,
            RegressorKind::Sine {
                terms: 1,
                estimate_freq: true,
            },
        ] {
            let (model, stats) = fit_checked(kind, &values, &FitContext::default());
            // Reconstruct and verify losslessness of the model+delta scheme.
            for (i, &v) in values.iter().enumerate() {
                let d = v as i128 - model.predict_floor(i);
                let packed = (d - stats.bias) as u128;
                assert!(packed <= u64::MAX as u128, "kind {kind:?}");
                let recovered = model.predict_floor(i) + stats.bias + packed as i128;
                assert_eq!(recovered as u64, v, "kind {kind:?} at {i}");
            }
        }
    }
}
