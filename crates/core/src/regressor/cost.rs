//! The partitioners' cost oracle: exact, correction-aware partition costs
//! with memoised fits.
//!
//! Two layers, both keyed on half-open index ranges `[lo, hi)` of one shared
//! column:
//!
//! * [`FitCache`] — prefix sums (Σy, Σxy exact in `i128`, Σy² in `f64`, all
//!   relative to the column's first value; Σx and Σx² have closed forms) so
//!   a least-squares linear fit and its RMS residual over any span is O(1).
//!   The partitioner uses these as *estimates* to rank candidate boundaries
//!   before spending an exact evaluation, never as the final price.
//! * [`CostModel`] — the exact oracle: fits the configured regressor with
//!   [`fit_checked`] (the same call the encoder makes),
//!   evaluates the delta statistics, and charges the full serialized
//!   per-partition record via
//!   [`partition_cost_bits_exact`] —
//!   including the θ₁-accumulation correction list.  Results are memoised
//!   per span, so the split–merge phases and the DP partitioner never fit
//!   the same range twice.

use std::collections::HashMap;

use super::{fit_checked, partition_cost_bits_exact, FitContext};
use crate::model::RegressorKind;

/// Spread ≈ `RMS_SPREAD_FACTOR · rms` when turning an O(1) RMS residual
/// estimate into a bit-width estimate.  Residuals of a least-squares fit on
/// serially correlated data are closer to a random walk than to white noise,
/// so the max-to-RMS ratio is wide; 6 keeps the ranking honest on both.
const RMS_SPREAD_FACTOR: f64 = 6.0;

/// Prefix-sum regression cache: O(1) least-squares linear fits and residual
/// bounds over any `[lo, hi)` span of one column.
///
/// All data-dependent sums are taken over `d_j = y_j − y_0` (the column's
/// first value), which keeps the `i128` accumulators spread-scaled on
/// real columns and the `f64` Σd² cancellation-safe.  The x sums need no
/// storage: `Σx` and `Σx²` over a window are closed forms.
#[derive(Debug, Clone)]
pub struct FitCache {
    /// `sd[k] = Σ_{j<k} d_j` (exact).
    sd: Vec<i128>,
    /// `sxd[k] = Σ_{j<k} j·d_j` (exact).
    sxd: Vec<i128>,
    /// `sdd[k] = Σ_{j<k} d_j²` (f64; estimate-grade).
    sdd: Vec<f64>,
}

/// `y − base` as a signed 128-bit offset.
#[inline]
fn offset(v: u64, base: u64) -> i128 {
    v as i128 - base as i128
}

impl FitCache {
    /// Build the prefix sums for `values` (one pass).
    pub fn new(values: &[u64]) -> Self {
        let base = values.first().copied().unwrap_or(0);
        let mut sd = Vec::with_capacity(values.len() + 1);
        let mut sxd = Vec::with_capacity(values.len() + 1);
        let mut sdd = Vec::with_capacity(values.len() + 1);
        let (mut a, mut b, mut c) = (0i128, 0i128, 0f64);
        sd.push(a);
        sxd.push(b);
        sdd.push(c);
        for (j, &v) in values.iter().enumerate() {
            let d = offset(v, base);
            a += d;
            b += j as i128 * d;
            c += (d as f64) * (d as f64);
            sd.push(a);
            sxd.push(b);
            sdd.push(c);
        }
        Self { sd, sxd, sdd }
    }

    /// Number of values covered by the cache.
    pub fn len(&self) -> usize {
        self.sd.len() - 1
    }

    /// True when the cache covers no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Least-squares linear fit over `[lo, hi)` in the partition-local
    /// convention (x = 0 at `lo`, y relative to the span's first value):
    /// returns `(theta0, theta1)`.  O(1).
    pub fn ls_fit(&self, lo: usize, hi: usize) -> (f64, f64) {
        assert!(lo < hi && hi <= self.len(), "invalid span {lo}..{hi}");
        let n = (hi - lo) as i128;
        if n == 1 {
            return (0.0, 0.0);
        }
        // Centre at (lo, d_lo): exact i128 window sums of the local offsets.
        let d_lo = self.sd[lo + 1] - self.sd[lo];
        let sy = self.sd[hi] - self.sd[lo] - n * d_lo;
        let sx = n * (n - 1) / 2;
        let sxy =
            self.sxd[hi] - self.sxd[lo] - lo as i128 * (self.sd[hi] - self.sd[lo]) - d_lo * sx;
        let sxx = n * (n - 1) * (2 * n - 1) / 6;
        // Combine in f64: the centred sums are spread-scaled, so the usual
        // normal-equation cancellation is benign here.
        let (nf, sxf, syf, sxyf, sxxf) = (n as f64, sx as f64, sy as f64, sxy as f64, sxx as f64);
        let denom = nf * sxxf - sxf * sxf;
        if denom <= 0.0 {
            return (syf / nf, 0.0);
        }
        let theta1 = (nf * sxyf - sxf * syf) / denom;
        let theta0 = (syf - theta1 * sxf) / nf;
        (theta0, theta1)
    }

    /// RMS residual of the O(1) least-squares fit over `[lo, hi)`.
    pub fn residual_rms(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo < hi && hi <= self.len(), "invalid span {lo}..{hi}");
        let n = (hi - lo) as f64;
        if n <= 2.0 {
            return 0.0;
        }
        let d_lo = (self.sd[lo + 1] - self.sd[lo]) as f64;
        // Centred second moments at (lo, d_lo); Σd² needs re-centring from
        // the global base, which stays accurate because d is spread-scaled.
        let sy = (self.sd[hi] - self.sd[lo]) as f64 - n * d_lo;
        let sdd_w = self.sdd[hi] - self.sdd[lo];
        let sd_w = (self.sd[hi] - self.sd[lo]) as f64;
        let syy = sdd_w - 2.0 * d_lo * sd_w + n * d_lo * d_lo;
        let sx = n * (n - 1.0) / 2.0;
        let sxx = n * (n - 1.0) * (2.0 * n - 1.0) / 6.0;
        let sxy = (self.sxd[hi] - self.sxd[lo]) as f64
            - (lo as f64) * (self.sd[hi] - self.sd[lo]) as f64
            - d_lo * sx;
        let cxx = sxx - sx * sx / n;
        let cxy = sxy - sx * sy / n;
        let cyy = syy - sy * sy / n;
        let sse = if cxx > 0.0 {
            cyy - cxy * cxy / cxx
        } else {
            cyy
        };
        (sse.max(0.0) / n).sqrt()
    }

    /// O(1) cost *estimate* in bits for encoding `[lo, hi)` as one linear
    /// partition: fixed header guess plus `n` deltas at a width derived from
    /// the RMS residual.  Only good enough to rank candidate boundaries —
    /// exact decisions go through [`CostModel::exact_bits`].
    pub fn estimate_cost_bits(&self, lo: usize, hi: usize) -> usize {
        let n = hi - lo;
        let spread = (RMS_SPREAD_FACTOR * self.residual_rms(lo, hi)).min(u64::MAX as f64);
        let width = leco_bitpack::bits_for(spread as u64) as usize;
        // Nominal linear-partition header: len + model + bias + width bytes.
        let header_bytes = crate::format::varint_len(n as u128) + 17 + 6 + 1;
        header_bytes * 8 + n * width
    }
}

/// The exact, memoised partition-cost oracle shared by the split–merge
/// phases and the DP partitioner.
///
/// `exact_bits(lo, hi)` prices the span with the same fit the encoder will
/// use ([`fit_checked`]) and the same byte accounting the serializer will
/// produce ([`partition_cost_bits_exact`]), so minimising this oracle
/// minimises real output bytes.  The [`FitCache`] provides O(1) estimates
/// for candidate ranking when the regressor family is linear.
pub struct CostModel<'a> {
    values: &'a [u64],
    kind: RegressorKind,
    ctx: FitContext,
    cache: Option<FitCache>,
    memo: HashMap<(u32, u32), usize>,
}

/// Spans shorter than this are cheaper to fit directly than to memoise.
const MEMO_MIN_LEN: usize = 8;

impl<'a> CostModel<'a> {
    /// Build an oracle for `values` under `kind`.  The prefix-sum cache is
    /// only built for linear-family regressors (it prices a straight line).
    pub fn new(values: &'a [u64], kind: RegressorKind) -> Self {
        let cache = matches!(kind, RegressorKind::Linear | RegressorKind::Auto)
            .then(|| FitCache::new(values));
        Self {
            values,
            kind,
            ctx: FitContext::default(),
            cache,
            memo: HashMap::new(),
        }
    }

    /// The column this oracle prices.
    pub fn values(&self) -> &'a [u64] {
        self.values
    }

    /// True when O(1) estimates are available ([`Self::estimate_bits`]).
    pub fn has_estimates(&self) -> bool {
        self.cache.is_some()
    }

    /// O(1) ranking estimate for `[lo, hi)`; falls back to the exact cost
    /// when no cache is available (non-linear regressors).
    pub fn estimate_bits(&mut self, lo: usize, hi: usize) -> usize {
        match &self.cache {
            Some(cache) => cache.estimate_cost_bits(lo, hi),
            None => self.exact_bits(lo, hi),
        }
    }

    /// Exact serialized cost in bits of `[lo, hi)` as one partition:
    /// memoised `fit_checked` + delta stats + full record accounting
    /// (model, bias, width, correction list, packed deltas).
    pub fn exact_bits(&mut self, lo: usize, hi: usize) -> usize {
        if hi - lo >= MEMO_MIN_LEN {
            if let Some(&bits) = self.memo.get(&(lo as u32, hi as u32)) {
                return bits;
            }
        }
        let bits = self.exact_bits_uncached(lo, hi);
        if hi - lo >= MEMO_MIN_LEN {
            self.memo.insert((lo as u32, hi as u32), bits);
        }
        bits
    }

    /// [`Self::exact_bits`] without consulting or filling the memo — for
    /// callers like the DP partitioner that never price a span twice and
    /// would only bloat the map (O(n²) distinct spans).
    pub fn exact_bits_uncached(&self, lo: usize, hi: usize) -> usize {
        assert!(
            lo < hi && hi <= self.values.len(),
            "invalid span {lo}..{hi}"
        );
        // One `core.fit_ns` sample per exact hull fit: the dominant unit of
        // encode-path work, and the denominator for the phase histograms.
        let (model, stats) = leco_obs::histogram!("core.fit_ns")
            .time(|| fit_checked(self.kind, &self.values[lo..hi], &self.ctx));
        partition_cost_bits_exact(&model, hi - lo, &stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::exact_cost_bits;
    use crate::regressor::linear::{fit_least_squares, max_abs_error};

    fn jittery(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| 1_000_000 + 37 * i + (i * 2654435761) % 97)
            .collect()
    }

    #[test]
    fn ls_fit_matches_direct_least_squares() {
        let values = jittery(4_000);
        let cache = FitCache::new(&values);
        for (lo, hi) in [(0usize, 4_000usize), (13, 700), (2_000, 2_100), (5, 7)] {
            let ys = crate::regressor::offsets_f64(&values[lo..hi]);
            let direct = fit_least_squares(&ys);
            let (t0, t1) = cache.ls_fit(lo, hi);
            let crate::model::Model::Linear { theta1: dt1, .. } = direct else {
                panic!("least squares returns linear");
            };
            assert!(
                (t1 - dt1).abs() <= 1e-6 * (1.0 + dt1.abs()),
                "span {lo}..{hi}: cached slope {t1} vs direct {dt1}"
            );
            // The cached fit must be a usable model: its max error should be
            // within a small factor of the direct LS fit's.
            let cached = crate::model::Model::Linear {
                theta0: t0,
                theta1: t1,
            };
            let e_cached = max_abs_error(&cached, &ys);
            let e_direct = max_abs_error(&direct, &ys);
            assert!(
                e_cached <= 2.0 * e_direct + 1e-6,
                "span {lo}..{hi}: {e_cached} vs {e_direct}"
            );
        }
    }

    #[test]
    fn residual_rms_tracks_noise_scale() {
        let clean: Vec<u64> = (0..2_000u64).map(|i| 50 + 3 * i).collect();
        let noisy = jittery(2_000);
        let c_clean = FitCache::new(&clean);
        let c_noisy = FitCache::new(&noisy);
        assert!(c_clean.residual_rms(0, 2_000) < 1e-6);
        let rms = c_noisy.residual_rms(0, 2_000);
        assert!(
            (5.0..97.0).contains(&rms),
            "noise ±48 should give rms ~28, got {rms}"
        );
    }

    #[test]
    fn estimates_rank_spans_like_exact_costs() {
        // A slope change at 1000: spans straddling it must rank costlier
        // than clean spans of the same length.
        let values: Vec<u64> = (0..2_000u64)
            .map(|i| {
                if i < 1_000 {
                    3 * i
                } else {
                    3_000 + 40 * (i - 1_000)
                }
            })
            .collect();
        let cache = FitCache::new(&values);
        let clean = cache.estimate_cost_bits(0, 800);
        let straddling = cache.estimate_cost_bits(600, 1_400);
        assert!(
            straddling > clean,
            "straddling {straddling} vs clean {clean}"
        );
    }

    #[test]
    fn exact_bits_matches_free_function_and_memoises() {
        let values = jittery(600);
        let mut oracle = CostModel::new(&values, RegressorKind::Linear);
        for (lo, hi) in [(0usize, 600usize), (100, 400), (0, 600)] {
            assert_eq!(
                oracle.exact_bits(lo, hi),
                exact_cost_bits(&values[lo..hi], RegressorKind::Linear),
                "span {lo}..{hi}"
            );
        }
        assert!(oracle.has_estimates());
        assert_eq!(oracle.memo.len(), 2, "repeat span served from the memo");
    }

    #[test]
    fn cache_handles_decreasing_and_extreme_values() {
        let values = vec![u64::MAX, u64::MAX - 10, u64::MAX - 17, 5, 0, 3];
        let cache = FitCache::new(&values);
        let (t0, t1) = cache.ls_fit(0, 3);
        assert!(t0.is_finite() && t1.is_finite() && t1 < 0.0);
        assert!(cache.residual_rms(0, values.len()).is_finite());
    }
}
