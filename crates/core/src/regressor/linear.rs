//! Constant and linear regressors with minimax (ℓ∞) objectives.
//!
//! The paper formulates the fit as a linear program minimising the bit width
//! `φ` of the largest absolute error (§3.1).  For the constant and linear
//! families we solve the ℓ∞ problem directly:
//!
//! * constant: the optimum is the midpoint of `[min, max]`;
//! * linear: the width `w(b) = max_i(y_i − b·i) − min_i(y_i − b·i)` is a
//!   convex piecewise-linear function of the slope `b`, so a ternary search
//!   over the slope (bounded by the extreme consecutive differences) converges
//!   to the optimal slope; the optimal intercept is then the midpoint of the
//!   residual range.  This is equivalent to the LP solution up to floating
//!   point and runs in `O(n log(1/ε))`.

use crate::model::Model;

/// Fit a constant (horizontal line) model: the ℓ∞-optimal constant is the
/// midpoint of the value range.
pub fn fit_constant(ys: &[f64]) -> Model {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &y in ys {
        lo = lo.min(y);
        hi = hi.max(y);
    }
    Model::Constant {
        value: (lo + hi) / 2.0,
    }
}

/// Residual extremes of `y − b·x` for a candidate slope.
#[inline]
fn residual_range(ys: &[f64], b: f64) -> (f64, f64) {
    let mut rmin = f64::INFINITY;
    let mut rmax = f64::NEG_INFINITY;
    for (i, &y) in ys.iter().enumerate() {
        let r = y - b * i as f64;
        rmin = rmin.min(r);
        rmax = rmax.max(r);
    }
    (rmin, rmax)
}

/// Fit a linear model minimising the maximum absolute error.
pub fn fit_linear(ys: &[f64]) -> Model {
    let n = ys.len();
    if n <= 1 {
        return Model::Linear {
            theta0: ys.first().copied().unwrap_or(0.0),
            theta1: 0.0,
        };
    }
    if n == 2 {
        return Model::Linear {
            theta0: ys[0],
            theta1: ys[1] - ys[0],
        };
    }
    // The ℓ∞-optimal slope lies within the range of consecutive differences.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for w in ys.windows(2) {
        let d = w[1] - w[0];
        lo = lo.min(d);
        hi = hi.max(d);
    }
    if !(lo.is_finite() && hi.is_finite()) {
        return fit_least_squares(ys);
    }
    if hi - lo < f64::EPSILON * (1.0 + hi.abs()) {
        // Perfectly linear.
        let (rmin, rmax) = residual_range(ys, lo);
        return Model::Linear {
            theta0: (rmin + rmax) / 2.0,
            theta1: lo,
        };
    }
    // Ternary search on the convex width function.
    let width = |b: f64| {
        let (rmin, rmax) = residual_range(ys, b);
        rmax - rmin
    };
    for _ in 0..64 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if width(m1) <= width(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
        if hi - lo <= 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    let b = (lo + hi) / 2.0;
    let (rmin, rmax) = residual_range(ys, b);
    Model::Linear {
        theta0: (rmin + rmax) / 2.0,
        theta1: b,
    }
}

/// Ordinary least-squares linear fit, kept for the ablation benchmark that
/// compares the ℓ2 and ℓ∞ objectives and as a numeric fallback.
pub fn fit_least_squares(ys: &[f64]) -> Model {
    let n = ys.len() as f64;
    if ys.len() <= 1 {
        return Model::Linear {
            theta0: ys.first().copied().unwrap_or(0.0),
            theta1: 0.0,
        };
    }
    let sum_x = (n - 1.0) * n / 2.0;
    let sum_x2 = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
    let sum_y: f64 = ys.iter().sum();
    let sum_xy: f64 = ys.iter().enumerate().map(|(i, &y)| i as f64 * y).sum();
    let denom = n * sum_x2 - sum_x * sum_x;
    if denom.abs() < f64::EPSILON {
        return Model::Linear {
            theta0: sum_y / n,
            theta1: 0.0,
        };
    }
    let theta1 = (n * sum_xy - sum_x * sum_y) / denom;
    let theta0 = (sum_y - theta1 * sum_x) / n;
    // Centre the residuals so the maximum absolute error is balanced.
    let (rmin, rmax) = residual_range(ys, theta1);
    let _ = theta0;
    Model::Linear {
        theta0: (rmin + rmax) / 2.0,
        theta1,
    }
}

/// Maximum absolute error of a model over `ys` (used by tests and the
/// partitioners).
pub fn max_abs_error(model: &Model, ys: &[f64]) -> f64 {
    ys.iter()
        .enumerate()
        .map(|(i, &y)| (y - model.predict(i)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_midpoint() {
        let m = fit_constant(&[1.0, 9.0, 5.0]);
        assert_eq!(m, Model::Constant { value: 5.0 });
        assert_eq!(max_abs_error(&m, &[1.0, 9.0, 5.0]), 4.0);
    }

    #[test]
    fn exact_line_zero_error() {
        let ys: Vec<f64> = (0..100).map(|i| 3.0 + 2.5 * i as f64).collect();
        let m = fit_linear(&ys);
        assert!(max_abs_error(&m, &ys) < 1e-6);
    }

    #[test]
    fn v_shape_optimal_error() {
        // y = |x - 5| on 0..=10: best linear fit is a horizontal-ish line; the
        // optimal ℓ∞ error for the minimax line is 2.5.
        let ys: Vec<f64> = (0..=10).map(|i| (i as f64 - 5.0).abs()).collect();
        let m = fit_linear(&ys);
        let err = max_abs_error(&m, &ys);
        assert!(err <= 2.5 + 1e-6, "err {err}");
    }

    #[test]
    fn minimax_beats_or_matches_least_squares_on_outliers() {
        let mut ys: Vec<f64> = (0..200).map(|i| i as f64).collect();
        ys[100] = 500.0; // single outlier
        let mm = max_abs_error(&fit_linear(&ys), &ys);
        let ls = max_abs_error(&fit_least_squares(&ys), &ys);
        assert!(mm <= ls + 1e-9, "minimax {mm} vs least-squares {ls}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(
            fit_linear(&[]),
            Model::Linear {
                theta0: 0.0,
                theta1: 0.0
            }
        );
        assert_eq!(
            fit_linear(&[7.0]),
            Model::Linear {
                theta0: 7.0,
                theta1: 0.0
            }
        );
        let m = fit_linear(&[7.0, 9.0]);
        assert!(max_abs_error(&m, &[7.0, 9.0]) < 1e-9);
    }

    #[test]
    fn two_segment_line_error_is_half_gap() {
        // First half slope 0, second half slope 0 but offset by 10: the best
        // single line has max error 5 at most.
        let mut ys = vec![0.0; 50];
        ys.extend(vec![10.0; 50]);
        let m = fit_linear(&ys);
        assert!(max_abs_error(&m, &ys) <= 5.0 + 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_minimax_not_worse_than_least_squares(
            ys in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120)
        ) {
            let mm = max_abs_error(&fit_linear(&ys), &ys);
            let ls = max_abs_error(&fit_least_squares(&ys), &ys);
            // Allow a tiny tolerance for ternary-search convergence.
            prop_assert!(mm <= ls * 1.001 + 1e-6, "minimax {} vs ls {}", mm, ls);
        }

        #[test]
        fn prop_minimax_not_worse_than_endpoint_line(
            ys in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120)
        ) {
            let n = ys.len();
            let slope = (ys[n - 1] - ys[0]) / (n - 1) as f64;
            let endpoint = Model::Linear { theta0: ys[0], theta1: slope };
            let mm = max_abs_error(&fit_linear(&ys), &ys);
            prop_assert!(mm <= max_abs_error(&endpoint, &ys) * 1.001 + 1e-6);
        }
    }
}
