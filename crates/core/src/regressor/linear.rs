//! Constant and linear regressors with minimax (ℓ∞) objectives.
//!
//! The paper formulates the fit as a linear program minimising the bit width
//! `φ` of the largest absolute error (§3.1).  For the constant and linear
//! families we solve the ℓ∞ problem directly:
//!
//! * constant: the optimum is the midpoint of `[min, max]`;
//! * linear: the width `w(b) = max_i(y_i − b·i) − min_i(y_i − b·i)` is a
//!   convex piecewise-linear function of the slope `b` whose breakpoints are
//!   exactly the edge slopes of the upper and lower convex hulls of the
//!   points `(i, y_i)`.  [`fit_linear`] builds both hulls with one monotone
//!   chain pass (the x coordinates are already sorted) and sweeps the merged
//!   breakpoint sequence with a rotating-calipers walk, evaluating `w` at
//!   every breakpoint — `O(n)` total and *exact*, unlike the previous
//!   ternary search ([`fit_linear_ternary`], kept as a reference
//!   implementation) which needed ~130 full passes over the data to
//!   approximate the same optimum.

use crate::model::Model;

/// Fit a constant (horizontal line) model: the ℓ∞-optimal constant is the
/// midpoint of the value range.
pub fn fit_constant(ys: &[f64]) -> Model {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &y in ys {
        lo = lo.min(y);
        hi = hi.max(y);
    }
    Model::Constant {
        value: (lo + hi) / 2.0,
    }
}

/// Residual extremes of `y − b·x` for a candidate slope.
#[inline]
fn residual_range(ys: &[f64], b: f64) -> (f64, f64) {
    let mut rmin = f64::INFINITY;
    let mut rmax = f64::NEG_INFINITY;
    for (i, &y) in ys.iter().enumerate() {
        let r = y - b * i as f64;
        rmin = rmin.min(r);
        rmax = rmax.max(r);
    }
    (rmin, rmax)
}

/// Fit a linear model minimising the maximum absolute error, exactly, in
/// `O(n)`: convex hulls + rotating calipers over the slope breakpoints.
pub fn fit_linear(ys: &[f64]) -> Model {
    let n = ys.len();
    if n <= 1 {
        return Model::Linear {
            theta0: ys.first().copied().unwrap_or(0.0),
            theta1: 0.0,
        };
    }
    if n == 2 {
        return Model::Linear {
            theta0: ys[0],
            theta1: ys[1] - ys[0],
        };
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return fit_least_squares(ys);
    }

    // Monotone-chain hulls over (i, y_i); x is already sorted.  The argmax of
    // `y − b·x` over all points is always attained at an upper-hull vertex,
    // the argmin at a lower-hull vertex.
    let cross = |o: usize, a: usize, b: usize| -> f64 {
        (a - o) as f64 * (ys[b] - ys[o]) - (ys[a] - ys[o]) * (b - o) as f64
    };
    let mut upper: Vec<usize> = Vec::new();
    let mut lower: Vec<usize> = Vec::new();
    for i in 0..n {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], i) >= 0.0 {
            upper.pop();
        }
        upper.push(i);
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], i) <= 0.0 {
            lower.pop();
        }
        lower.push(i);
    }
    let slope = |p: usize, q: usize| (ys[q] - ys[p]) / (q - p) as f64;

    // As b grows, the maximising upper vertex walks right → left (its edge
    // slopes, read right to left, increase) and the minimising lower vertex
    // walks left → right (its edge slopes increase left to right).  w(b) is
    // convex piecewise linear with breakpoints only at those edge slopes, so
    // sweeping the two ascending sequences in merged order and evaluating w
    // at each breakpoint visits the exact optimum.
    let mut iu = upper.len() - 1; // argmax vertex for b = −∞ (rightmost)
    let mut il = 0usize; // argmin vertex for b = −∞ (leftmost)
    let mut next_u = upper.len() - 1; // next upper edge: (upper[next_u−1], upper[next_u])
    let mut next_l = 0usize; // next lower edge: (lower[next_l], lower[next_l+1])
    let mut best_b = slope(0, n - 1);
    let mut best_w = f64::INFINITY;
    loop {
        let u_slope = (next_u > 0).then(|| slope(upper[next_u - 1], upper[next_u]));
        let l_slope = (next_l + 1 < lower.len()).then(|| slope(lower[next_l], lower[next_l + 1]));
        let b = match (u_slope, l_slope) {
            (None, None) => break,
            (Some(u), Some(l)) if u <= l => {
                next_u -= 1;
                iu = next_u;
                u
            }
            (Some(_), Some(l)) => {
                next_l += 1;
                il = next_l;
                l
            }
            (Some(u), None) => {
                next_u -= 1;
                iu = next_u;
                u
            }
            (None, Some(l)) => {
                next_l += 1;
                il = next_l;
                l
            }
        };
        // At a breakpoint both adjacent vertices evaluate equally, so using
        // the freshly advanced vertex pair is exact.
        let (xu, yu) = (upper[iu] as f64, ys[upper[iu]]);
        let (xl, yl) = (lower[il] as f64, ys[lower[il]]);
        let w = (yu - b * xu) - (yl - b * xl);
        if w < best_w {
            best_w = w;
            best_b = b;
        }
    }
    // Centre the intercept on the true residual range of the chosen slope
    // (one exact pass, robust to any float wiggle in the hull walk).
    let (rmin, rmax) = residual_range(ys, best_b);
    Model::Linear {
        theta0: (rmin + rmax) / 2.0,
        theta1: best_b,
    }
}

/// The previous ternary-search minimax fit, kept as a reference
/// implementation for differential tests and the fit-strategy ablation in
/// `benches/partitioners.rs`.  Converges to the same optimum as
/// [`fit_linear`] up to its `1e-12` slope tolerance but needs ~130 passes
/// over the data.
pub fn fit_linear_ternary(ys: &[f64]) -> Model {
    let n = ys.len();
    if n <= 1 {
        return Model::Linear {
            theta0: ys.first().copied().unwrap_or(0.0),
            theta1: 0.0,
        };
    }
    if n == 2 {
        return Model::Linear {
            theta0: ys[0],
            theta1: ys[1] - ys[0],
        };
    }
    // The ℓ∞-optimal slope lies within the range of consecutive differences.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for w in ys.windows(2) {
        let d = w[1] - w[0];
        lo = lo.min(d);
        hi = hi.max(d);
    }
    if !(lo.is_finite() && hi.is_finite()) {
        return fit_least_squares(ys);
    }
    if hi - lo < f64::EPSILON * (1.0 + hi.abs()) {
        // Perfectly linear.
        let (rmin, rmax) = residual_range(ys, lo);
        return Model::Linear {
            theta0: (rmin + rmax) / 2.0,
            theta1: lo,
        };
    }
    // Ternary search on the convex width function.
    let width = |b: f64| {
        let (rmin, rmax) = residual_range(ys, b);
        rmax - rmin
    };
    for _ in 0..64 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if width(m1) <= width(m2) {
            hi = m2;
        } else {
            lo = m1;
        }
        if hi - lo <= 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    let b = (lo + hi) / 2.0;
    let (rmin, rmax) = residual_range(ys, b);
    Model::Linear {
        theta0: (rmin + rmax) / 2.0,
        theta1: b,
    }
}

/// Ordinary least-squares linear fit, kept for the ablation benchmark that
/// compares the ℓ2 and ℓ∞ objectives and as a numeric fallback.
pub fn fit_least_squares(ys: &[f64]) -> Model {
    let n = ys.len() as f64;
    if ys.len() <= 1 {
        return Model::Linear {
            theta0: ys.first().copied().unwrap_or(0.0),
            theta1: 0.0,
        };
    }
    let sum_x = (n - 1.0) * n / 2.0;
    let sum_x2 = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
    let sum_y: f64 = ys.iter().sum();
    let sum_xy: f64 = ys.iter().enumerate().map(|(i, &y)| i as f64 * y).sum();
    let denom = n * sum_x2 - sum_x * sum_x;
    if denom.abs() < f64::EPSILON {
        return Model::Linear {
            theta0: sum_y / n,
            theta1: 0.0,
        };
    }
    let theta1 = (n * sum_xy - sum_x * sum_y) / denom;
    let theta0 = (sum_y - theta1 * sum_x) / n;
    // Centre the residuals so the maximum absolute error is balanced.
    let (rmin, rmax) = residual_range(ys, theta1);
    let _ = theta0;
    Model::Linear {
        theta0: (rmin + rmax) / 2.0,
        theta1,
    }
}

/// Maximum absolute error of a model over `ys` (used by tests and the
/// partitioners).
pub fn max_abs_error(model: &Model, ys: &[f64]) -> f64 {
    ys.iter()
        .enumerate()
        .map(|(i, &y)| (y - model.predict(i)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_midpoint() {
        let m = fit_constant(&[1.0, 9.0, 5.0]);
        assert_eq!(m, Model::Constant { value: 5.0 });
        assert_eq!(max_abs_error(&m, &[1.0, 9.0, 5.0]), 4.0);
    }

    #[test]
    fn exact_line_zero_error() {
        let ys: Vec<f64> = (0..100).map(|i| 3.0 + 2.5 * i as f64).collect();
        let m = fit_linear(&ys);
        assert!(max_abs_error(&m, &ys) < 1e-6);
    }

    #[test]
    fn v_shape_optimal_error() {
        // y = |x - 5| on 0..=10: best linear fit is a horizontal-ish line; the
        // optimal ℓ∞ error for the minimax line is 2.5.
        let ys: Vec<f64> = (0..=10).map(|i| (i as f64 - 5.0).abs()).collect();
        let m = fit_linear(&ys);
        let err = max_abs_error(&m, &ys);
        assert!(err <= 2.5 + 1e-6, "err {err}");
    }

    #[test]
    fn minimax_beats_or_matches_least_squares_on_outliers() {
        let mut ys: Vec<f64> = (0..200).map(|i| i as f64).collect();
        ys[100] = 500.0; // single outlier
        let mm = max_abs_error(&fit_linear(&ys), &ys);
        let ls = max_abs_error(&fit_least_squares(&ys), &ys);
        assert!(mm <= ls + 1e-9, "minimax {mm} vs least-squares {ls}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(
            fit_linear(&[]),
            Model::Linear {
                theta0: 0.0,
                theta1: 0.0
            }
        );
        assert_eq!(
            fit_linear(&[7.0]),
            Model::Linear {
                theta0: 7.0,
                theta1: 0.0
            }
        );
        let m = fit_linear(&[7.0, 9.0]);
        assert!(max_abs_error(&m, &[7.0, 9.0]) < 1e-9);
    }

    #[test]
    fn two_segment_line_error_is_half_gap() {
        // First half slope 0, second half slope 0 but offset by 10: the best
        // single line has max error 5 at most.
        let mut ys = vec![0.0; 50];
        ys.extend(vec![10.0; 50]);
        let m = fit_linear(&ys);
        assert!(max_abs_error(&m, &ys) <= 5.0 + 1e-6);
    }

    #[test]
    fn hull_fit_beats_or_matches_ternary_on_hard_shapes() {
        let cases: Vec<Vec<f64>> = vec![
            (0..500).map(|i| (i as f64).sqrt() * 100.0).collect(),
            (0..500)
                .map(|i| i as f64 * 3.0 + ((i * 2654435761u64 as usize) % 97) as f64)
                .collect(),
            (0..500)
                .map(|i| if i < 250 { i as f64 } else { 500.0 - i as f64 })
                .collect(),
            vec![5.0; 300],
        ];
        for ys in cases {
            let hull = max_abs_error(&fit_linear(&ys), &ys);
            let ternary = max_abs_error(&fit_linear_ternary(&ys), &ys);
            assert!(
                hull <= ternary * 1.0001 + 1e-9,
                "hull {hull} vs ternary {ternary}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_hull_fit_is_exactly_minimax(
            ys in proptest::collection::vec(-1.0e6f64..1.0e6, 3..150)
        ) {
            // The hull fit is exact; the ternary reference converges to the
            // same optimum within its slope tolerance, so the hull result
            // must never be measurably worse — and usually matches or beats.
            let hull = max_abs_error(&fit_linear(&ys), &ys);
            let ternary = max_abs_error(&fit_linear_ternary(&ys), &ys);
            prop_assert!(hull <= ternary * 1.0001 + 1e-6, "hull {} vs ternary {}", hull, ternary);
        }

        #[test]
        fn prop_minimax_not_worse_than_least_squares(
            ys in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120)
        ) {
            let mm = max_abs_error(&fit_linear(&ys), &ys);
            let ls = max_abs_error(&fit_least_squares(&ys), &ys);
            // Allow a tiny tolerance for ternary-search convergence.
            prop_assert!(mm <= ls * 1.001 + 1e-6, "minimax {} vs ls {}", mm, ls);
        }

        #[test]
        fn prop_minimax_not_worse_than_endpoint_line(
            ys in proptest::collection::vec(-1.0e6f64..1.0e6, 3..120)
        ) {
            let n = ys.len();
            let slope = (ys[n - 1] - ys[0]) / (n - 1) as f64;
            let endpoint = Model::Linear { theta0: ys[0], theta1: slope };
            let mm = max_abs_error(&fit_linear(&ys), &ys);
            prop_assert!(mm <= max_abs_error(&endpoint, &ys) * 1.001 + 1e-6);
        }
    }
}
