//! Self-describing serialized storage format (Figure 7).
//!
//! Layout (all integers little endian):
//!
//! ```text
//! magic "LECO" | version u8 (2) | flags u8 | value_width u8
//! | len varint | num_partitions varint | [fixed_len varint if flags & FIXED]
//! then, per partition:
//!   len varint | model (tag + params) | bias zigzag-varint(i128) | width u8
//!   | correction block (num_corrections varint + varint deltas) — PRESENT
//!     ONLY IF `Model::needs_corrections(len)`, i.e. only when the
//!     θ₁-accumulation fallback decoder would actually consult it
//! then the payload:
//!   payload_bits varint | packed u64 words
//! ```
//!
//! Version 1 buffers (correction block unconditionally present, and written
//! even for partitions whose decoder never reads it) remain readable.
//!
//! Partition start positions and payload bit offsets are *derivable* (prefix
//! sums of the partition lengths and `len·width` products) and therefore not
//! stored, matching the paper's accounting where only the model, the bit
//! length and the packed deltas are charged.

use crate::column::{CompressedColumn, PartitionMeta};
use crate::model::{Model, SineTerm};

const MAGIC: &[u8; 4] = b"LECO";
const VERSION: u8 = 2;
/// Oldest version this decoder still reads.
const MIN_VERSION: u8 = 1;
const FLAG_FIXED: u8 = 1;

/// Error returned when deserialization fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The buffer does not start with the LeCo magic bytes.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u8),
    /// The buffer ended prematurely or a field was out of range.
    Corrupt(&'static str),
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a LeCo column (bad magic)"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FormatError::Corrupt(what) => write!(f, "corrupt column: {what}"),
        }
    }
}

impl std::error::Error for FormatError {}

// ---------------------------------------------------------------------------
// primitive writers / readers
// ---------------------------------------------------------------------------

pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn varint_len(mut v: u128) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

pub(crate) fn zigzag_i128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag_i128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        if self.pos + n > self.buf.len() {
            return Err(FormatError::Corrupt("unexpected end of buffer"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.bytes(1)?[0])
    }

    fn f64(&mut self) -> Result<f64, FormatError> {
        let b = self.bytes(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn varint(&mut self) -> Result<u128, FormatError> {
        let mut v: u128 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 128 {
                return Err(FormatError::Corrupt("varint too long"));
            }
            v |= ((byte & 0x7F) as u128) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// model (de)serialization
// ---------------------------------------------------------------------------

const TAG_CONSTANT: u8 = 0;
const TAG_LINEAR: u8 = 1;
const TAG_POLY: u8 = 2;
const TAG_EXP: u8 = 3;
const TAG_LOG: u8 = 4;
const TAG_SINE: u8 = 5;

fn write_model(out: &mut Vec<u8>, model: &Model) {
    match model {
        Model::Constant { value } => {
            out.push(TAG_CONSTANT);
            out.extend_from_slice(&value.to_le_bytes());
        }
        Model::Linear { theta0, theta1 } => {
            out.push(TAG_LINEAR);
            out.extend_from_slice(&theta0.to_le_bytes());
            out.extend_from_slice(&theta1.to_le_bytes());
        }
        Model::Poly { coeffs } => {
            out.push(TAG_POLY);
            out.push(coeffs.len() as u8);
            for c in coeffs {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        Model::Exponential { ln_a, b } => {
            out.push(TAG_EXP);
            out.extend_from_slice(&ln_a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        Model::Logarithm { theta0, theta1 } => {
            out.push(TAG_LOG);
            out.extend_from_slice(&theta0.to_le_bytes());
            out.extend_from_slice(&theta1.to_le_bytes());
        }
        Model::Sine {
            theta0,
            theta1,
            terms,
        } => {
            out.push(TAG_SINE);
            out.extend_from_slice(&theta0.to_le_bytes());
            out.extend_from_slice(&theta1.to_le_bytes());
            out.push(terms.len() as u8);
            for t in terms {
                out.extend_from_slice(&t.omega.to_le_bytes());
                out.extend_from_slice(&t.a_sin.to_le_bytes());
                out.extend_from_slice(&t.a_cos.to_le_bytes());
            }
        }
    }
}

fn read_model(r: &mut Reader<'_>) -> Result<Model, FormatError> {
    let tag = r.u8()?;
    Ok(match tag {
        TAG_CONSTANT => Model::Constant { value: r.f64()? },
        TAG_LINEAR => Model::Linear {
            theta0: r.f64()?,
            theta1: r.f64()?,
        },
        TAG_POLY => {
            let k = r.u8()? as usize;
            if k > 8 {
                return Err(FormatError::Corrupt("polynomial degree too large"));
            }
            let mut coeffs = Vec::with_capacity(k);
            for _ in 0..k {
                coeffs.push(r.f64()?);
            }
            Model::Poly { coeffs }
        }
        TAG_EXP => Model::Exponential {
            ln_a: r.f64()?,
            b: r.f64()?,
        },
        TAG_LOG => Model::Logarithm {
            theta0: r.f64()?,
            theta1: r.f64()?,
        },
        TAG_SINE => {
            let theta0 = r.f64()?;
            let theta1 = r.f64()?;
            let k = r.u8()? as usize;
            if k > 8 {
                return Err(FormatError::Corrupt("too many sine terms"));
            }
            let mut terms = Vec::with_capacity(k);
            for _ in 0..k {
                terms.push(SineTerm {
                    omega: r.f64()?,
                    a_sin: r.f64()?,
                    a_cos: r.f64()?,
                });
            }
            Model::Sine {
                theta0,
                theta1,
                terms,
            }
        }
        _ => return Err(FormatError::Corrupt("unknown model tag")),
    })
}

// ---------------------------------------------------------------------------
// column (de)serialization
// ---------------------------------------------------------------------------

/// Serialize a column to bytes.
pub fn to_bytes(col: &CompressedColumn) -> Vec<u8> {
    let mut out = Vec::with_capacity(serialized_size(col));
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(if col.fixed_len.is_some() {
        FLAG_FIXED
    } else {
        0
    });
    out.push(col.value_width as u8);
    write_varint(&mut out, col.len as u128);
    write_varint(&mut out, col.partitions.len() as u128);
    if let Some(l) = col.fixed_len {
        write_varint(&mut out, l as u128);
    }
    for p in &col.partitions {
        write_varint(&mut out, p.len as u128);
        write_model(&mut out, &p.model);
        write_varint(&mut out, zigzag_i128(p.bias));
        out.push(p.width);
        // v2: the correction block exists only when the θ₁-accumulation
        // fallback decoder will consult it.  (Columns loaded from v1 buffers
        // may carry vestigial correction lists for fast-path partitions;
        // re-serializing sheds them.)
        if p.model.needs_corrections(p.len as usize) {
            write_varint(&mut out, p.corrections.len() as u128);
            let mut prev = 0u32;
            for &c in &p.corrections {
                write_varint(&mut out, (c - prev) as u128);
                prev = c;
            }
        }
    }
    write_varint(&mut out, col.payload_bits as u128);
    for w in &col.payload {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Exact size in bytes of [`to_bytes`] without materialising the buffer.
pub fn serialized_size(col: &CompressedColumn) -> usize {
    let mut size = 4 + 1 + 1 + 1; // magic, version, flags, value_width
    size += varint_len(col.len as u128);
    size += varint_len(col.partitions.len() as u128);
    if let Some(l) = col.fixed_len {
        size += varint_len(l as u128);
    }
    for p in &col.partitions {
        size += varint_len(p.len as u128);
        size += p.model.size_bytes();
        size += varint_len(zigzag_i128(p.bias));
        size += 1; // width
        if p.model.needs_corrections(p.len as usize) {
            size += varint_len(p.corrections.len() as u128);
            let mut prev = 0u32;
            for &c in &p.corrections {
                size += varint_len((c - prev) as u128);
                prev = c;
            }
        }
    }
    size += varint_len(col.payload_bits as u128);
    size += col.payload.len() * 8;
    size
}

/// Deserialize a column.
pub fn from_bytes(bytes: &[u8]) -> Result<CompressedColumn, FormatError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != MAGIC {
        return Err(FormatError::BadMagic);
    }
    let version = r.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(FormatError::UnsupportedVersion(version));
    }
    let flags = r.u8()?;
    let value_width = r.u8()? as usize;
    let len = r.varint()? as usize;
    let num_partitions = r.varint()? as usize;
    let fixed_len = if flags & FLAG_FIXED != 0 {
        Some(r.varint()? as usize)
    } else {
        None
    };
    let mut partitions = Vec::with_capacity(num_partitions);
    let mut start = 0u64;
    let mut bit_offset = 0u64;
    for _ in 0..num_partitions {
        let plen = r.varint()? as u32;
        let model = read_model(&mut r)?;
        let bias = unzigzag_i128(r.varint()?);
        let width = r.u8()?;
        if width > 64 {
            return Err(FormatError::Corrupt("delta width exceeds 64 bits"));
        }
        // v1 stores the correction block for every partition; v2 only when
        // the accumulation fallback decoder will read it.
        let has_corrections = version == 1 || model.needs_corrections(plen as usize);
        let mut corrections = Vec::new();
        if has_corrections {
            let n_corr = r.varint()? as usize;
            if n_corr > plen as usize {
                return Err(FormatError::Corrupt("too many corrections"));
            }
            corrections.reserve_exact(n_corr);
            let mut prev = 0u32;
            for _ in 0..n_corr {
                prev += r.varint()? as u32;
                corrections.push(prev);
            }
        }
        partitions.push(PartitionMeta {
            start,
            len: plen,
            model,
            bias,
            width,
            bit_offset,
            corrections,
        });
        start += plen as u64;
        bit_offset += plen as u64 * width as u64;
    }
    if start != len as u64 {
        return Err(FormatError::Corrupt(
            "partition lengths do not sum to column length",
        ));
    }
    let payload_bits = r.varint()? as usize;
    if payload_bits != bit_offset as usize {
        return Err(FormatError::Corrupt("payload bit count mismatch"));
    }
    let n_words = leco_bitpack::div_ceil(payload_bits, 64);
    let mut payload = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        payload.push(r.u64()?);
    }
    let mut col = CompressedColumn {
        partitions,
        payload,
        payload_bits,
        len,
        fixed_len,
        value_width,
        serialized_bytes: 0,
    };
    col.serialized_bytes = serialized_size(&col);
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LecoCompressor, LecoConfig};
    use proptest::prelude::*;

    fn sample_column(config: LecoConfig) -> (Vec<u64>, CompressedColumn) {
        let values: Vec<u64> = (0..3_000u64)
            .map(|i| if i % 700 < 350 { i * 5 } else { 1_000_000 + i })
            .collect();
        let col = LecoCompressor::new(config).compress(&values);
        (values, col)
    }

    #[test]
    fn to_bytes_length_matches_serialized_size() {
        for config in [
            LecoConfig::leco_fix(),
            LecoConfig::leco_var(),
            LecoConfig::for_(),
        ] {
            let (_, col) = sample_column(config);
            assert_eq!(col.to_bytes().len(), serialized_size(&col));
            assert_eq!(col.size_bytes(), serialized_size(&col));
        }
    }

    #[test]
    fn round_trip_preserves_values_and_metadata() {
        let (values, col) = sample_column(LecoConfig::leco_var());
        let bytes = col.to_bytes();
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), col.len());
        assert_eq!(restored.num_partitions(), col.num_partitions());
        assert_eq!(restored.decode_all(), values);
        assert_eq!(restored.get(1234), values[1234]);
        assert_eq!(restored.size_bytes(), col.size_bytes());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let (_, col) = sample_column(LecoConfig::leco_fix());
        let mut bytes = col.to_bytes();
        assert_eq!(
            from_bytes(&bytes[..bytes.len() - 3]).unwrap_err(),
            FormatError::Corrupt("unexpected end of buffer")
        );
        bytes[0] = b'X';
        assert_eq!(from_bytes(&bytes).unwrap_err(), FormatError::BadMagic);
    }

    #[test]
    fn rejects_unsupported_version() {
        let (_, col) = sample_column(LecoConfig::leco_fix());
        let mut bytes = col.to_bytes();
        bytes[4] = 99;
        assert_eq!(
            from_bytes(&bytes).unwrap_err(),
            FormatError::UnsupportedVersion(99)
        );
    }

    /// The cost model *is* the serializer's accounting: global header plus
    /// the per-partition `partition_cost_bits_exact` terms plus the payload
    /// framing reproduces the byte size exactly.
    #[test]
    fn exact_partition_costs_decompose_the_serialized_size() {
        use crate::regressor::{partition_cost_bits_exact, DeltaStats};
        for config in [
            LecoConfig::leco_fix(),
            LecoConfig::leco_var(),
            LecoConfig::for_(),
        ] {
            let (_, col) = sample_column(config.clone());
            let mut header = 4
                + 1
                + 1
                + 1
                + varint_len(col.len as u128)
                + varint_len(col.partitions.len() as u128);
            if let Some(l) = col.fixed_len {
                header += varint_len(l as u128);
            }
            let partition_bits: usize = col
                .partitions
                .iter()
                .map(|p| {
                    let stats = DeltaStats {
                        bias: p.bias,
                        width: p.width,
                    };
                    partition_cost_bits_exact(&p.model, p.len as usize, &stats)
                })
                .sum();
            let payload_framing = varint_len(col.payload_bits as u128) + col.payload.len() * 8;
            // partition_cost_bits_exact charges metadata plus the partition's
            // own len·width payload bits; the file stores those same bits
            // word-padded inside the framing, so both sides carry the
            // payload_bits term once.
            assert_eq!(
                (header + payload_framing) * 8 + partition_bits,
                col.to_bytes().len() * 8 + col.payload_bits,
                "{config:?}"
            );
        }
    }

    /// A version-1 buffer — correction block unconditionally present — still
    /// decodes, and re-serializing sheds the vestigial lists.
    #[test]
    fn reads_version_1_buffers() {
        let (values, col) = sample_column(LecoConfig::leco_var());
        // Down-convert: flip the version byte and re-insert the correction
        // blocks (all empty: fast-path partitions) after each width byte.
        let v2 = col.to_bytes();
        let mut v1 = Vec::with_capacity(v2.len() + col.partitions.len());
        let mut r = Reader::new(&v2);
        v1.extend_from_slice(r.bytes(4).unwrap()); // magic
        assert_eq!(r.u8().unwrap(), 2);
        v1.push(1); // version 1
        let flags = r.u8().unwrap();
        v1.push(flags);
        v1.push(r.u8().unwrap()); // value_width
        let start = r.pos;
        let len = r.varint().unwrap();
        let n_parts = r.varint().unwrap();
        if flags & FLAG_FIXED != 0 {
            r.varint().unwrap();
        }
        v1.extend_from_slice(&v2[start..r.pos]);
        assert_eq!(len as usize, values.len());
        for _ in 0..n_parts {
            let start = r.pos;
            let plen = r.varint().unwrap() as usize;
            let model = read_model(&mut r).unwrap();
            r.varint().unwrap(); // bias
            r.u8().unwrap(); // width
            assert!(
                !model.needs_corrections(plen),
                "sample data stays on the fast path"
            );
            v1.extend_from_slice(&v2[start..r.pos]);
            v1.push(0); // v1: empty correction block
        }
        v1.extend_from_slice(&v2[r.pos..]);
        let restored = from_bytes(&v1).unwrap();
        assert_eq!(restored.decode_all(), values);
        // Round-tripping through the current writer yields v2 again.
        assert_eq!(restored.to_bytes(), v2);
    }

    /// Fast-path linear partitions must not spend bytes on corrections the
    /// decoder never reads (the source of the quickstart's leco_var
    /// inversion before format v2).
    #[test]
    fn fast_path_partitions_store_no_corrections() {
        let values: Vec<u64> = (0..200_000u64)
            .map(|i| 1_700_000_000_000 + 40 * i)
            .collect();
        let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
        for p in &col.partitions {
            assert!(!p.model.needs_corrections(p.len as usize));
            assert!(p.corrections.is_empty());
        }
    }

    #[test]
    fn zigzag_i128_round_trip_extremes() {
        for v in [0i128, -1, 1, i128::MAX, i128::MIN, i64::MAX as i128 * 3] {
            assert_eq!(unzigzag_i128(zigzag_i128(v)), v);
        }
    }

    #[test]
    fn empty_column_round_trips() {
        let col = LecoCompressor::new(LecoConfig::leco_fix()).compress(&[]);
        let restored = from_bytes(&col.to_bytes()).unwrap();
        assert!(restored.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_serialization_round_trip(values in proptest::collection::vec(any::<u64>(), 0..300)) {
            let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(50)).compress(&values);
            let restored = from_bytes(&col.to_bytes()).unwrap();
            prop_assert_eq!(restored.decode_all(), values);
        }

        #[test]
        fn prop_varint_round_trip(v in any::<u128>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            prop_assert_eq!(buf.len(), varint_len(v));
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.varint().unwrap(), v);
        }
    }
}
