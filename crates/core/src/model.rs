//! Regression models and their serialized representation.
//!
//! A [`Model`] maps a *local position* inside a partition (0-based) to a
//! predicted value.  The decoder recovers the original value as
//! `floor(prediction) + bias + packed_delta`, so the only requirement on a
//! model is that encoder and decoder evaluate it bit-identically — which they
//! do, because both use the same `f64` arithmetic on the same parameters.

use serde::{Deserialize, Serialize};

/// The regressor family requested in a [`crate::LecoConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegressorKind {
    /// Horizontal line (Frame-of-Reference).
    Constant,
    /// Straight line `θ0 + θ1·i` (the LeCo default).
    Linear,
    /// Polynomial of degree ≤ 2.
    Poly2,
    /// Polynomial of degree ≤ 3.
    Poly3,
    /// Exponential `exp(θ0 + θ1·i)`.
    Exponential,
    /// Logarithmic `θ0 + θ1·ln(i + 1)`.
    Logarithm,
    /// Linear trend plus `terms` sine components with learned frequencies.
    Sine {
        /// Number of sine terms (1 or 2 in the paper's cosmos experiment).
        terms: u8,
        /// If `true` the frequencies are estimated from the data
        /// (the paper's `2sin`); if `false` the caller supplies them
        /// via [`crate::regressor::FitContext`] (`2sin-freq`).
        estimate_freq: bool,
    },
    /// Let the Hyper-parameter Advisor's Regressor Selector choose per
    /// partition among {Constant, Linear, Poly2, Poly3, Exponential,
    /// Logarithm}.
    Auto,
}

/// One sine component of a [`Model::Sine`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SineTerm {
    /// Angular frequency (radians per position).
    pub omega: f64,
    /// Coefficient of `sin(omega · i)`.
    pub a_sin: f64,
    /// Coefficient of `cos(omega · i)`.
    pub a_cos: f64,
}

/// A fitted model for one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    /// `pred(i) = value` — Frame-of-Reference / RLE.
    Constant {
        /// The constant prediction.
        value: f64,
    },
    /// `pred(i) = theta0 + theta1 · i`.
    Linear {
        /// Intercept.
        theta0: f64,
        /// Slope.
        theta1: f64,
    },
    /// `pred(i) = Σ coeffs[k] · i^k`.
    Poly {
        /// Coefficients from degree 0 upwards (length 3 or 4).
        coeffs: Vec<f64>,
    },
    /// `pred(i) = exp(ln_a + b · i)`.
    Exponential {
        /// Log of the scale factor.
        ln_a: f64,
        /// Growth rate.
        b: f64,
    },
    /// `pred(i) = theta0 + theta1 · ln(i + 1)`.
    Logarithm {
        /// Intercept.
        theta0: f64,
        /// Log coefficient.
        theta1: f64,
    },
    /// `pred(i) = theta0 + theta1 · i + Σ_t a_sin·sin(ω·i) + a_cos·cos(ω·i)`.
    Sine {
        /// Intercept.
        theta0: f64,
        /// Linear trend.
        theta1: f64,
        /// Sinusoidal components.
        terms: Vec<SineTerm>,
    },
}

/// True when every prediction of the line `t0 + t1·k` for `k < len` is
/// certain to stay strictly inside the i64 range, so `floor() as i64` cannot
/// saturate.  The accumulated sequence is monotone, hence checking the two
/// endpoints suffices; the limit leaves well over 2^62 of slack for the
/// ulp-level drift the correction list tracks.
#[inline]
fn linear_fits_i64(t0: f64, t1: f64, len: usize) -> bool {
    const LIMIT: f64 = 4.0e18; // < 2^62
    let last = t0 + t1 * len.saturating_sub(1) as f64;
    t0.is_finite() && last.is_finite() && t0.abs() < LIMIT && last.abs() < LIMIT
}

/// `x.floor() as i64` for finite `|x| < 2^62`, without the `floor` libm call
/// the baseline x86-64 target emits (`roundsd` needs SSE4.1): truncate toward
/// zero with the hardware cast, then subtract 1 when truncation rounded up
/// (negative non-integers).  Bit-identical to `floor` in the guarded range.
#[inline(always)]
fn floor_to_i64(x: f64) -> i64 {
    let t = x as i64;
    t - ((t as f64 > x) as i64)
}

/// The shared linear fast loop: `out[k] = floor(θ0 + θ1·(local0+k)) + bias +
/// out[k]` in wrapping u64 arithmetic.  Callers must have established
/// [`linear_fits_i64`] over the span first.  `#[inline(always)]` so both the
/// full-partition and span decoders get a monomorphic, call-free inner loop.
#[inline(always)]
fn linear_reconstruct_fill(theta0: f64, theta1: f64, local0: usize, bias: i128, out: &mut [u64]) {
    let base = bias as u64;
    for (k, slot) in out.iter_mut().enumerate() {
        let p = floor_to_i64(theta0 + theta1 * (local0 + k) as f64);
        *slot = (p as u64).wrapping_add(base).wrapping_add(*slot);
    }
}

impl Model {
    /// Evaluate the model at local position `i`.
    #[inline]
    pub fn predict(&self, i: usize) -> f64 {
        let x = i as f64;
        match self {
            Model::Constant { value } => *value,
            Model::Linear { theta0, theta1 } => theta0 + theta1 * x,
            Model::Poly { coeffs } => {
                // Horner evaluation.
                let mut acc = 0.0;
                for &c in coeffs.iter().rev() {
                    acc = acc * x + c;
                }
                acc
            }
            Model::Exponential { ln_a, b } => (ln_a + b * x).exp(),
            Model::Logarithm { theta0, theta1 } => theta0 + theta1 * (x + 1.0).ln(),
            Model::Sine {
                theta0,
                theta1,
                terms,
            } => {
                let mut acc = theta0 + theta1 * x;
                for t in terms {
                    acc += t.a_sin * (t.omega * x).sin() + t.a_cos * (t.omega * x).cos();
                }
                acc
            }
        }
    }

    /// Integer prediction used by the storage format: `floor(predict(i))`
    /// clamped into the `i128` range that deltas are computed in.
    #[inline]
    pub fn predict_floor(&self, i: usize) -> i128 {
        let p = self.predict(i).floor();
        if p.is_nan() {
            0
        } else if p >= i128::MAX as f64 {
            i128::MAX
        } else if p <= i128::MIN as f64 {
            i128::MIN
        } else {
            p as i128
        }
    }

    /// Reconstruct a full partition in place: `out` arrives holding the raw
    /// bit-unpacked deltas and leaves holding `floor(predict(i)) + bias +
    /// delta_i` for each local position `i`.
    ///
    /// This is the model half of the fused word-parallel partition decode:
    /// the caller bulk-unpacks the packed payload straight into the output
    /// buffer and this method folds the prediction in with one pass, hoisting
    /// the model-variant dispatch out of the per-element loop.  Linear models
    /// normally evaluate `floor(θ0 + θ1·i)` directly in i64/u64-wrapping
    /// arithmetic (element-independent, so the loop pipelines); partitions
    /// whose predictions approach the i64 range instead fall back to the
    /// θ₁-accumulation path of §3.3 in full i128, with `corrections` listing
    /// the positions where accumulation drifts from the exact floor.
    pub fn reconstruct_into(&self, bias: i128, corrections: &[u32], out: &mut [u64]) {
        if let Model::Linear { theta0, theta1 } = self {
            // The true value `floor(pred) + bias + delta` is exact in i128
            // and always fits u64, so wrapping u64 arithmetic reproduces it
            // exactly — provided `floor(acc) mod 2^64` itself is computed
            // correctly.  An `f64 → i64` cast does that with one hardware
            // instruction as long as the prediction never saturates; the
            // endpoint check proves that for the whole partition (the
            // accumulated sequence is monotone in `local`).  Only columns
            // whose models predict magnitudes near 2^63 take the i128 path.
            if linear_fits_i64(*theta0, *theta1, out.len()) {
                // Evaluate `floor(θ0 + θ1·local)` directly — bit-identical
                // to what the encoder subtracted, so the correction list
                // (which only patches the *accumulation* shortcut) is not
                // consulted at all.  Unlike `acc += θ1`, every element is
                // independent, so the loop pipelines/vectorises.
                linear_reconstruct_fill(*theta0, *theta1, 0, bias, out);
            } else {
                let mut acc = *theta0;
                let mut corr = corrections.iter().peekable();
                for (local, slot) in out.iter_mut().enumerate() {
                    let pred = if corr.peek() == Some(&&(local as u32)) {
                        corr.next();
                        self.predict_floor(local)
                    } else {
                        // `as` saturates and maps NaN to 0, matching the
                        // clamp in `predict_floor` so the correction list
                        // stays exact.
                        acc.floor() as i128
                    };
                    acc += theta1;
                    *slot = (pred + bias + *slot as i128) as u64;
                }
            }
        } else {
            debug_assert!(
                corrections.is_empty(),
                "corrections are only produced for linear models"
            );
            self.reconstruct_span_into(bias, 0, out);
        }
    }

    /// Reconstruct an arbitrary span in place: like [`Self::reconstruct_into`]
    /// but starting at local position `local0` and always evaluating the
    /// model exactly (accumulation drift is only tracked from position 0, so
    /// partial spans cannot use the correction list).
    pub fn reconstruct_span_into(&self, bias: i128, local0: usize, out: &mut [u64]) {
        match self {
            Model::Constant { .. } => {
                // Exact in wrapping u64 arithmetic: see `reconstruct_into`.
                let base = (self.predict_floor(0) + bias) as u64;
                for slot in out.iter_mut() {
                    *slot = base.wrapping_add(*slot);
                }
            }
            Model::Linear { theta0, theta1 } => {
                let t0 = theta0 + theta1 * local0 as f64;
                if linear_fits_i64(t0, *theta1, out.len()) {
                    linear_reconstruct_fill(*theta0, *theta1, local0, bias, out);
                } else {
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = (self.predict_floor(local0 + k) + bias + *slot as i128) as u64;
                    }
                }
            }
            _ => {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = (self.predict_floor(local0 + k) + bias + *slot as i128) as u64;
                }
            }
        }
    }

    /// True when the decoder's θ₁-accumulation fallback path is taken for a
    /// full-partition decode of `len` values under this model — the only
    /// situation in which the correction list is ever consulted.
    ///
    /// Format v2 makes this predicate part of the on-disk contract: the
    /// correction block is present if and only if this returns `true`
    /// (see `docs/FORMAT.md`).  Encoder and decoder agree bit-identically
    /// because both evaluate the same `f64` expressions on the same
    /// serialized parameters.
    pub fn needs_corrections(&self, len: usize) -> bool {
        match self {
            Model::Linear { theta0, theta1 } => !linear_fits_i64(*theta0, *theta1, len),
            _ => false,
        }
    }

    /// Walk the local positions where accumulating θ₁ (`acc += θ₁` per row)
    /// floors differently than evaluating the model exactly — the §3.3
    /// range-decoding correction list.  No-op unless
    /// [`Self::needs_corrections`] holds, since only the accumulation
    /// fallback decoder ever reads the list.
    fn for_each_drift(&self, len: usize, mut visit: impl FnMut(u32)) {
        if !self.needs_corrections(len) {
            return;
        }
        let (theta0, theta1) = match self {
            Model::Linear { theta0, theta1 } => (*theta0, *theta1),
            _ => unreachable!("needs_corrections is only true for linear models"),
        };
        let mut acc = theta0;
        for local in 0..len {
            if local > 0 {
                acc += theta1;
            }
            let exact = self.predict_floor(local);
            let accumulated = acc.floor();
            // Clamp with the same semantics as the decoder's `as i128` cast
            // (saturating, NaN → 0) so the list is exact.
            let accumulated = if accumulated.is_nan() {
                0
            } else if accumulated >= i128::MAX as f64 {
                i128::MAX
            } else if accumulated <= i128::MIN as f64 {
                i128::MIN
            } else {
                accumulated as i128
            };
            if accumulated != exact {
                visit(local as u32);
            }
        }
    }

    /// The correction list for a partition of `len` values: strictly
    /// increasing local positions where the θ₁-accumulation decode drifts
    /// from the exact floor.  Empty unless [`Self::needs_corrections`].
    pub fn drift_corrections(&self, len: usize) -> Vec<u32> {
        let mut corrections = Vec::new();
        self.for_each_drift(len, |local| corrections.push(local));
        corrections
    }

    /// Exact serialized size in bytes of the correction block for a
    /// partition of `len` values: the count varint plus one varint per
    /// delta-encoded position — or 0 when the block is absent (format v2).
    ///
    /// This is the term the legacy cost model ignored; charging it is what
    /// lets the variable-length partitioner price long partitions honestly.
    pub fn correction_cost_bytes(&self, len: usize) -> usize {
        if !self.needs_corrections(len) {
            return 0;
        }
        let mut count: usize = 0;
        let mut bytes: usize = 0;
        let mut prev = 0u32;
        self.for_each_drift(len, |local| {
            count += 1;
            bytes += crate::format::varint_len((local - prev) as u128);
            prev = local;
        });
        bytes + crate::format::varint_len(count as u128)
    }

    /// Serialized size of the model parameters in bytes (1 tag byte plus the
    /// parameters).  This is the `‖F_j‖` term of the paper's objective.
    pub fn size_bytes(&self) -> usize {
        1 + match self {
            Model::Constant { .. } => 8,
            Model::Linear { .. } => 16,
            Model::Poly { coeffs } => 1 + coeffs.len() * 8,
            Model::Exponential { .. } => 16,
            Model::Logarithm { .. } => 16,
            Model::Sine { terms, .. } => 16 + 1 + terms.len() * 24,
        }
    }

    /// Size in bits (convenience for the partitioning cost model).
    pub fn size_bits(&self) -> usize {
        self.size_bytes() * 8
    }

    /// The family this model belongs to.
    pub fn kind(&self) -> RegressorKind {
        match self {
            Model::Constant { .. } => RegressorKind::Constant,
            Model::Linear { .. } => RegressorKind::Linear,
            Model::Poly { coeffs } if coeffs.len() <= 3 => RegressorKind::Poly2,
            Model::Poly { .. } => RegressorKind::Poly3,
            Model::Exponential { .. } => RegressorKind::Exponential,
            Model::Logarithm { .. } => RegressorKind::Logarithm,
            Model::Sine { terms, .. } => RegressorKind::Sine {
                terms: terms.len() as u8,
                estimate_freq: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_prediction() {
        let m = Model::Linear {
            theta0: 10.0,
            theta1: 2.5,
        };
        assert_eq!(m.predict(0), 10.0);
        assert_eq!(m.predict(4), 20.0);
        assert_eq!(m.predict_floor(3), 17); // 17.5 -> 17
    }

    #[test]
    fn poly_horner_matches_direct() {
        let m = Model::Poly {
            coeffs: vec![1.0, 2.0, 3.0],
        }; // 1 + 2x + 3x²
        for i in 0..20 {
            let x = i as f64;
            assert!((m.predict(i) - (1.0 + 2.0 * x + 3.0 * x * x)).abs() < 1e-9);
        }
    }

    #[test]
    fn predict_floor_clamps_extremes() {
        let m = Model::Exponential { ln_a: 1e6, b: 1.0 };
        assert_eq!(m.predict_floor(10), i128::MAX);
        let m = Model::Linear {
            theta0: f64::NAN,
            theta1: 0.0,
        };
        assert_eq!(m.predict_floor(0), 0);
    }

    #[test]
    fn model_sizes() {
        assert_eq!(Model::Constant { value: 0.0 }.size_bytes(), 9);
        assert_eq!(
            Model::Linear {
                theta0: 0.0,
                theta1: 0.0
            }
            .size_bytes(),
            17
        );
        assert_eq!(
            Model::Poly {
                coeffs: vec![0.0; 4]
            }
            .size_bytes(),
            1 + 1 + 32
        );
        let sine = Model::Sine {
            theta0: 0.0,
            theta1: 0.0,
            terms: vec![SineTerm {
                omega: 1.0,
                a_sin: 0.0,
                a_cos: 0.0,
            }],
        };
        assert_eq!(sine.size_bytes(), 1 + 16 + 1 + 24);
    }

    #[test]
    fn kind_round_trips() {
        assert_eq!(
            Model::Constant { value: 1.0 }.kind(),
            RegressorKind::Constant
        );
        assert_eq!(
            Model::Poly {
                coeffs: vec![0.0; 4]
            }
            .kind(),
            RegressorKind::Poly3
        );
    }

    #[test]
    fn sine_model_periodicity() {
        let m = Model::Sine {
            theta0: 0.0,
            theta1: 0.0,
            terms: vec![SineTerm {
                omega: std::f64::consts::PI,
                a_sin: 1.0,
                a_cos: 0.0,
            }],
        };
        assert!((m.predict(0) - 0.0).abs() < 1e-9);
        assert!((m.predict(1) - 0.0).abs() < 1e-9); // sin(pi) ≈ 0
    }
}
