//! Regression models and their serialized representation.
//!
//! A [`Model`] maps a *local position* inside a partition (0-based) to a
//! predicted value.  The decoder recovers the original value as
//! `floor(prediction) + bias + packed_delta`, so the only requirement on a
//! model is that encoder and decoder evaluate it bit-identically — which they
//! do, because both use the same `f64` arithmetic on the same parameters.

use serde::{Deserialize, Serialize};

/// The regressor family requested in a [`crate::LecoConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegressorKind {
    /// Horizontal line (Frame-of-Reference).
    Constant,
    /// Straight line `θ0 + θ1·i` (the LeCo default).
    Linear,
    /// Polynomial of degree ≤ 2.
    Poly2,
    /// Polynomial of degree ≤ 3.
    Poly3,
    /// Exponential `exp(θ0 + θ1·i)`.
    Exponential,
    /// Logarithmic `θ0 + θ1·ln(i + 1)`.
    Logarithm,
    /// Linear trend plus `terms` sine components with learned frequencies.
    Sine {
        /// Number of sine terms (1 or 2 in the paper's cosmos experiment).
        terms: u8,
        /// If `true` the frequencies are estimated from the data
        /// (the paper's `2sin`); if `false` the caller supplies them
        /// via [`crate::regressor::FitContext`] (`2sin-freq`).
        estimate_freq: bool,
    },
    /// Let the Hyper-parameter Advisor's Regressor Selector choose per
    /// partition among {Constant, Linear, Poly2, Poly3, Exponential,
    /// Logarithm}.
    Auto,
}

/// Direction in which [`Model::predict_floor`] is monotone over local
/// positions, as proven by [`Model::monotone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Monotone {
    /// `predict_floor(i) <= predict_floor(i + 1)` for every `i`.
    NonDecreasing,
    /// `predict_floor(i) >= predict_floor(i + 1)` for every `i`.
    NonIncreasing,
}

/// The row-interval pair produced by [`Model::invert_range`]: half-open local
/// ranges with `definite ⊆ candidate`.
///
/// Rows outside `candidate` certainly fail the predicate, rows inside
/// `definite` certainly pass it, and only the slack band `candidate \
/// definite` (at most two spans, one per side) depends on the packed delta —
/// those are the *boundary rows* a pushdown filter must actually decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlackBands {
    /// Local positions that *may* satisfy the predicate.
    pub candidate: std::ops::Range<usize>,
    /// Local positions that *certainly* satisfy the predicate.
    pub definite: std::ops::Range<usize>,
}

/// `partition_point` over `0..len`: the first index where `pred` turns false
/// (callers guarantee `pred` is monotone true→false).
#[inline]
fn partition_point(len: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let (mut a, mut b) = (0usize, len);
    while a < b {
        let mid = a + (b - a) / 2;
        if pred(mid) {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    a
}

/// One sine component of a [`Model::Sine`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SineTerm {
    /// Angular frequency (radians per position).
    pub omega: f64,
    /// Coefficient of `sin(omega · i)`.
    pub a_sin: f64,
    /// Coefficient of `cos(omega · i)`.
    pub a_cos: f64,
}

/// A fitted model for one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    /// `pred(i) = value` — Frame-of-Reference / RLE.
    Constant {
        /// The constant prediction.
        value: f64,
    },
    /// `pred(i) = theta0 + theta1 · i`.
    Linear {
        /// Intercept.
        theta0: f64,
        /// Slope.
        theta1: f64,
    },
    /// `pred(i) = Σ coeffs[k] · i^k`.
    Poly {
        /// Coefficients from degree 0 upwards (length 3 or 4).
        coeffs: Vec<f64>,
    },
    /// `pred(i) = exp(ln_a + b · i)`.
    Exponential {
        /// Log of the scale factor.
        ln_a: f64,
        /// Growth rate.
        b: f64,
    },
    /// `pred(i) = theta0 + theta1 · ln(i + 1)`.
    Logarithm {
        /// Intercept.
        theta0: f64,
        /// Log coefficient.
        theta1: f64,
    },
    /// `pred(i) = theta0 + theta1 · i + Σ_t a_sin·sin(ω·i) + a_cos·cos(ω·i)`.
    Sine {
        /// Intercept.
        theta0: f64,
        /// Linear trend.
        theta1: f64,
        /// Sinusoidal components.
        terms: Vec<SineTerm>,
    },
}

/// True when every prediction of the line `t0 + t1·k` for `k < len` is
/// certain to stay strictly inside the i64 range, so `floor() as i64` cannot
/// saturate.  The accumulated sequence is monotone, hence checking the two
/// endpoints suffices; the limit leaves well over 2^62 of slack for the
/// ulp-level drift the correction list tracks.
#[inline]
fn linear_fits_i64(t0: f64, t1: f64, len: usize) -> bool {
    const LIMIT: f64 = 4.0e18; // < 2^62
    let last = t0 + t1 * len.saturating_sub(1) as f64;
    t0.is_finite() && last.is_finite() && t0.abs() < LIMIT && last.abs() < LIMIT
}

/// `x.floor() as i64` for finite `|x| < 2^62`, without the `floor` libm call
/// the baseline x86-64 target emits (`roundsd` needs SSE4.1): truncate toward
/// zero with the hardware cast, then subtract 1 when truncation rounded up
/// (negative non-integers).  Bit-identical to `floor` in the guarded range.
#[inline(always)]
fn floor_to_i64(x: f64) -> i64 {
    let t = x as i64;
    t - ((t as f64 > x) as i64)
}

/// The shared linear fast loop: `out[k] = floor(θ0 + θ1·(local0+k)) + bias +
/// out[k]` in wrapping u64 arithmetic.  Callers must have established
/// [`linear_fits_i64`] over the span first.  `#[inline(always)]` so both the
/// full-partition and span decoders get a monomorphic, call-free inner loop.
#[inline(always)]
fn linear_reconstruct_fill(theta0: f64, theta1: f64, local0: usize, bias: i128, out: &mut [u64]) {
    let base = bias as u64;
    for (k, slot) in out.iter_mut().enumerate() {
        let p = floor_to_i64(theta0 + theta1 * (local0 + k) as f64);
        *slot = (p as u64).wrapping_add(base).wrapping_add(*slot);
    }
}

impl Model {
    /// Evaluate the model at local position `i`.
    #[inline]
    pub fn predict(&self, i: usize) -> f64 {
        let x = i as f64;
        match self {
            Model::Constant { value } => *value,
            Model::Linear { theta0, theta1 } => theta0 + theta1 * x,
            Model::Poly { coeffs } => {
                // Horner evaluation.
                let mut acc = 0.0;
                for &c in coeffs.iter().rev() {
                    acc = acc * x + c;
                }
                acc
            }
            Model::Exponential { ln_a, b } => (ln_a + b * x).exp(),
            Model::Logarithm { theta0, theta1 } => theta0 + theta1 * (x + 1.0).ln(),
            Model::Sine {
                theta0,
                theta1,
                terms,
            } => {
                let mut acc = theta0 + theta1 * x;
                for t in terms {
                    acc += t.a_sin * (t.omega * x).sin() + t.a_cos * (t.omega * x).cos();
                }
                acc
            }
        }
    }

    /// Integer prediction used by the storage format: `floor(predict(i))`
    /// clamped into the `i128` range that deltas are computed in.
    #[inline]
    pub fn predict_floor(&self, i: usize) -> i128 {
        let p = self.predict(i).floor();
        if p.is_nan() {
            0
        } else if p >= i128::MAX as f64 {
            i128::MAX
        } else if p <= i128::MIN as f64 {
            i128::MIN
        } else {
            p as i128
        }
    }

    /// Reconstruct a full partition in place: `out` arrives holding the raw
    /// bit-unpacked deltas and leaves holding `floor(predict(i)) + bias +
    /// delta_i` for each local position `i`.
    ///
    /// This is the model half of the fused word-parallel partition decode:
    /// the caller bulk-unpacks the packed payload straight into the output
    /// buffer and this method folds the prediction in with one pass, hoisting
    /// the model-variant dispatch out of the per-element loop.  Linear models
    /// normally evaluate `floor(θ0 + θ1·i)` directly in i64/u64-wrapping
    /// arithmetic (element-independent, so the loop pipelines); partitions
    /// whose predictions approach the i64 range instead fall back to the
    /// θ₁-accumulation path of §3.3 in full i128, with `corrections` listing
    /// the positions where accumulation drifts from the exact floor.
    pub fn reconstruct_into(&self, bias: i128, corrections: &[u32], out: &mut [u64]) {
        if let Model::Linear { theta0, theta1 } = self {
            // The true value `floor(pred) + bias + delta` is exact in i128
            // and always fits u64, so wrapping u64 arithmetic reproduces it
            // exactly — provided `floor(acc) mod 2^64` itself is computed
            // correctly.  An `f64 → i64` cast does that with one hardware
            // instruction as long as the prediction never saturates; the
            // endpoint check proves that for the whole partition (the
            // accumulated sequence is monotone in `local`).  Only columns
            // whose models predict magnitudes near 2^63 take the i128 path.
            if linear_fits_i64(*theta0, *theta1, out.len()) {
                // Evaluate `floor(θ0 + θ1·local)` directly — bit-identical
                // to what the encoder subtracted, so the correction list
                // (which only patches the *accumulation* shortcut) is not
                // consulted at all.  Unlike `acc += θ1`, every element is
                // independent, so the loop pipelines/vectorises.
                linear_reconstruct_fill(*theta0, *theta1, 0, bias, out);
            } else {
                let mut acc = *theta0;
                let mut corr = corrections.iter().peekable();
                for (local, slot) in out.iter_mut().enumerate() {
                    let pred = if corr.peek() == Some(&&(local as u32)) {
                        corr.next();
                        self.predict_floor(local)
                    } else {
                        // `as` saturates and maps NaN to 0, matching the
                        // clamp in `predict_floor` so the correction list
                        // stays exact.
                        acc.floor() as i128
                    };
                    acc += theta1;
                    *slot = (pred + bias + *slot as i128) as u64;
                }
            }
        } else {
            debug_assert!(
                corrections.is_empty(),
                "corrections are only produced for linear models"
            );
            self.reconstruct_span_into(bias, 0, out);
        }
    }

    /// Reconstruct an arbitrary span in place: like [`Self::reconstruct_into`]
    /// but starting at local position `local0` and always evaluating the
    /// model exactly (accumulation drift is only tracked from position 0, so
    /// partial spans cannot use the correction list).
    pub fn reconstruct_span_into(&self, bias: i128, local0: usize, out: &mut [u64]) {
        match self {
            Model::Constant { .. } => {
                // Exact in wrapping u64 arithmetic: see `reconstruct_into`.
                let base = (self.predict_floor(0) + bias) as u64;
                for slot in out.iter_mut() {
                    *slot = base.wrapping_add(*slot);
                }
            }
            Model::Linear { theta0, theta1 } => {
                let t0 = theta0 + theta1 * local0 as f64;
                if linear_fits_i64(t0, *theta1, out.len()) {
                    linear_reconstruct_fill(*theta0, *theta1, local0, bias, out);
                } else {
                    for (k, slot) in out.iter_mut().enumerate() {
                        *slot = (self.predict_floor(local0 + k) + bias + *slot as i128) as u64;
                    }
                }
            }
            _ => {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = (self.predict_floor(local0 + k) + bias + *slot as i128) as u64;
                }
            }
        }
    }

    /// The direction in which [`Self::predict_floor`] is provably monotone
    /// over local positions, or `None` when monotonicity cannot be
    /// guaranteed for the family.
    ///
    /// Only `Constant` and `Linear` qualify.  For those, every step of the
    /// evaluation pipeline is monotone in `i`: `i as f64` is monotone,
    /// multiplying by a fixed sign-stable `θ₁` and rounding to nearest is
    /// monotone (rounding of a monotone exact sequence is monotone), adding
    /// `θ₀` and rounding is monotone, and `floor` plus the `i128` clamp are
    /// monotone.  The transcendental families (`Exponential`, `Logarithm`)
    /// are mathematically monotone but evaluated through libm, whose
    /// implementations do not guarantee monotone rounding — so they are
    /// conservatively excluded rather than risking a wrong binary search.
    pub fn monotone(&self) -> Option<Monotone> {
        match self {
            Model::Constant { value } if value.is_finite() => Some(Monotone::NonDecreasing),
            Model::Linear { theta0, theta1 } if theta0.is_finite() && theta1.is_finite() => {
                if *theta1 >= 0.0 {
                    Some(Monotone::NonDecreasing)
                } else {
                    Some(Monotone::NonIncreasing)
                }
            }
            _ => None,
        }
    }

    /// Invert an inclusive value predicate `lo <= v <= hi` into row
    /// intervals, for a partition of `len` rows stored with this model,
    /// `bias` and packed-delta `width` — the model-inverse half of predicate
    /// pushdown (§5 of the paper: keeping the model explicit lets operators
    /// *solve* it instead of decoding through it).
    ///
    /// Every stored value is exactly `v = predict_floor(i) + bias + packed_i`
    /// in `i128`, with `packed_i ∈ [0, 2^width - 1]`.  The prediction
    /// therefore pins each row's value to a *slack band* of width
    /// `2^width - 1`, and for a monotone model the set of rows whose band
    /// intersects (resp. is contained in) `[lo, hi]` is a contiguous
    /// interval recoverable by binary search on `predict_floor` — O(log len)
    /// model evaluations, no decoding:
    ///
    /// * `candidate`: rows with `predict_floor(i) ∈ [lo-bias-slack, hi-bias]`
    ///   (the band intersects the predicate — the row *may* match);
    /// * `definite`: rows with `predict_floor(i) ∈ [lo-bias, hi-bias-slack]`
    ///   (the band is contained in the predicate — the row *must* match).
    ///
    /// Returns `None` when [`Self::monotone`] is `None`; callers then fall
    /// back to decode-then-filter for the partition.  `lo > hi` yields empty
    /// ranges.  The result is exact for any column produced by the encoder
    /// (which computes `bias`/`width` from the same `predict_floor`).
    pub fn invert_range(
        &self,
        len: usize,
        bias: i128,
        width: u8,
        lo: u64,
        hi: u64,
    ) -> Option<SlackBands> {
        let dir = self.monotone()?;
        if len == 0 || lo > hi {
            return Some(SlackBands {
                candidate: 0..0,
                definite: 0..0,
            });
        }
        let slack: i128 = if width >= 64 {
            u64::MAX as i128
        } else {
            ((1u64 << width) - 1) as i128
        };
        // Thresholds in prediction space.  Saturating arithmetic is pure
        // belt-and-braces: a bias anywhere near i128's edges cannot come out
        // of the encoder (the delta subtraction would have overflowed first).
        let lo_t = (lo as i128).saturating_sub(bias);
        let hi_t = (hi as i128).saturating_sub(bias);
        let (candidate, definite) = match dir {
            Monotone::NonDecreasing => {
                // first_ge(t): first row with predict_floor >= t.
                let first_ge = |t: i128| partition_point(len, |i| self.predict_floor(i) < t);
                let candidate =
                    first_ge(lo_t.saturating_sub(slack))..first_ge(hi_t.saturating_add(1));
                let definite =
                    first_ge(lo_t)..first_ge(hi_t.saturating_sub(slack).saturating_add(1));
                (candidate, definite)
            }
            Monotone::NonIncreasing => {
                // predict_floor is non-increasing: `{i : pf(i) <= t}` is a
                // suffix and `{i : pf(i) >= t}` a prefix.
                let first_le = |t: i128| partition_point(len, |i| self.predict_floor(i) > t);
                let first_lt = |t: i128| partition_point(len, |i| self.predict_floor(i) >= t);
                let candidate = first_le(hi_t)..first_lt(lo_t.saturating_sub(slack));
                let definite = first_le(hi_t.saturating_sub(slack))..first_lt(lo_t);
                (candidate, definite)
            }
        };
        // Normalise: candidate is non-empty-ordered by construction; clamp
        // definite inside it (an empty definite collapses to a point, leaving
        // the whole candidate as boundary).
        debug_assert!(candidate.start <= candidate.end);
        let def_start = definite.start.clamp(candidate.start, candidate.end);
        let def_end = definite.end.clamp(def_start, candidate.end);
        Some(SlackBands {
            candidate,
            definite: def_start..def_end,
        })
    }

    /// True when the decoder's θ₁-accumulation fallback path is taken for a
    /// full-partition decode of `len` values under this model — the only
    /// situation in which the correction list is ever consulted.
    ///
    /// Format v2 makes this predicate part of the on-disk contract: the
    /// correction block is present if and only if this returns `true`
    /// (see `docs/FORMAT.md`).  Encoder and decoder agree bit-identically
    /// because both evaluate the same `f64` expressions on the same
    /// serialized parameters.
    pub fn needs_corrections(&self, len: usize) -> bool {
        match self {
            Model::Linear { theta0, theta1 } => !linear_fits_i64(*theta0, *theta1, len),
            _ => false,
        }
    }

    /// Walk the local positions where accumulating θ₁ (`acc += θ₁` per row)
    /// floors differently than evaluating the model exactly — the §3.3
    /// range-decoding correction list.  No-op unless
    /// [`Self::needs_corrections`] holds, since only the accumulation
    /// fallback decoder ever reads the list.
    fn for_each_drift(&self, len: usize, mut visit: impl FnMut(u32)) {
        if !self.needs_corrections(len) {
            return;
        }
        let (theta0, theta1) = match self {
            Model::Linear { theta0, theta1 } => (*theta0, *theta1),
            _ => unreachable!("needs_corrections is only true for linear models"),
        };
        let mut acc = theta0;
        for local in 0..len {
            if local > 0 {
                acc += theta1;
            }
            let exact = self.predict_floor(local);
            let accumulated = acc.floor();
            // Clamp with the same semantics as the decoder's `as i128` cast
            // (saturating, NaN → 0) so the list is exact.
            let accumulated = if accumulated.is_nan() {
                0
            } else if accumulated >= i128::MAX as f64 {
                i128::MAX
            } else if accumulated <= i128::MIN as f64 {
                i128::MIN
            } else {
                accumulated as i128
            };
            if accumulated != exact {
                visit(local as u32);
            }
        }
    }

    /// The correction list for a partition of `len` values: strictly
    /// increasing local positions where the θ₁-accumulation decode drifts
    /// from the exact floor.  Empty unless [`Self::needs_corrections`].
    pub fn drift_corrections(&self, len: usize) -> Vec<u32> {
        let mut corrections = Vec::new();
        self.for_each_drift(len, |local| corrections.push(local));
        corrections
    }

    /// Exact serialized size in bytes of the correction block for a
    /// partition of `len` values: the count varint plus one varint per
    /// delta-encoded position — or 0 when the block is absent (format v2).
    ///
    /// This is the term the legacy cost model ignored; charging it is what
    /// lets the variable-length partitioner price long partitions honestly.
    pub fn correction_cost_bytes(&self, len: usize) -> usize {
        if !self.needs_corrections(len) {
            return 0;
        }
        let mut count: usize = 0;
        let mut bytes: usize = 0;
        let mut prev = 0u32;
        self.for_each_drift(len, |local| {
            count += 1;
            bytes += crate::format::varint_len((local - prev) as u128);
            prev = local;
        });
        bytes + crate::format::varint_len(count as u128)
    }

    /// Serialized size of the model parameters in bytes (1 tag byte plus the
    /// parameters).  This is the `‖F_j‖` term of the paper's objective.
    pub fn size_bytes(&self) -> usize {
        1 + match self {
            Model::Constant { .. } => 8,
            Model::Linear { .. } => 16,
            Model::Poly { coeffs } => 1 + coeffs.len() * 8,
            Model::Exponential { .. } => 16,
            Model::Logarithm { .. } => 16,
            Model::Sine { terms, .. } => 16 + 1 + terms.len() * 24,
        }
    }

    /// Size in bits (convenience for the partitioning cost model).
    pub fn size_bits(&self) -> usize {
        self.size_bytes() * 8
    }

    /// The family this model belongs to.
    pub fn kind(&self) -> RegressorKind {
        match self {
            Model::Constant { .. } => RegressorKind::Constant,
            Model::Linear { .. } => RegressorKind::Linear,
            Model::Poly { coeffs } if coeffs.len() <= 3 => RegressorKind::Poly2,
            Model::Poly { .. } => RegressorKind::Poly3,
            Model::Exponential { .. } => RegressorKind::Exponential,
            Model::Logarithm { .. } => RegressorKind::Logarithm,
            Model::Sine { terms, .. } => RegressorKind::Sine {
                terms: terms.len() as u8,
                estimate_freq: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_prediction() {
        let m = Model::Linear {
            theta0: 10.0,
            theta1: 2.5,
        };
        assert_eq!(m.predict(0), 10.0);
        assert_eq!(m.predict(4), 20.0);
        assert_eq!(m.predict_floor(3), 17); // 17.5 -> 17
    }

    #[test]
    fn poly_horner_matches_direct() {
        let m = Model::Poly {
            coeffs: vec![1.0, 2.0, 3.0],
        }; // 1 + 2x + 3x²
        for i in 0..20 {
            let x = i as f64;
            assert!((m.predict(i) - (1.0 + 2.0 * x + 3.0 * x * x)).abs() < 1e-9);
        }
    }

    #[test]
    fn predict_floor_clamps_extremes() {
        let m = Model::Exponential { ln_a: 1e6, b: 1.0 };
        assert_eq!(m.predict_floor(10), i128::MAX);
        let m = Model::Linear {
            theta0: f64::NAN,
            theta1: 0.0,
        };
        assert_eq!(m.predict_floor(0), 0);
    }

    #[test]
    fn model_sizes() {
        assert_eq!(Model::Constant { value: 0.0 }.size_bytes(), 9);
        assert_eq!(
            Model::Linear {
                theta0: 0.0,
                theta1: 0.0
            }
            .size_bytes(),
            17
        );
        assert_eq!(
            Model::Poly {
                coeffs: vec![0.0; 4]
            }
            .size_bytes(),
            1 + 1 + 32
        );
        let sine = Model::Sine {
            theta0: 0.0,
            theta1: 0.0,
            terms: vec![SineTerm {
                omega: 1.0,
                a_sin: 0.0,
                a_cos: 0.0,
            }],
        };
        assert_eq!(sine.size_bytes(), 1 + 16 + 1 + 24);
    }

    #[test]
    fn kind_round_trips() {
        assert_eq!(
            Model::Constant { value: 1.0 }.kind(),
            RegressorKind::Constant
        );
        assert_eq!(
            Model::Poly {
                coeffs: vec![0.0; 4]
            }
            .kind(),
            RegressorKind::Poly3
        );
    }

    /// Reference implementation of the band predicate for `invert_range`
    /// tests: classify every row by brute force from the model alone.
    fn brute_bands(m: &Model, len: usize, bias: i128, width: u8, lo: u64, hi: u64) -> SlackBands {
        let slack: i128 = if width >= 64 {
            u64::MAX as i128
        } else {
            ((1u64 << width) - 1) as i128
        };
        let (mut c_lo, mut c_hi, mut d_lo, mut d_hi) = (len, 0usize, len, 0usize);
        for i in 0..len {
            let band_lo = m.predict_floor(i) + bias;
            let band_hi = band_lo + slack;
            if band_hi >= lo as i128 && band_lo <= hi as i128 {
                c_lo = c_lo.min(i);
                c_hi = c_hi.max(i + 1);
            }
            if band_lo >= lo as i128 && band_hi <= hi as i128 {
                d_lo = d_lo.min(i);
                d_hi = d_hi.max(i + 1);
            }
        }
        let candidate = if c_lo < c_hi { c_lo..c_hi } else { 0..0 };
        let definite = if d_lo < d_hi { d_lo..d_hi } else { 0..0 };
        SlackBands {
            candidate,
            definite,
        }
    }

    #[test]
    fn invert_range_matches_brute_force() {
        let models = [
            Model::Constant { value: 1_000.0 },
            Model::Linear {
                theta0: 50.0,
                theta1: 3.25,
            },
            Model::Linear {
                theta0: 10_000.0,
                theta1: -7.5,
            },
            Model::Linear {
                theta0: 123.0,
                theta1: 0.0,
            },
        ];
        for m in &models {
            for len in [0usize, 1, 2, 63, 100] {
                for width in [0u8, 1, 4, 13] {
                    for bias in [-37i128, 0, 12] {
                        for (lo, hi) in [
                            (0u64, u64::MAX),
                            (0, 0),
                            (900, 1_100),
                            (1_000, 1_000),
                            (40, 60),
                            (9_000, 10_001),
                        ] {
                            let got = m.invert_range(len, bias, width, lo, hi).unwrap();
                            let want = brute_bands(m, len, bias, width, lo, hi);
                            // The brute-force candidate is exact; the search
                            // result must agree exactly on both intervals
                            // (modulo empty-range representation).
                            let got_cand = if got.candidate.is_empty() {
                                0..0
                            } else {
                                got.candidate.clone()
                            };
                            assert_eq!(
                                got_cand, want.candidate,
                                "candidate {m:?} len={len} w={width} bias={bias} [{lo},{hi}]"
                            );
                            let got_def = if got.definite.is_empty() {
                                0..0
                            } else {
                                got.definite.clone()
                            };
                            assert_eq!(
                                got_def, want.definite,
                                "definite {m:?} len={len} w={width} bias={bias} [{lo},{hi}]"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn invert_range_only_for_monotone_families() {
        assert!(Model::Constant { value: 5.0 }.monotone().is_some());
        assert_eq!(
            Model::Linear {
                theta0: 0.0,
                theta1: -1.0
            }
            .monotone(),
            Some(Monotone::NonIncreasing)
        );
        for m in [
            Model::Poly {
                coeffs: vec![1.0, 2.0, 3.0],
            },
            Model::Exponential { ln_a: 0.1, b: 0.2 },
            Model::Logarithm {
                theta0: 1.0,
                theta1: 2.0,
            },
            Model::Sine {
                theta0: 0.0,
                theta1: 1.0,
                terms: vec![],
            },
            Model::Linear {
                theta0: f64::NAN,
                theta1: 1.0,
            },
        ] {
            assert!(m.monotone().is_none(), "{m:?}");
            assert!(m.invert_range(10, 0, 4, 0, 100).is_none(), "{m:?}");
        }
    }

    #[test]
    fn invert_range_zero_width_has_no_boundary() {
        // Perfectly predicted partition: candidate == definite, so pushdown
        // decodes nothing at all.
        let m = Model::Linear {
            theta0: 0.0,
            theta1: 2.0,
        };
        let bands = m.invert_range(100, 0, 0, 10, 21).unwrap();
        assert_eq!(bands.candidate, bands.definite);
        assert_eq!(bands.candidate, 5..11); // values 10,12,...,20
    }

    #[test]
    fn sine_model_periodicity() {
        let m = Model::Sine {
            theta0: 0.0,
            theta1: 0.0,
            terms: vec![SineTerm {
                omega: std::f64::consts::PI,
                a_sin: 1.0,
                a_cos: 0.0,
            }],
        };
        assert!((m.predict(0) - 0.0).abs() < 1e-9);
        assert!((m.predict(1) - 0.0).abs() < 1e-9); // sin(pi) ≈ 0
    }
}
