//! Regression models and their serialized representation.
//!
//! A [`Model`] maps a *local position* inside a partition (0-based) to a
//! predicted value.  The decoder recovers the original value as
//! `floor(prediction) + bias + packed_delta`, so the only requirement on a
//! model is that encoder and decoder evaluate it bit-identically — which they
//! do, because both use the same `f64` arithmetic on the same parameters.

use serde::{Deserialize, Serialize};

/// The regressor family requested in a [`crate::LecoConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegressorKind {
    /// Horizontal line (Frame-of-Reference).
    Constant,
    /// Straight line `θ0 + θ1·i` (the LeCo default).
    Linear,
    /// Polynomial of degree ≤ 2.
    Poly2,
    /// Polynomial of degree ≤ 3.
    Poly3,
    /// Exponential `exp(θ0 + θ1·i)`.
    Exponential,
    /// Logarithmic `θ0 + θ1·ln(i + 1)`.
    Logarithm,
    /// Linear trend plus `terms` sine components with learned frequencies.
    Sine {
        /// Number of sine terms (1 or 2 in the paper's cosmos experiment).
        terms: u8,
        /// If `true` the frequencies are estimated from the data
        /// (the paper's `2sin`); if `false` the caller supplies them
        /// via [`crate::regressor::FitContext`] (`2sin-freq`).
        estimate_freq: bool,
    },
    /// Let the Hyper-parameter Advisor's Regressor Selector choose per
    /// partition among {Constant, Linear, Poly2, Poly3, Exponential,
    /// Logarithm}.
    Auto,
}

/// One sine component of a [`Model::Sine`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SineTerm {
    /// Angular frequency (radians per position).
    pub omega: f64,
    /// Coefficient of `sin(omega · i)`.
    pub a_sin: f64,
    /// Coefficient of `cos(omega · i)`.
    pub a_cos: f64,
}

/// A fitted model for one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Model {
    /// `pred(i) = value` — Frame-of-Reference / RLE.
    Constant {
        /// The constant prediction.
        value: f64,
    },
    /// `pred(i) = theta0 + theta1 · i`.
    Linear {
        /// Intercept.
        theta0: f64,
        /// Slope.
        theta1: f64,
    },
    /// `pred(i) = Σ coeffs[k] · i^k`.
    Poly {
        /// Coefficients from degree 0 upwards (length 3 or 4).
        coeffs: Vec<f64>,
    },
    /// `pred(i) = exp(ln_a + b · i)`.
    Exponential {
        /// Log of the scale factor.
        ln_a: f64,
        /// Growth rate.
        b: f64,
    },
    /// `pred(i) = theta0 + theta1 · ln(i + 1)`.
    Logarithm {
        /// Intercept.
        theta0: f64,
        /// Log coefficient.
        theta1: f64,
    },
    /// `pred(i) = theta0 + theta1 · i + Σ_t a_sin·sin(ω·i) + a_cos·cos(ω·i)`.
    Sine {
        /// Intercept.
        theta0: f64,
        /// Linear trend.
        theta1: f64,
        /// Sinusoidal components.
        terms: Vec<SineTerm>,
    },
}

impl Model {
    /// Evaluate the model at local position `i`.
    #[inline]
    pub fn predict(&self, i: usize) -> f64 {
        let x = i as f64;
        match self {
            Model::Constant { value } => *value,
            Model::Linear { theta0, theta1 } => theta0 + theta1 * x,
            Model::Poly { coeffs } => {
                // Horner evaluation.
                let mut acc = 0.0;
                for &c in coeffs.iter().rev() {
                    acc = acc * x + c;
                }
                acc
            }
            Model::Exponential { ln_a, b } => (ln_a + b * x).exp(),
            Model::Logarithm { theta0, theta1 } => theta0 + theta1 * (x + 1.0).ln(),
            Model::Sine {
                theta0,
                theta1,
                terms,
            } => {
                let mut acc = theta0 + theta1 * x;
                for t in terms {
                    acc += t.a_sin * (t.omega * x).sin() + t.a_cos * (t.omega * x).cos();
                }
                acc
            }
        }
    }

    /// Integer prediction used by the storage format: `floor(predict(i))`
    /// clamped into the `i128` range that deltas are computed in.
    #[inline]
    pub fn predict_floor(&self, i: usize) -> i128 {
        let p = self.predict(i).floor();
        if p.is_nan() {
            0
        } else if p >= i128::MAX as f64 {
            i128::MAX
        } else if p <= i128::MIN as f64 {
            i128::MIN
        } else {
            p as i128
        }
    }

    /// Serialized size of the model parameters in bytes (1 tag byte plus the
    /// parameters).  This is the `‖F_j‖` term of the paper's objective.
    pub fn size_bytes(&self) -> usize {
        1 + match self {
            Model::Constant { .. } => 8,
            Model::Linear { .. } => 16,
            Model::Poly { coeffs } => 1 + coeffs.len() * 8,
            Model::Exponential { .. } => 16,
            Model::Logarithm { .. } => 16,
            Model::Sine { terms, .. } => 16 + 1 + terms.len() * 24,
        }
    }

    /// Size in bits (convenience for the partitioning cost model).
    pub fn size_bits(&self) -> usize {
        self.size_bytes() * 8
    }

    /// The family this model belongs to.
    pub fn kind(&self) -> RegressorKind {
        match self {
            Model::Constant { .. } => RegressorKind::Constant,
            Model::Linear { .. } => RegressorKind::Linear,
            Model::Poly { coeffs } if coeffs.len() <= 3 => RegressorKind::Poly2,
            Model::Poly { .. } => RegressorKind::Poly3,
            Model::Exponential { .. } => RegressorKind::Exponential,
            Model::Logarithm { .. } => RegressorKind::Logarithm,
            Model::Sine { terms, .. } => RegressorKind::Sine {
                terms: terms.len() as u8,
                estimate_freq: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_prediction() {
        let m = Model::Linear {
            theta0: 10.0,
            theta1: 2.5,
        };
        assert_eq!(m.predict(0), 10.0);
        assert_eq!(m.predict(4), 20.0);
        assert_eq!(m.predict_floor(3), 17); // 17.5 -> 17
    }

    #[test]
    fn poly_horner_matches_direct() {
        let m = Model::Poly {
            coeffs: vec![1.0, 2.0, 3.0],
        }; // 1 + 2x + 3x²
        for i in 0..20 {
            let x = i as f64;
            assert!((m.predict(i) - (1.0 + 2.0 * x + 3.0 * x * x)).abs() < 1e-9);
        }
    }

    #[test]
    fn predict_floor_clamps_extremes() {
        let m = Model::Exponential { ln_a: 1e6, b: 1.0 };
        assert_eq!(m.predict_floor(10), i128::MAX);
        let m = Model::Linear {
            theta0: f64::NAN,
            theta1: 0.0,
        };
        assert_eq!(m.predict_floor(0), 0);
    }

    #[test]
    fn model_sizes() {
        assert_eq!(Model::Constant { value: 0.0 }.size_bytes(), 9);
        assert_eq!(
            Model::Linear {
                theta0: 0.0,
                theta1: 0.0
            }
            .size_bytes(),
            17
        );
        assert_eq!(
            Model::Poly {
                coeffs: vec![0.0; 4]
            }
            .size_bytes(),
            1 + 1 + 32
        );
        let sine = Model::Sine {
            theta0: 0.0,
            theta1: 0.0,
            terms: vec![SineTerm {
                omega: 1.0,
                a_sin: 0.0,
                a_cos: 0.0,
            }],
        };
        assert_eq!(sine.size_bytes(), 1 + 16 + 1 + 24);
    }

    #[test]
    fn kind_round_trips() {
        assert_eq!(
            Model::Constant { value: 1.0 }.kind(),
            RegressorKind::Constant
        );
        assert_eq!(
            Model::Poly {
                coeffs: vec![0.0; 4]
            }
            .kind(),
            RegressorKind::Poly3
        );
    }

    #[test]
    fn sine_model_periodicity() {
        let m = Model::Sine {
            theta0: 0.0,
            theta1: 0.0,
            terms: vec![SineTerm {
                omega: std::f64::consts::PI,
                a_sin: 1.0,
                a_cos: 0.0,
            }],
        };
        assert!((m.predict(0) - 0.0).abs() < 1e-9);
        assert!((m.predict(1) - 0.0).abs() < 1e-9); // sin(pi) ≈ 0
    }
}
