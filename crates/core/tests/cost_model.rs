//! The partitioner's objective must be the encoder's output: these tests
//! reconcile `partition::exact_cost_bits` (the oracle the split–merge and
//! DP partitioners minimise) against the bytes `CompressedColumn::to_bytes`
//! actually produces, and pin the headline regression the exact cost model
//! fixed — `leco_var` beating `leco_fix` on the quickstart's 1M-row
//! timestamp column instead of losing to it.

use leco_core::partition::exact_cost_bits;
use leco_core::{LecoCompressor, LecoConfig, PartitionerKind, RegressorKind};

/// The quickstart's "sorted timestamps with bursts" column — the canonical
/// generator, shared with `repro_fig16_partitioners` and the bench gate.
fn timestamps(n: usize) -> Vec<u64> {
    leco_datasets::generate(leco_datasets::IntDataset::Timestamps, n, 42)
}

/// Synthetic families with qualitatively different residual behaviour.
fn families(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let noisy_linear = (0..n as u64)
        .map(|i| 5_000 + 37 * i + (i * 2654435761) % 1024)
        .collect();
    let piecewise = (0..n as u64)
        .map(|i| {
            let seg = i / 700;
            seg * seg * 100_000 + (i % 700) * (seg % 5 + 1)
        })
        .collect();
    let random_walk = {
        let mut v: i64 = 1 << 40;
        let mut out = Vec::with_capacity(n);
        let mut state = 88172645463325252u64;
        for _ in 0..n {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v += (state % 2_001) as i64 - 1_000;
            out.push(v as u64);
        }
        out
    };
    // Spans > 4e18 inside one partition, putting decode on the
    // θ₁-accumulation fallback path: correction lists are live here.
    let wide_range = (0..n as u64).map(|i| i * 400_000_000_000_000).collect();
    vec![
        ("timestamps", timestamps(n)),
        ("noisy_linear", noisy_linear),
        ("piecewise", piecewise),
        ("random_walk", random_walk),
        ("wide_range", wide_range),
    ]
}

/// Modelled cost vs encoded size, within 2%: for every partition layout the
/// compressor actually chooses (variable-length and a spread of fixed
/// lengths standing in for arbitrary cuts), the sum of per-partition
/// `exact_cost_bits` must reproduce `to_bytes().len()` up to the global
/// file header and final-word padding.
#[test]
fn modelled_cost_matches_encoded_bytes_within_2_percent() {
    let n = 40_000;
    let layouts = [
        PartitionerKind::SplitMerge { tau: 0.1 },
        PartitionerKind::Fixed { len: 61 },
        PartitionerKind::Fixed { len: 500 },
        PartitionerKind::Fixed { len: 4_096 },
        PartitionerKind::Fixed { len: 17_111 },
    ];
    for (name, values) in families(n) {
        for partitioner in &layouts {
            let col = LecoCompressor::new(LecoConfig {
                regressor: RegressorKind::Linear,
                partitioner: partitioner.clone(),
            })
            .compress(&values);
            let modelled: usize = col
                .partition_spans()
                .map(|(start, len)| {
                    exact_cost_bits(&values[start..start + len], RegressorKind::Linear)
                })
                .sum();
            let actual = col.size_bytes() * 8;
            assert!(
                modelled <= actual,
                "{name}/{partitioner:?}: the model must not over-charge \
                 (modelled {modelled} vs actual {actual})"
            );
            let slack = actual - modelled;
            // File header + payload-length varint + final-word padding only.
            let allowance = (actual / 50).max(64 * 8);
            assert!(
                slack <= allowance,
                "{name}/{partitioner:?}: modelled {modelled} vs actual {actual} \
                 ({slack} bits unaccounted, > {allowance} allowed)"
            );
        }
    }
}

/// The headline fix: on the quickstart's 1M-row timestamp column the
/// variable-length partitioner must compress at least as well as the
/// fixed-length one.  Before the correction-aware cost model (and the
/// format-v2 elision of never-read correction lists) it compressed *worse*
/// — 10.9% vs 6.2% — inverting the paper's result.
#[test]
fn leco_var_beats_leco_fix_on_quickstart_timestamp_column() {
    let values = timestamps(1_000_000);
    let fix = LecoCompressor::new(LecoConfig::leco_fix()).compress(&values);
    let var = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
    assert!(
        var.compression_ratio() <= fix.compression_ratio(),
        "leco_var {:.2}% must not exceed leco_fix {:.2}%",
        var.compression_ratio() * 100.0,
        fix.compression_ratio() * 100.0
    );
    // Both stay lossless while doing so.
    assert_eq!(var.decode_all(), values);
    assert_eq!(fix.decode_all(), values);
}

/// The DP optimum and the greedy result are priced by the same oracle, so
/// the greedy gap stays small on timestamp-like data too (§3.2.2's claim).
#[test]
fn greedy_gap_vs_dp_on_timestamps_is_small() {
    let values = timestamps(1_500);
    let greedy =
        leco_core::partition::split_merge::split_merge(&values, RegressorKind::Linear, 0.05);
    let optimal = leco_core::partition::dp::optimal_partitions(&values, RegressorKind::Linear);
    let g = leco_core::partition::dp::total_cost_bits(&values, &greedy, RegressorKind::Linear);
    let o = leco_core::partition::dp::total_cost_bits(&values, &optimal, RegressorKind::Linear);
    assert!(
        g as f64 <= o as f64 * 1.10,
        "greedy {g} bits vs DP optimum {o} bits"
    );
}
