//! Executable companion to `docs/FORMAT.md`: parses a serialized column with
//! an independent re-implementation of the documented byte layout — fixed
//! header offsets, varints, zigzag bias, model records, derived bit offsets —
//! and reconstructs every value from the parsed pieces.  If the format drifts
//! from its specification, this test fails.

use leco_core::{CompressedColumn, LecoCompressor, LecoConfig};

/// LEB128 varint as specified in FORMAT.md §Conventions.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u128 {
    let mut v: u128 = 0;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        assert!(shift < 133, "varint longer than the documented maximum");
        v |= ((byte & 0x7F) as u128) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

fn read_f64(bytes: &[u8], pos: &mut usize) -> f64 {
    let v = f64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    v
}

/// A partition record parsed per FORMAT.md §Partition table.
struct SpecPartition {
    len: usize,
    model: SpecModel,
    bias: i128,
    width: u8,
    corrections: Vec<u32>,
}

enum SpecModel {
    Constant(f64),
    Linear(f64, f64),
    Poly(Vec<f64>),
    Exponential(f64, f64),
    Logarithm(f64, f64),
    Sine(f64, f64, Vec<(f64, f64, f64)>),
}

impl SpecModel {
    /// FORMAT.md §Partition table: the correction block is present iff the
    /// model is Linear and the θ₁-accumulation fallback decode would be
    /// taken — the predictions are not certain to stay inside ±4.0e18
    /// (< 2^62) over the whole partition.
    fn has_correction_block(&self, len: usize) -> bool {
        let SpecModel::Linear(t0, t1) = self else {
            return false;
        };
        const LIMIT: f64 = 4.0e18;
        let last = t0 + t1 * (len as f64 - 1.0).max(0.0);
        !(t0.is_finite() && last.is_finite() && t0.abs() < LIMIT && last.abs() < LIMIT)
    }

    fn predict(&self, i: usize) -> f64 {
        let x = i as f64;
        match self {
            SpecModel::Constant(v) => *v,
            SpecModel::Linear(t0, t1) => t0 + t1 * x,
            SpecModel::Poly(coeffs) => coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c),
            SpecModel::Exponential(ln_a, b) => (ln_a + b * x).exp(),
            SpecModel::Logarithm(t0, t1) => t0 + t1 * (x + 1.0).ln(),
            SpecModel::Sine(t0, t1, terms) => {
                let mut acc = t0 + t1 * x;
                for (omega, a_sin, a_cos) in terms {
                    acc += a_sin * (omega * x).sin() + a_cos * (omega * x).cos();
                }
                acc
            }
        }
    }

    fn predict_floor(&self, i: usize) -> i128 {
        let p = self.predict(i).floor();
        if p.is_nan() {
            0
        } else if p >= i128::MAX as f64 {
            i128::MAX
        } else if p <= i128::MIN as f64 {
            i128::MIN
        } else {
            p as i128
        }
    }
}

fn read_model(bytes: &[u8], pos: &mut usize) -> SpecModel {
    let tag = bytes[*pos];
    *pos += 1;
    match tag {
        0 => SpecModel::Constant(read_f64(bytes, pos)),
        1 => SpecModel::Linear(read_f64(bytes, pos), read_f64(bytes, pos)),
        2 => {
            let k = bytes[*pos] as usize;
            *pos += 1;
            assert!(k <= 8, "FORMAT.md caps the polynomial degree at 8");
            SpecModel::Poly((0..k).map(|_| read_f64(bytes, pos)).collect())
        }
        3 => SpecModel::Exponential(read_f64(bytes, pos), read_f64(bytes, pos)),
        4 => SpecModel::Logarithm(read_f64(bytes, pos), read_f64(bytes, pos)),
        5 => {
            let t0 = read_f64(bytes, pos);
            let t1 = read_f64(bytes, pos);
            let k = bytes[*pos] as usize;
            *pos += 1;
            assert!(k <= 8, "FORMAT.md caps the sine term count at 8");
            SpecModel::Sine(
                t0,
                t1,
                (0..k)
                    .map(|_| {
                        (
                            read_f64(bytes, pos),
                            read_f64(bytes, pos),
                            read_f64(bytes, pos),
                        )
                    })
                    .collect(),
            )
        }
        other => panic!("unknown model tag {other}"),
    }
}

/// Parse a serialized column strictly following FORMAT.md, returning the
/// decoded values (reconstructed with exact model evaluation).
fn decode_per_spec(bytes: &[u8]) -> Vec<u64> {
    // Header: fixed offsets documented in FORMAT.md §Header.
    assert_eq!(&bytes[0..4], b"LECO", "magic at offset 0");
    assert_eq!(bytes[4], 2, "version at offset 4");
    let flags = bytes[5];
    let _value_width = bytes[6];
    let mut pos = 7usize;
    let len = read_varint(bytes, &mut pos) as usize;
    let num_partitions = read_varint(bytes, &mut pos) as usize;
    let fixed_len = if flags & 1 != 0 {
        Some(read_varint(bytes, &mut pos) as usize)
    } else {
        None
    };

    let mut partitions = Vec::with_capacity(num_partitions);
    for _ in 0..num_partitions {
        let plen = read_varint(bytes, &mut pos) as usize;
        let model = read_model(bytes, &mut pos);
        let bias = unzigzag(read_varint(bytes, &mut pos));
        let width = bytes[pos];
        pos += 1;
        assert!(width <= 64, "width must be 0..=64");
        // v2: the correction block only exists when the accumulation
        // fallback decoder would consult it.
        let mut corrections = Vec::new();
        if model.has_correction_block(plen) {
            let n_corr = read_varint(bytes, &mut pos) as usize;
            assert!(n_corr <= plen, "corrections bounded by partition length");
            corrections.reserve(n_corr);
            let mut prev = 0u32;
            for _ in 0..n_corr {
                prev += read_varint(bytes, &mut pos) as u32;
                corrections.push(prev);
            }
        }
        partitions.push(SpecPartition {
            len: plen,
            model,
            bias,
            width,
            corrections,
        });
    }
    assert_eq!(
        partitions.iter().map(|p| p.len).sum::<usize>(),
        len,
        "partition lengths sum to the column length"
    );
    if let Some(l) = fixed_len {
        for p in &partitions[..partitions.len().saturating_sub(1)] {
            assert_eq!(p.len, l, "FIXED flag implies uniform partition lengths");
        }
    }

    // Payload: varint bit count, then whole little-endian u64 words.
    let payload_bits = read_varint(bytes, &mut pos) as usize;
    assert_eq!(
        payload_bits,
        partitions
            .iter()
            .map(|p| p.len * p.width as usize)
            .sum::<usize>(),
        "payload_bits equals the derived sum of len·width"
    );
    let n_words = payload_bits.div_ceil(64);
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()));
        pos += 8;
    }
    assert_eq!(pos, bytes.len(), "no trailing bytes");

    // Reconstruct values from the derived bit offsets.  Exact model
    // evaluation is used throughout, so the correction list (which only
    // patches the θ₁-accumulation shortcut) just has to be well formed.
    let mut out = Vec::with_capacity(len);
    let mut bit_offset = 0usize;
    for p in &partitions {
        assert!(
            p.corrections.windows(2).all(|w| w[0] < w[1])
                && p.corrections.iter().all(|&c| (c as usize) < p.len),
            "corrections are strictly increasing local positions"
        );
        for local in 0..p.len {
            let packed = leco_bitpack::stream::read_bits(
                &words,
                bit_offset + local * p.width as usize,
                p.width,
            );
            out.push((p.model.predict_floor(local) + p.bias + packed as i128) as u64);
        }
        bit_offset += p.len * p.width as usize;
    }
    out
}

#[test]
fn spec_parser_decodes_fixed_partition_column() {
    // Noisy piecewise data: non-zero widths, non-trivial biases.
    let values: Vec<u64> = (0..3_000u64)
        .map(|i| 1_000 + i * 7 + (i * i) % 23)
        .collect();
    let col = LecoCompressor::new(LecoConfig::leco_fix_with_len(256)).compress(&values);
    let bytes = col.to_bytes();
    assert_eq!(bytes.len(), col.size_bytes(), "size accounting is exact");
    assert_eq!(decode_per_spec(&bytes), values);
    assert_eq!(
        CompressedColumn::from_bytes(&bytes).unwrap().decode_all(),
        values
    );
}

#[test]
fn spec_parser_decodes_variable_partition_column() {
    let values: Vec<u64> = (0..4_000u64)
        .map(|i| {
            if i % 900 < 450 {
                i * 3
            } else {
                500_000 + i * 11
            }
        })
        .collect();
    let col = LecoCompressor::new(LecoConfig::leco_var()).compress(&values);
    let bytes = col.to_bytes();
    // Variable partitions must not set the FIXED flag.
    assert_eq!(bytes[5] & 1, 0, "flags at offset 5");
    assert_eq!(decode_per_spec(&bytes), values);
}

#[test]
fn worked_example_offsets_match_format_md() {
    // The exact column from FORMAT.md §Worked example.
    let values: Vec<u64> = (0..300u64).map(|i| 1_000 + 3 * i).collect();
    let bytes = LecoCompressor::new(LecoConfig::leco_fix_with_len(128))
        .compress(&values)
        .to_bytes();
    assert_eq!(&bytes[0x00..0x04], b"LECO");
    assert_eq!(bytes[0x04], 2, "version");
    assert_eq!(bytes[0x05], 1, "FIXED flag");
    assert_eq!(bytes[0x06], 8, "value_width");
    assert_eq!(&bytes[0x07..0x09], &[0xAC, 0x02], "len = 300 varint");
    assert_eq!(bytes[0x09], 3, "num_partitions");
    assert_eq!(&bytes[0x0A..0x0C], &[0x80, 0x01], "fixed_len = 128 varint");
    assert_eq!(&bytes[0x0C..0x0E], &[0x80, 0x01], "partition 0 len = 128");
    assert_eq!(bytes[0x0E], 1, "Linear model tag");
    let theta0 = f64::from_le_bytes(bytes[0x0F..0x17].try_into().unwrap());
    let theta1 = f64::from_le_bytes(bytes[0x17..0x1F].try_into().unwrap());
    assert_eq!(
        theta0, 0.0,
        "the model predicts offsets; the anchor is bias"
    );
    assert_eq!(theta1, 3.0, "slope");
    assert_eq!(
        &bytes[0x1F..0x21],
        &[0xD0, 0x0F],
        "bias = 1000 zigzag varint"
    );
    assert_eq!(bytes[0x21], 0, "width = 0: perfectly predicted");
    // No correction block: this model stays on the fast path, and v2 elides
    // the block entirely (v1 spent a zero byte here).
    assert_eq!(&bytes[0x22..0x24], &[0x80, 0x01], "partition 1 len = 128");
    assert_eq!(bytes.len(), 0x4E, "78 bytes total");
    assert_eq!(bytes[0x4D], 0, "payload_bits = 0, no words");
    assert_eq!(decode_per_spec(&bytes), values);
}
