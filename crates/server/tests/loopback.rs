//! Loopback integration tests: a real [`Server`] on an OS-assigned port,
//! real [`Client`] connections, and the full frame → parse → shard →
//! merge → reply path.
//!
//! The heavyweight check is [`scan_over_tcp_bit_identical_across_shard_counts`]:
//! the same queries answered by a 1-, 2- and 4-shard server and by an
//! in-process [`leco_scan::Scanner`] over the unsharded table must agree
//! on every result bit, including the f64 group averages.

use leco_bench::report::Json;
use leco_columnar::{Encoding, TableFile, TableFileOptions};
use leco_ingest::IngestConfig;
use leco_scan::Scanner;
use leco_server::protocol::response_code;
use leco_server::{shard_for_key, Client, Server, ServerConfig, ShardSetBuilder};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leco-loopback-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn table_options() -> TableFileOptions {
    TableFileOptions {
        encoding: Encoding::Leco,
        row_group_size: 4096,
        ..Default::default()
    }
}

/// `rows`-row test table: a sorted-ish `ts`, a small-cardinality `id`, and
/// a correlated `val` — enough structure for LeCo encoding and group-by.
fn test_columns(rows: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let ts: Vec<u64> = (0..rows).map(|i| 1_000 + i * 3 + (i * i) % 7).collect();
    let id: Vec<u64> = (0..rows).map(|i| (i * 2_654_435_761) % 13).collect();
    let val: Vec<u64> = (0..rows).map(|i| 500 + (i * 37) % 10_000).collect();
    (ts, id, val)
}

fn test_records(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| {
            (
                format!("key{i:06}").into_bytes(),
                format!("value-{i}").into_bytes(),
            )
        })
        .collect()
}

fn start_server(dir: &PathBuf, shards: usize, rows: u64, records: usize) -> Server {
    let (ts, id, val) = test_columns(rows);
    let set = ShardSetBuilder::new(dir, shards)
        .table_options(table_options())
        .table("sensors", &["ts", "id", "val"], vec![ts, id, val])
        .records(test_records(records))
        .build()
        .expect("fixture builds");
    Server::start(set, ServerConfig::default()).expect("server starts")
}

fn get_value(reply: &Json) -> Option<String> {
    assert_eq!(response_code(reply), 200, "GET failed: {}", reply.render());
    if reply.get("found") == Some(&Json::Bool(true)) {
        reply
            .get("value")
            .and_then(Json::as_str)
            .map(str::to_string)
    } else {
        None
    }
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let dir = tmp_dir("pipeline");
    let server = start_server(&dir, 2, 5_000, 500);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Queue a burst of requests — more than one batch — before reading
    // anything.  Replies must come back in request order even though the
    // keys route to different shards.
    let n = 200usize;
    for i in 0..n {
        match i % 3 {
            0 => client.send(&format!("GET key{:06}", i % 500)).unwrap(),
            1 => client.send(&format!("GET nosuchkey{i}")).unwrap(),
            _ => client
                .send(&format!("MGET key{:06} key{:06}", i % 500, (i + 1) % 500))
                .unwrap(),
        }
    }
    for i in 0..n {
        let reply = client.recv().unwrap();
        match i % 3 {
            0 => assert_eq!(
                get_value(&reply).as_deref(),
                Some(format!("value-{}", i % 500).as_str()),
                "request {i}"
            ),
            1 => assert_eq!(get_value(&reply), None, "request {i}"),
            _ => {
                assert_eq!(response_code(&reply), 200, "request {i}");
                let values = reply.get("values").and_then(Json::as_arr).unwrap();
                assert_eq!(values.len(), 2);
                assert_eq!(
                    values[0].get("value").and_then(Json::as_str),
                    Some(format!("value-{}", i % 500).as_str()),
                    "request {i}"
                );
            }
        }
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_connections_hit_different_shards() {
    let dir = tmp_dir("concurrent");
    let shards = 4;
    let server = start_server(&dir, shards, 20_000, 2_000);
    let addr = server.local_addr();

    // Each worker thread pins its GETs to one shard's keys, so all four
    // shards serve point lookups while the scans fan out over everything.
    std::thread::scope(|scope| {
        for worker in 0..8usize {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let my_shard = worker % shards;
                let my_keys: Vec<usize> = (0..2_000)
                    .filter(|i| shard_for_key(format!("key{i:06}").as_bytes(), shards) == my_shard)
                    .collect();
                assert!(!my_keys.is_empty(), "shard {my_shard} owns no keys");
                for (j, &i) in my_keys.iter().enumerate().take(100) {
                    let reply = client.request(&format!("GET key{i:06}")).unwrap();
                    assert_eq!(
                        get_value(&reply).as_deref(),
                        Some(format!("value-{i}").as_str())
                    );
                    if j % 25 == 0 {
                        let scan = client.request("SCAN sensors FILTER ts 1000 20000").unwrap();
                        assert_eq!(response_code(&scan), 200);
                        assert_eq!(scan.get("shards").and_then(Json::as_f64), Some(4.0));
                    }
                }
            });
        }
    });
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_get_errors_and_the_connection_survives() {
    let dir = tmp_dir("malformed");
    let server = start_server(&dir, 2, 5_000, 100);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Every malformed payload answers 400 — and the connection keeps
    // working afterwards.
    for bad in [
        &b""[..],                                  // empty frame
        b"FROBNICATE now",                         // unknown command
        b"GET",                                    // missing key
        b"MGET",                                   // no keys
        b"SCAN",                                   // no table
        b"SCAN sensors FILTER ts 9 x",             // non-numeric bound
        b"SCAN sensors GROUPBY id AGG median val", // unsupported aggregate
        b"\xff\xfe\x00garbage",                    // invalid UTF-8
    ] {
        client.send_payload(bad).unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(response_code(&reply), 400, "payload {bad:?}");
    }
    // Well-formed frame, bad semantics: unknown table is 400 from the
    // manifest check; unknown column is 400 from the shard.
    for bad in ["SCAN nosuchtable", "SCAN sensors FILTER nosuchcol 1 2"] {
        let reply = client.request(bad).unwrap();
        assert_eq!(response_code(&reply), 400, "{bad}");
    }
    // The same connection still answers real requests.
    let reply = client.request("GET key000042").unwrap();
    assert_eq!(get_value(&reply).as_deref(), Some("value-42"));

    // A corrupt frame *length* is the one unrecoverable case: the server
    // answers 400 and closes, because the stream cannot be resynchronised.
    let mut corrupt = Client::connect(server.local_addr()).unwrap();
    corrupt.send_raw(&(u32::MAX).to_le_bytes()).unwrap();
    let reply = corrupt.recv().unwrap();
    assert_eq!(response_code(&reply), 400);
    assert!(corrupt.recv().is_err(), "connection should be closed");

    // ... and the first connection is still unaffected.
    let reply = client.request("GET key000007").unwrap();
    assert_eq!(get_value(&reply).as_deref(), Some("value-7"));
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_over_tcp_bit_identical_across_shard_counts() {
    let rows = 30_000u64;
    let (ts, id, val) = test_columns(rows);

    // Ground truth: one unsharded table file scanned in-process.
    let truth_dir = tmp_dir("scan-truth");
    std::fs::create_dir_all(&truth_dir).unwrap();
    let truth_file = TableFile::write(
        truth_dir.join("sensors.tbl"),
        &["ts", "id", "val"],
        &[ts.clone(), id.clone(), val.clone()],
        table_options(),
    )
    .unwrap();

    // (filter, aggregate) matrix: count, sum and group-by-avg, filtered
    // and unfiltered, including an empty-result window.
    let filters: [Option<(u64, u64)>; 3] = [None, Some((20_000, 55_000)), Some((2, 7))];
    for shards in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("scan-{shards}"));
        let set = ShardSetBuilder::new(&dir, shards)
            .table_options(table_options())
            .table(
                "sensors",
                &["ts", "id", "val"],
                vec![ts.clone(), id.clone(), val.clone()],
            )
            .records(test_records(10))
            .build()
            .unwrap();
        let server = Server::start(set, ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        for filter in filters {
            let clause = filter
                .map(|(lo, hi)| format!(" FILTER ts {lo} {hi}"))
                .unwrap_or_default();

            // COUNT: selected-row cardinality must match exactly.
            let expect = || {
                let scan = Scanner::new(&truth_file);
                match filter {
                    Some((lo, hi)) => scan.filter("ts", lo, hi),
                    None => scan,
                }
            };
            let truth = expect().run(2).unwrap();
            let reply = client.request(&format!("SCAN sensors{clause}")).unwrap();
            assert_eq!(response_code(&reply), 200, "{}", reply.render());
            assert_eq!(
                reply.get("rows_selected").and_then(Json::as_f64),
                Some(truth.rows_selected as f64),
                "count, {shards} shard(s), filter {filter:?}"
            );

            // SUM: the u128 travels as a decimal string, compared textually.
            let truth = expect().sum("val").run(2).unwrap();
            let reply = client
                .request(&format!("SCAN sensors{clause} SUM val"))
                .unwrap();
            assert_eq!(
                reply.get("sum").and_then(Json::as_str),
                Some(truth.sum.to_string().as_str()),
                "sum, {shards} shard(s), filter {filter:?}"
            );

            // GROUP BY … AVG: every f64 average must be bit-identical to
            // the single-scan result after its JSON round-trip.
            let truth = expect().group_by_avg("id", "val").run(2).unwrap();
            let reply = client
                .request(&format!("SCAN sensors{clause} GROUPBY id AGG avg val"))
                .unwrap();
            let groups = reply.get("groups").and_then(Json::as_arr).unwrap();
            assert_eq!(
                groups.len(),
                truth.groups.len(),
                "groups, {shards} shard(s), filter {filter:?}"
            );
            for (got, &(want_id, want_avg)) in groups.iter().zip(&truth.groups) {
                let pair = got.as_arr().unwrap();
                assert_eq!(pair[0].as_f64(), Some(want_id as f64));
                let got_avg = pair[1].as_f64().unwrap();
                assert_eq!(
                    got_avg.to_bits(),
                    want_avg.to_bits(),
                    "group {want_id}: sharded avg {got_avg} != in-process {want_avg}, \
                     {shards} shard(s), filter {filter:?}"
                );
            }
        }
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&truth_dir).ok();
}

// ---------------------------------------------------------------------------
// Write path: PUT / DEL / FLUSH against live tables.
// ---------------------------------------------------------------------------

/// Ingest tuning for the tests: tiny segments so a few hundred PUTs cross
/// several freeze boundaries, no background compactor so FLUSH timing is
/// deterministic and recovery really exercises the WAL.
fn live_config() -> IngestConfig {
    IngestConfig {
        segment_rows: 32,
        compact_min_segments: 2,
        row_group_size: 64,
        auto_compact: false,
        key_col: 0,
    }
}

fn start_live_server(dir: &PathBuf, shards: usize) -> Server {
    let (ts, id, val) = test_columns(64);
    let set = ShardSetBuilder::new(dir, shards)
        .table_options(table_options())
        .table("sensors", &["ts", "id", "val"], vec![ts, id, val])
        .live_table("events", &["key", "id", "val"], live_config())
        .records(test_records(10))
        .build()
        .expect("fixture builds");
    Server::start(set, ServerConfig::default()).expect("server starts")
}

fn live_row(i: u64) -> (u64, u64, u64) {
    (i, i % 5, 100 + i * 7)
}

/// The three probes every live-table check runs, as protocol strings.
const LIVE_PROBES: [&str; 4] = [
    "SCAN events",
    "SCAN events FILTER key 20 90 SUM val",
    "SCAN events SUM val",
    "SCAN events GROUPBY id AGG avg val",
];

/// Snapshot the probe replies as rendered JSON (minus the morsel counter,
/// which legitimately differs between memtable and file scans).
fn probe_replies(client: &mut Client) -> Vec<String> {
    LIVE_PROBES
        .iter()
        .map(|probe| {
            let reply = client.request(probe).unwrap();
            assert_eq!(response_code(&reply), 200, "{probe}: {}", reply.render());
            let mut obj: Vec<(String, Json)> = ["rows_selected", "sum", "groups"]
                .iter()
                .map(|k| (k.to_string(), reply.get(k).cloned().unwrap()))
                .collect();
            obj.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(obj).render()
        })
        .collect()
}

#[test]
fn put_is_visible_before_and_after_flush_at_every_shard_count() {
    let n = 150u64;
    let mut baseline: Option<(Vec<String>, Vec<String>)> = None;
    for shards in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("put-vis-{shards}"));
        let server = start_live_server(&dir, shards);
        let mut client = Client::connect(server.local_addr()).unwrap();

        for i in 0..n {
            let (key, id, val) = live_row(i);
            let reply = client
                .request(&format!("PUT events {key} {id} {val}"))
                .unwrap();
            assert_eq!(response_code(&reply), 200, "{}", reply.render());
            assert_eq!(reply.get("durable"), Some(&Json::Bool(true)));
        }

        // Unflushed rows are served straight from the memtables.
        let before = probe_replies(&mut client);
        let count = client.request("SCAN events").unwrap();
        assert_eq!(
            count.get("rows_selected").and_then(Json::as_f64),
            Some(n as f64),
            "{shards} shard(s): every PUT visible before FLUSH"
        );

        // FLUSH moves every row into immutable table files...
        let reply = client.request("FLUSH").unwrap();
        assert_eq!(response_code(&reply), 200, "{}", reply.render());
        assert_eq!(
            reply.get("rows_flushed").and_then(Json::as_f64),
            Some(n as f64),
            "{shards} shard(s): FLUSH reports the flushed rows"
        );

        // ... without changing a single answer bit.
        let after = probe_replies(&mut client);
        assert_eq!(
            before, after,
            "{shards} shard(s): FLUSH changed scan results"
        );

        // And every shard count answers identically (the JSON includes the
        // f64 group averages, so this is a bit-level comparison).
        match &baseline {
            None => baseline = Some((before, after)),
            Some((b_before, b_after)) => {
                assert_eq!(&before, b_before, "{shards} shard(s) vs 1 shard, pre-FLUSH");
                assert_eq!(&after, b_after, "{shards} shard(s) vs 1 shard, post-FLUSH");
            }
        }

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn restart_recovers_every_acknowledged_put_and_del() {
    let dir = tmp_dir("restart");
    let n = 120u64;
    let expected_sum: u128 = (0..n)
        .filter(|&i| i % 11 != 3)
        .map(|i| live_row(i).2 as u128)
        .sum();
    let expected_rows: u64 = (0..n).filter(|&i| i % 11 != 3).count() as u64;

    // Session 1: acknowledge writes, never FLUSH, then tear the server down
    // — with auto-compaction off, everything acknowledged lives only in the
    // WALs, so recovery below is real replay, not file reopening.
    {
        let server = start_live_server(&dir, 3);
        let mut client = Client::connect(server.local_addr()).unwrap();
        for i in 0..n {
            let (key, id, val) = live_row(i);
            let reply = client
                .request(&format!("PUT events {key} {id} {val}"))
                .unwrap();
            assert_eq!(response_code(&reply), 200);
        }
        // Delete a stripe of keys; the acks make these durable too.
        for i in (0..n).filter(|&i| i % 11 == 3) {
            let reply = client.request(&format!("DEL events {i}")).unwrap();
            assert_eq!(response_code(&reply), 200);
            assert_eq!(reply.get("durable"), Some(&Json::Bool(true)));
        }
        server.shutdown();
    }

    // Session 2: rebuild over the same directory. Every acknowledged PUT
    // minus every acknowledged DEL must be back, exactly.
    let server = start_live_server(&dir, 3);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let reply = client.request("SCAN events SUM val").unwrap();
    assert_eq!(response_code(&reply), 200, "{}", reply.render());
    assert_eq!(
        reply.get("rows_selected").and_then(Json::as_f64),
        Some(expected_rows as f64),
        "acknowledged rows after restart"
    );
    assert_eq!(
        reply.get("sum").and_then(Json::as_str),
        Some(expected_sum.to_string().as_str()),
        "acknowledged bytes after restart"
    );

    // The recovered table keeps working: new writes land on top.
    let reply = client.request("PUT events 9999 1 77").unwrap();
    assert_eq!(response_code(&reply), 200);
    let reply = client.request("SCAN events FILTER key 9999 9999").unwrap();
    assert_eq!(reply.get("rows_selected").and_then(Json::as_f64), Some(1.0));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_writes_get_400_and_the_connection_survives() {
    let dir = tmp_dir("bad-writes");
    let server = start_live_server(&dir, 2);
    let mut client = Client::connect(server.local_addr()).unwrap();

    for bad in [
        "PUT",                   // no table
        "PUT events",            // no values
        "PUT events 1 x 3",      // non-numeric value
        "PUT events -1 2 3",     // negative value
        "PUT nosuchtable 1 2 3", // unknown live table (manifest check)
        "PUT sensors 1 2 3",     // static tables don't take writes
        "PUT events 1 2",        // arity mismatch (shard-side check)
        "PUT events 1 2 3 4",    // arity mismatch the other way
        "DEL events",            // no key
        "DEL events x",          // non-numeric key
        "DEL nosuchtable 5",     // unknown live table
        "FLUSH please",          // FLUSH takes no arguments
    ] {
        let reply = client.request(bad).unwrap();
        assert_eq!(response_code(&reply), 400, "{bad}: {}", reply.render());
    }

    // No phantom rows appeared, and the same connection still ingests.
    let reply = client.request("SCAN events").unwrap();
    assert_eq!(reply.get("rows_selected").and_then(Json::as_f64), Some(0.0));
    let reply = client.request("PUT events 5 1 500").unwrap();
    assert_eq!(response_code(&reply), 200);
    let reply = client.request("SCAN events SUM val").unwrap();
    assert_eq!(reply.get("rows_selected").and_then(Json::as_f64), Some(1.0));
    assert_eq!(reply.get("sum").and_then(Json::as_str), Some("500"));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
