//! Building a sharded on-disk dataset: split tables and sorted key-value
//! records across `N` shards, write one row-group file and one SSTable per
//! shard, and record the layout in a [`Manifest`].
//!
//! Tables are split into contiguous near-equal row slices — shard `k` owns
//! rows `[k·n/N, (k+1)·n/N)` — so a fan-out scan covers every row exactly
//! once.  Records are hash-partitioned by key ([`shard_for_key`]), which
//! preserves their sorted order within each shard, the invariant
//! [`Store::load`] requires.

use crate::shard::{shard_for_key, Manifest, ShardData};
use leco_columnar::{TableFile, TableFileOptions};
use leco_ingest::{IngestConfig, LiveTable};
use leco_kvstore::{Store, StoreOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// A table to shard: name, column names, equal-length columns.
pub struct TableSpec {
    /// Table name, as addressed by `SCAN`.
    pub name: String,
    /// Column names.
    pub column_names: Vec<String>,
    /// One `Vec<u64>` per column.
    pub columns: Vec<Vec<u64>>,
}

/// A live (writable) table to open on every shard.
pub struct LiveTableSpec {
    /// Table name, as addressed by `PUT`/`DEL`/`SCAN`.
    pub name: String,
    /// Column names (the schema every `PUT` row must match).
    pub column_names: Vec<String>,
    /// Per-shard ingest tuning (segment size, compaction policy, key column).
    pub config: IngestConfig,
}

/// Builder for a sharded dataset directory.
pub struct ShardSetBuilder {
    dir: PathBuf,
    shards: usize,
    table_options: TableFileOptions,
    store_options: StoreOptions,
    tables: Vec<TableSpec>,
    live_tables: Vec<LiveTableSpec>,
    records: Vec<(Vec<u8>, Vec<u8>)>,
}

/// The built shard set: per-shard data ready to hand to the server, plus
/// the manifest describing the layout.
pub struct ShardSet {
    /// One entry per shard, indexed by shard id.
    pub shards: Vec<ShardData>,
    /// The layout that was built (also written to `manifest.json`).
    pub manifest: Manifest,
}

impl ShardSetBuilder {
    /// Start a builder writing shard files under `dir` (created if needed).
    pub fn new<P: AsRef<Path>>(dir: P, shards: usize) -> Self {
        Self {
            dir: dir.as_ref().to_path_buf(),
            shards: shards.max(1),
            table_options: TableFileOptions::default(),
            store_options: StoreOptions::default(),
            tables: Vec::new(),
            live_tables: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Use non-default table-file options (encoding, row-group size …).
    pub fn table_options(mut self, options: TableFileOptions) -> Self {
        self.table_options = options;
        self
    }

    /// Use non-default store options (index format, cache budget).
    pub fn store_options(mut self, options: StoreOptions) -> Self {
        self.store_options = options;
        self
    }

    /// Add a table to shard across the set.
    pub fn table(mut self, name: &str, column_names: &[&str], columns: Vec<Vec<u64>>) -> Self {
        assert_eq!(column_names.len(), columns.len(), "one name per column");
        self.tables.push(TableSpec {
            name: name.to_string(),
            column_names: column_names.iter().map(|s| s.to_string()).collect(),
            columns,
        });
        self
    }

    /// Add a live (writable) table: every shard opens — or, on restart,
    /// recovers — its own WAL-backed [`LiveTable`] under
    /// `live-<name>-s<k>/`, so acknowledged `PUT`s survive a rebuild of the
    /// same directory.
    pub fn live_table(mut self, name: &str, column_names: &[&str], config: IngestConfig) -> Self {
        self.live_tables.push(LiveTableSpec {
            name: name.to_string(),
            column_names: column_names.iter().map(|s| s.to_string()).collect(),
            config,
        });
        self
    }

    /// Add the key-value records (must be sorted by key, like
    /// [`Store::load`]).
    pub fn records(mut self, records: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        self.records = records;
        self
    }

    /// Write every shard's files and assemble the [`ShardSet`].
    pub fn build(self) -> std::io::Result<ShardSet> {
        std::fs::create_dir_all(&self.dir)?;
        let n = self.shards;

        // Hash-partition the records; per-shard order stays sorted because
        // filtering preserves the global order.
        let mut per_shard_records: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); n];
        for (key, value) in &self.records {
            per_shard_records[shard_for_key(key, n)].push((key.clone(), value.clone()));
        }

        let mut manifest = Manifest {
            shards: n,
            kv_routing: "fnv1a64(key) % shards".to_string(),
            kv_records: per_shard_records.iter().map(|r| r.len() as u64).collect(),
            tables: Vec::new(),
            live_tables: Vec::new(),
        };

        let mut shards = Vec::with_capacity(n);
        for (k, records) in per_shard_records.iter().enumerate() {
            let store_path = self.dir.join(format!("kv-s{k}.sst"));
            let store = Store::load(&store_path, records, self.store_options)?;
            shards.push(ShardData {
                id: k,
                tables: HashMap::new(),
                live_tables: HashMap::new(),
                store,
            });
        }

        for spec in &self.live_tables {
            let names: Vec<&str> = spec.column_names.iter().map(String::as_str).collect();
            for (k, shard) in shards.iter_mut().enumerate() {
                let live_dir = self.dir.join(format!("live-{}-s{k}", spec.name));
                let live = LiveTable::open(&live_dir, &names, spec.config)?;
                shard.live_tables.insert(spec.name.clone(), live);
            }
            manifest
                .live_tables
                .push((spec.name.clone(), spec.config.key_col));
        }

        for spec in &self.tables {
            let rows = spec.columns.first().map_or(0, Vec::len);
            assert!(
                spec.columns.iter().all(|c| c.len() == rows),
                "table {:?}: all columns must have the same length",
                spec.name
            );
            assert!(
                rows >= n,
                "table {:?}: {} rows cannot be split across {} shards",
                spec.name,
                rows,
                n
            );
            let names: Vec<&str> = spec.column_names.iter().map(String::as_str).collect();
            let mut slices = Vec::with_capacity(n);
            for (k, shard) in shards.iter_mut().enumerate() {
                let start = k * rows / n;
                let end = (k + 1) * rows / n;
                let slice_cols: Vec<Vec<u64>> = spec
                    .columns
                    .iter()
                    .map(|c| c[start..end].to_vec())
                    .collect();
                let path = self.dir.join(format!("{}-s{k}.tbl", spec.name));
                let file = TableFile::write(&path, &names, &slice_cols, self.table_options)?;
                shard.tables.insert(spec.name.clone(), file);
                slices.push((start as u64, (end - start) as u64));
            }
            manifest.tables.push((spec.name.clone(), slices));
        }

        std::fs::write(self.dir.join("manifest.json"), manifest.to_json().render())?;
        Ok(ShardSet { shards, manifest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-server-fixture-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn shards_cover_every_row_and_record_exactly_once() {
        let dir = tmp_dir("cover");
        let rows = 10_001usize;
        let ts: Vec<u64> = (0..rows as u64).map(|i| 1000 + i).collect();
        let val: Vec<u64> = (0..rows as u64).map(|i| i * 3).collect();
        let records: Vec<(Vec<u8>, Vec<u8>)> = (0..500u64)
            .map(|i| {
                (
                    format!("k{i:05}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect();
        let set = ShardSetBuilder::new(&dir, 3)
            .table("t", &["ts", "val"], vec![ts, val])
            .records(records.clone())
            .build()
            .unwrap();
        assert_eq!(set.shards.len(), 3);
        let total_rows: usize = set.shards.iter().map(|s| s.tables["t"].num_rows()).sum();
        assert_eq!(total_rows, rows);
        let total_records: usize = set.shards.iter().map(|s| s.store.num_records()).sum();
        assert_eq!(total_records, records.len());
        // Every record lands on the shard its hash names, and is found there.
        for (key, value) in records.iter().step_by(37) {
            let k = shard_for_key(key, 3);
            assert_eq!(set.shards[k].store.get(key).unwrap().as_ref(), Some(value));
        }
        // Slices in the manifest are contiguous and complete.
        let (_, slices) = &set.manifest.tables[0];
        let mut next = 0u64;
        for &(start, len) in slices {
            assert_eq!(start, next);
            next = start + len;
        }
        assert_eq!(next, rows as u64);
        assert!(dir.join("manifest.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
