//! The threaded TCP frontend: accept loop → per-connection handler →
//! shard dispatch → ordered replies.
//!
//! One thread per connection reads length-prefixed frames, parses commands,
//! and dispatches them to the shard workers over channels.  Reads drain the
//! socket buffer into a [`FrameCursor`], so a pipelining client's burst of
//! requests is dispatched as one *batch* — every shard involved works in
//! parallel — and the replies are written back in request order.
//!
//! Failure isolation: a malformed request earns a `400` reply and the
//! connection lives on; a shard-side failure earns a `500`; only a corrupt
//! frame length (oversized prefix) closes the connection, because a
//! length-prefixed stream cannot be resynchronised.  Shutdown is clean:
//! [`Server::shutdown`] wakes the accept loop, lets every connection finish
//! its current batch, drains the shard workers and joins every thread.

use crate::protocol::{
    error_response, frame_into, ok_response, parse_request, response_code, FrameCursor, FrameError,
    Request,
};
use crate::shard::{
    run_shard_worker, shard_for_key, Manifest, ShardCmd, ShardJob, ShardReply, ShardScanPartial,
};
use crate::ShardSet;
use leco_bench::report::Json;
use leco_obs::Stopwatch;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, benchmarks).
    pub addr: String,
    /// Work-stealing threads each shard uses for one scan / multi-get.
    pub scan_threads: usize,
    /// Most requests dispatched as one pipelined batch.
    pub max_batch: usize,
    /// How often blocked reads wake up to check for shutdown.
    pub poll_interval: Duration,
    /// How long a connection waits for a shard reply before answering `500`.
    pub reply_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            scan_threads: 2,
            max_batch: 64,
            poll_interval: Duration::from_millis(25),
            reply_timeout: Duration::from_secs(30),
        }
    }
}

/// A running server.  Dropping it without calling [`Self::shutdown`] leaks
/// the listener thread for the process lifetime; call `shutdown` for a
/// clean stop.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shard_handles: Vec<JoinHandle<()>>,
    shard_txs: Vec<mpsc::Sender<ShardJob>>,
}

struct ConnContext {
    txs: Vec<mpsc::Sender<ShardJob>>,
    manifest: Arc<Manifest>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Start serving `set` according to `config`: one worker thread per
    /// shard, one accept thread, one thread per accepted connection.
    pub fn start(set: ShardSet, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let manifest = Arc::new(set.manifest);

        let mut shard_txs = Vec::with_capacity(set.shards.len());
        let mut shard_handles = Vec::with_capacity(set.shards.len());
        for data in set.shards {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let scan_threads = config.scan_threads;
            shard_handles.push(std::thread::spawn(move || {
                run_shard_worker(&data, rx, scan_threads);
            }));
            shard_txs.push(tx);
        }

        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let conn_handles = Arc::clone(&conn_handles);
            let txs = shard_txs.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let ctx = ConnContext {
                        txs: txs.clone(),
                        manifest: Arc::clone(&manifest),
                        shutdown: Arc::clone(&shutdown),
                        config: config.clone(),
                    };
                    let handle = std::thread::spawn(move || handle_connection(stream, ctx));
                    conn_handles.lock().expect("conn list lock").push(handle);
                }
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            conn_handles,
            shard_handles,
            shard_txs,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, let in-flight batches finish, drain the shard
    /// workers, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Connections notice the flag at their next poll tick and exit.
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("conn list lock"));
        for handle in handles {
            let _ = handle.join();
        }
        // With every connection gone, dropping our senders starves the
        // shard workers' `recv` and they exit.
        self.shard_txs.clear();
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// RAII guard for the connection gauge.
struct ConnGauge;

impl ConnGauge {
    fn new() -> Self {
        leco_obs::counter!("srv.connections_total").inc();
        leco_obs::gauge!("srv.connections").add(1);
        ConnGauge
    }
}

impl Drop for ConnGauge {
    fn drop(&mut self) {
        leco_obs::gauge!("srv.connections").sub(1);
    }
}

fn handle_connection(stream: TcpStream, ctx: ConnContext) {
    let _gauge = ConnGauge::new();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.config.poll_interval));
    let mut stream = stream;
    let mut cursor = FrameCursor::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut out = Vec::new();

    'conn: loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            Ok(n) => cursor.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }

        // Drain complete frames into a batch and dispatch them all before
        // waiting on any reply: that is what turns a pipelining client into
        // parallel work across the shards.
        loop {
            let mut batch: Vec<Pending> = Vec::new();
            loop {
                if batch.len() >= ctx.config.max_batch {
                    break;
                }
                match cursor.next_frame() {
                    Ok(Some(payload)) => batch.push(dispatch(&payload, &ctx)),
                    Ok(None) => break,
                    Err(FrameError::Oversized(len)) => {
                        // The stream cannot be resynchronised: answer every
                        // dispatched request, send the error, close.
                        for pending in batch {
                            write_reply(&mut out, pending.resolve(&ctx));
                        }
                        write_reply(
                            &mut out,
                            error_response(400, &FrameError::Oversized(len).to_string()),
                        );
                        let _ = stream.write_all(&out);
                        return;
                    }
                }
            }
            if batch.is_empty() {
                break;
            }
            out.clear();
            for pending in batch {
                write_reply(&mut out, pending.resolve(&ctx));
            }
            if stream.write_all(&out).is_err() {
                break 'conn;
            }
        }
    }
}

fn write_reply(out: &mut Vec<u8>, reply: Json) {
    if response_code(&reply) != 200 {
        leco_obs::counter!("srv.errors").inc();
    }
    frame_into(out, reply.render().as_bytes());
}

/// A dispatched request: either already answerable or waiting on shards.
enum Pending {
    Ready {
        reply: Json,
        latency: &'static str,
        started: Stopwatch,
    },
    Waiting {
        rx: mpsc::Receiver<(usize, ShardReply)>,
        expect: usize,
        kind: WaitKind,
        latency: &'static str,
        started: Stopwatch,
    },
}

enum WaitKind {
    Get,
    MGet { n_keys: usize },
    Scan,
    Write,
    Flush,
}

impl Pending {
    /// Wait for the outstanding shard replies (if any) and build the
    /// response, recording the per-command latency histogram.
    fn resolve(self, ctx: &ConnContext) -> Json {
        match self {
            Pending::Ready {
                reply,
                latency,
                started,
            } => {
                leco_obs::histogram(latency).record(started.elapsed_ns());
                reply
            }
            Pending::Waiting {
                rx,
                expect,
                kind,
                latency,
                started,
            } => {
                let mut replies = Vec::with_capacity(expect);
                while replies.len() < expect {
                    match rx.recv_timeout(ctx.config.reply_timeout) {
                        Ok(reply) => replies.push(reply),
                        Err(_) => {
                            leco_obs::histogram(latency).record(started.elapsed_ns());
                            return error_response(500, "shard reply timed out");
                        }
                    }
                }
                let reply = assemble(kind, replies);
                leco_obs::histogram(latency).record(started.elapsed_ns());
                reply
            }
        }
    }
}

fn dispatch(payload: &[u8], ctx: &ConnContext) -> Pending {
    leco_obs::counter!("srv.requests").inc();
    let started = Stopwatch::start();
    let request = match parse_request(payload) {
        Ok(request) => request,
        Err(message) => {
            return Pending::Ready {
                reply: error_response(400, &message),
                latency: "srv.latency.error_ns",
                started,
            }
        }
    };
    let shards = ctx.txs.len();
    match request {
        Request::Get { key } => {
            leco_obs::counter!("srv.cmd.get").inc();
            let (reply_tx, rx) = mpsc::channel();
            let target = shard_for_key(&key, shards);
            send_job(
                ctx,
                target,
                ShardJob {
                    cmd: ShardCmd::Get { key },
                    tag: target,
                    reply: reply_tx,
                },
            );
            Pending::Waiting {
                rx,
                expect: 1,
                kind: WaitKind::Get,
                latency: "srv.latency.get_ns",
                started,
            }
        }
        Request::MGet { keys } => {
            leco_obs::counter!("srv.cmd.mget").inc();
            let n_keys = keys.len();
            let mut per_shard: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); shards];
            for (pos, key) in keys.into_iter().enumerate() {
                let target = shard_for_key(&key, shards);
                per_shard[target].push((pos, key));
            }
            let (reply_tx, rx) = mpsc::channel();
            let mut expect = 0usize;
            for (target, sub) in per_shard.into_iter().enumerate() {
                if sub.is_empty() {
                    continue;
                }
                expect += 1;
                send_job(
                    ctx,
                    target,
                    ShardJob {
                        cmd: ShardCmd::MGet { keys: sub },
                        tag: target,
                        reply: reply_tx.clone(),
                    },
                );
            }
            Pending::Waiting {
                rx,
                expect,
                kind: WaitKind::MGet { n_keys },
                latency: "srv.latency.mget_ns",
                started,
            }
        }
        Request::Put { table, row } => {
            leco_obs::counter!("srv.cmd.put").inc();
            let Some(&(_, key_col)) = ctx
                .manifest
                .live_tables
                .iter()
                .find(|(name, _)| *name == table)
            else {
                return Pending::Ready {
                    reply: error_response(400, &format!("unknown live table {table:?}")),
                    latency: "srv.latency.put_ns",
                    started,
                };
            };
            if key_col >= row.len() {
                return Pending::Ready {
                    reply: error_response(
                        400,
                        &format!(
                            "PUT row has {} values but the key column is #{key_col}",
                            row.len()
                        ),
                    ),
                    latency: "srv.latency.put_ns",
                    started,
                };
            }
            let (reply_tx, rx) = mpsc::channel();
            let target = shard_for_key(&row[key_col].to_le_bytes(), shards);
            send_job(
                ctx,
                target,
                ShardJob {
                    cmd: ShardCmd::Put { table, row },
                    tag: target,
                    reply: reply_tx,
                },
            );
            Pending::Waiting {
                rx,
                expect: 1,
                kind: WaitKind::Write,
                latency: "srv.latency.put_ns",
                started,
            }
        }
        Request::Del { table, key } => {
            leco_obs::counter!("srv.cmd.del").inc();
            if !ctx
                .manifest
                .live_tables
                .iter()
                .any(|(name, _)| *name == table)
            {
                return Pending::Ready {
                    reply: error_response(400, &format!("unknown live table {table:?}")),
                    latency: "srv.latency.del_ns",
                    started,
                };
            }
            let (reply_tx, rx) = mpsc::channel();
            let target = shard_for_key(&key.to_le_bytes(), shards);
            send_job(
                ctx,
                target,
                ShardJob {
                    cmd: ShardCmd::Del { table, key },
                    tag: target,
                    reply: reply_tx,
                },
            );
            Pending::Waiting {
                rx,
                expect: 1,
                kind: WaitKind::Write,
                latency: "srv.latency.del_ns",
                started,
            }
        }
        Request::Flush => {
            leco_obs::counter!("srv.cmd.flush").inc();
            let (reply_tx, rx) = mpsc::channel();
            for target in 0..shards {
                send_job(
                    ctx,
                    target,
                    ShardJob {
                        cmd: ShardCmd::Flush,
                        tag: target,
                        reply: reply_tx.clone(),
                    },
                );
            }
            Pending::Waiting {
                rx,
                expect: shards,
                kind: WaitKind::Flush,
                latency: "srv.latency.flush_ns",
                started,
            }
        }
        Request::Scan { table, filter, agg } => {
            leco_obs::counter!("srv.cmd.scan").inc();
            let known = ctx.manifest.tables.iter().any(|(name, _)| *name == table)
                || ctx
                    .manifest
                    .live_tables
                    .iter()
                    .any(|(name, _)| *name == table);
            if !known {
                return Pending::Ready {
                    reply: error_response(400, &format!("unknown table {table:?}")),
                    latency: "srv.latency.scan_ns",
                    started,
                };
            }
            let (reply_tx, rx) = mpsc::channel();
            for target in 0..shards {
                send_job(
                    ctx,
                    target,
                    ShardJob {
                        cmd: ShardCmd::Scan {
                            table: table.clone(),
                            filter: filter.clone(),
                            agg: agg.clone(),
                        },
                        tag: target,
                        reply: reply_tx.clone(),
                    },
                );
            }
            Pending::Waiting {
                rx,
                expect: shards,
                kind: WaitKind::Scan,
                latency: "srv.latency.scan_ns",
                started,
            }
        }
        Request::Stats => {
            leco_obs::counter!("srv.cmd.stats").inc();
            Pending::Ready {
                reply: stats_response(ctx),
                latency: "srv.latency.stats_ns",
                started,
            }
        }
    }
}

fn send_job(ctx: &ConnContext, target: usize, job: ShardJob) {
    leco_obs::gauge!("srv.shard.queue_depth").add(1);
    if ctx.txs[target].send(job).is_err() {
        // Worker gone (shutdown race): the reply channel was moved into the
        // failed send, so the waiter times out and answers 500.
        leco_obs::gauge!("srv.shard.queue_depth").sub(1);
    }
}

fn assemble(kind: WaitKind, mut replies: Vec<(usize, ShardReply)>) -> Json {
    // Deterministic merge order regardless of shard completion order.
    replies.sort_by_key(|&(tag, _)| tag);
    // Any failure dominates: 400 before 500 so the client sees its own
    // mistake rather than a cascade.
    for (_, reply) in &replies {
        if let ShardReply::BadRequest(message) = reply {
            return error_response(400, message);
        }
    }
    for (_, reply) in &replies {
        if let ShardReply::Error(message) = reply {
            return error_response(500, message);
        }
    }
    match kind {
        WaitKind::Get => match replies.pop() {
            Some((_, ShardReply::Value(value))) => ok_response(vec![
                ("found".into(), Json::Bool(value.is_some())),
                (
                    "value".into(),
                    value.map_or(Json::Null, |v| {
                        Json::Str(String::from_utf8_lossy(&v).into_owned())
                    }),
                ),
            ]),
            _ => error_response(500, "shard returned a mismatched reply"),
        },
        WaitKind::MGet { n_keys } => {
            let mut values: Vec<Json> = vec![Json::Null; n_keys];
            for (_, reply) in replies {
                let ShardReply::Values(part) = reply else {
                    return error_response(500, "shard returned a mismatched reply");
                };
                for (pos, value) in part {
                    values[pos] = Json::Obj(vec![
                        ("found".into(), Json::Bool(value.is_some())),
                        (
                            "value".into(),
                            value.map_or(Json::Null, |v| {
                                Json::Str(String::from_utf8_lossy(&v).into_owned())
                            }),
                        ),
                    ]);
                }
            }
            ok_response(vec![("values".into(), Json::Arr(values))])
        }
        WaitKind::Write => match replies.pop() {
            // The shard replies only after its WAL commit, so reaching here
            // means the write is on stable storage.
            Some((_, ShardReply::Acked)) => ok_response(vec![("durable".into(), Json::Bool(true))]),
            _ => error_response(500, "shard returned a mismatched reply"),
        },
        WaitKind::Flush => {
            let mut rows_flushed = 0u64;
            let mut files_written = 0u64;
            for (_, reply) in replies {
                let ShardReply::Flushed {
                    rows_flushed: rows,
                    files_written: files,
                } = reply
                else {
                    return error_response(500, "shard returned a mismatched reply");
                };
                rows_flushed += rows;
                files_written += files;
            }
            ok_response(vec![
                ("rows_flushed".into(), Json::Num(rows_flushed as f64)),
                ("files_written".into(), Json::Num(files_written as f64)),
            ])
        }
        WaitKind::Scan => {
            let mut merged = ShardScanPartial::default();
            let n_shards = replies.len();
            for (_, reply) in replies {
                let ShardReply::Scan(partial) = reply else {
                    return error_response(500, "shard returned a mismatched reply");
                };
                merged.merge(&partial);
            }
            let groups = merged.finalize_groups();
            ok_response(vec![
                (
                    "rows_selected".into(),
                    Json::Num(merged.rows_selected as f64),
                ),
                ("rows_scanned".into(), Json::Num(merged.rows_scanned as f64)),
                ("morsels".into(), Json::Num(merged.morsels as f64)),
                ("shards".into(), Json::Num(n_shards as f64)),
                // u128 sums survive JSON as strings (f64 would round).
                ("sum".into(), Json::Str(merged.sum.to_string())),
                (
                    "groups".into(),
                    Json::Arr(
                        groups
                            .iter()
                            .map(|&(id, avg)| Json::Arr(vec![Json::Num(id as f64), Json::Num(avg)]))
                            .collect(),
                    ),
                ),
            ])
        }
    }
}

fn stats_response(ctx: &ConnContext) -> Json {
    let counter = |name: &'static str| Json::Num(leco_obs::counter(name).value() as f64);
    let gauge = |name: &'static str| Json::Num(leco_obs::gauge(name).value() as f64);
    ok_response(vec![
        ("shards".into(), Json::Num(ctx.txs.len() as f64)),
        (
            "tables".into(),
            Json::Arr(
                ctx.manifest
                    .tables
                    .iter()
                    .map(|(name, _)| Json::Str(name.clone()))
                    .collect(),
            ),
        ),
        (
            "live_tables".into(),
            Json::Arr(
                ctx.manifest
                    .live_tables
                    .iter()
                    .map(|(name, _)| Json::Str(name.clone()))
                    .collect(),
            ),
        ),
        (
            "kv_records".into(),
            Json::Num(ctx.manifest.kv_records.iter().sum::<u64>() as f64),
        ),
        (
            "metrics".into(),
            Json::Obj(vec![
                ("connections".into(), gauge("srv.connections")),
                ("connections_total".into(), counter("srv.connections_total")),
                ("requests".into(), counter("srv.requests")),
                ("errors".into(), counter("srv.errors")),
                ("cmd_get".into(), counter("srv.cmd.get")),
                ("cmd_mget".into(), counter("srv.cmd.mget")),
                ("cmd_scan".into(), counter("srv.cmd.scan")),
                ("cmd_put".into(), counter("srv.cmd.put")),
                ("cmd_del".into(), counter("srv.cmd.del")),
                ("cmd_flush".into(), counter("srv.cmd.flush")),
                ("cmd_stats".into(), counter("srv.cmd.stats")),
                ("shard_jobs".into(), counter("srv.shard.jobs")),
                ("shard_queue_depth".into(), gauge("srv.shard.queue_depth")),
            ]),
        ),
    ])
}
