//! Wire protocol: length-prefixed frames carrying text commands and JSON
//! replies.
//!
//! A frame is a 4-byte little-endian payload length followed by that many
//! payload bytes.  Requests are UTF-8 command lines (`GET`, `MGET`, `SCAN`,
//! `PUT`, `DEL`, `FLUSH`, `STATS`); responses are JSON objects rendered
//! with the hand-rolled
//! [`leco_bench::report::Json`] machinery.  Every response carries a
//! `code` field using HTTP-flavoured numbers: `200` success, `400` the
//! request was malformed (the connection survives), `500` the server failed
//! to execute a well-formed request.  See `docs/SERVING.md` for the byte
//! layout with a worked example.

use leco_bench::report::Json;

/// Hard ceiling on a frame payload.  A length prefix beyond this is treated
/// as a corrupt stream: the server replies with an error and closes, because
/// a length-prefixed protocol cannot resynchronise after an untrusted
/// length.
pub const MAX_FRAME: usize = 1 << 20;

/// Cap on the keys of a single `MGET` — bounds per-request memory.
pub const MAX_MGET_KEYS: usize = 4096;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `GET <key>` — exact-match point lookup.
    Get {
        /// Key to look up (no embedded whitespace — the command line is
        /// whitespace-tokenised).
        key: Vec<u8>,
    },
    /// `MGET <key> <key> …` — batched exact-match lookups, answered in
    /// request order.
    MGet {
        /// Keys, in the order the reply's `values` array will use.
        keys: Vec<Vec<u8>>,
    },
    /// `SCAN <table> [FILTER <col> <lo> <hi>] [GROUPBY <id> AGG avg <val> | SUM <col>]`
    Scan {
        /// Table name from the manifest.
        table: String,
        /// Optional inclusive range predicate `lo <= col <= hi`.
        filter: Option<(String, u64, u64)>,
        /// Aggregate to compute over the selected rows.
        agg: ScanAgg,
    },
    /// `PUT <table> <v0> <v1> …` — ingest one row into a live table.  The
    /// `200` reply is sent only after the row's WAL batch is fsync'd.
    Put {
        /// Live table name from the manifest.
        table: String,
        /// One `u64` per column, in schema order.
        row: Vec<u64>,
    },
    /// `DEL <table> <key>` — delete every live row whose key column equals
    /// `key`.  Durable before the reply, like `PUT`.
    Del {
        /// Live table name from the manifest.
        table: String,
        /// Key-column value to delete.
        key: u64,
    },
    /// `FLUSH` — freeze and compact every live table on every shard; the
    /// reply reports how many rows moved into immutable table files.
    Flush,
    /// `STATS` — server/shard/registry counters.
    Stats,
}

/// Aggregate clause of a `SCAN`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanAgg {
    /// Count the selected rows (the default).
    Count,
    /// `SUM <col>` over the selected rows.
    Sum(String),
    /// `GROUPBY <id> AGG avg <val>`.
    GroupByAvg(String, String),
}

/// Parse a request payload.  Errors are client-facing `400` messages.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let mut tokens = text.split_ascii_whitespace();
    let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
    match verb {
        "GET" => {
            let key = tokens.next().ok_or_else(|| "GET needs a key".to_string())?;
            if tokens.next().is_some() {
                return Err("GET takes exactly one key".into());
            }
            Ok(Request::Get {
                key: key.as_bytes().to_vec(),
            })
        }
        "MGET" => {
            let keys: Vec<Vec<u8>> = tokens.map(|t| t.as_bytes().to_vec()).collect();
            if keys.is_empty() {
                return Err("MGET needs at least one key".into());
            }
            if keys.len() > MAX_MGET_KEYS {
                return Err(format!("MGET is capped at {MAX_MGET_KEYS} keys"));
            }
            Ok(Request::MGet { keys })
        }
        "SCAN" => parse_scan(&mut tokens),
        "PUT" => {
            let table = tokens
                .next()
                .ok_or_else(|| "PUT needs a table name".to_string())?
                .to_string();
            let row = tokens
                .map(|t| {
                    t.parse::<u64>()
                        .map_err(|e| format!("PUT value {t:?} is not a u64: {e}"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            if row.is_empty() {
                return Err("PUT needs at least one column value".into());
            }
            Ok(Request::Put { table, row })
        }
        "DEL" => {
            let table = tokens
                .next()
                .ok_or_else(|| "DEL needs a table name".to_string())?
                .to_string();
            let key = parse_u64(tokens.next(), "DEL key")?;
            if tokens.next().is_some() {
                return Err("DEL takes exactly one key".into());
            }
            Ok(Request::Del { table, key })
        }
        "FLUSH" => {
            if tokens.next().is_some() {
                return Err("FLUSH takes no arguments".into());
            }
            Ok(Request::Flush)
        }
        "STATS" => {
            if tokens.next().is_some() {
                return Err("STATS takes no arguments".into());
            }
            Ok(Request::Stats)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn parse_scan<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Request, String> {
    let table = tokens
        .next()
        .ok_or_else(|| "SCAN needs a table name".to_string())?
        .to_string();
    let mut filter = None;
    let mut agg = ScanAgg::Count;
    while let Some(clause) = tokens.next() {
        match clause {
            "FILTER" => {
                if filter.is_some() {
                    return Err("duplicate FILTER clause".into());
                }
                let col = tokens
                    .next()
                    .ok_or_else(|| "FILTER needs <col> <lo> <hi>".to_string())?;
                let lo = parse_u64(tokens.next(), "FILTER lo")?;
                let hi = parse_u64(tokens.next(), "FILTER hi")?;
                if lo > hi {
                    return Err(format!("FILTER range is empty: lo {lo} > hi {hi}"));
                }
                filter = Some((col.to_string(), lo, hi));
            }
            "GROUPBY" => {
                if agg != ScanAgg::Count {
                    return Err("duplicate aggregate clause".into());
                }
                let id = tokens
                    .next()
                    .ok_or_else(|| "GROUPBY needs <id> AGG avg <val>".to_string())?;
                if tokens.next() != Some("AGG") || tokens.next() != Some("avg") {
                    return Err("GROUPBY only supports `AGG avg`".into());
                }
                let val = tokens
                    .next()
                    .ok_or_else(|| "GROUPBY … AGG avg needs a value column".to_string())?;
                agg = ScanAgg::GroupByAvg(id.to_string(), val.to_string());
            }
            "SUM" => {
                if agg != ScanAgg::Count {
                    return Err("duplicate aggregate clause".into());
                }
                let col = tokens
                    .next()
                    .ok_or_else(|| "SUM needs a column".to_string())?;
                agg = ScanAgg::Sum(col.to_string());
            }
            other => return Err(format!("unknown SCAN clause {other:?}")),
        }
    }
    Ok(Request::Scan { table, filter, agg })
}

fn parse_u64(token: Option<&str>, what: &str) -> Result<u64, String> {
    token
        .ok_or_else(|| format!("{what} is missing"))?
        .parse::<u64>()
        .map_err(|e| format!("{what} is not a u64: {e}"))
}

/// Append a `[len | payload]` frame to `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why [`FrameCursor::next_frame`] refused to produce a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`]; the stream cannot be
    /// resynchronised and must be closed.
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder: bytes go in via [`Self::push`], complete
/// frames come out via [`Self::next_frame`].  This is what lets one read
/// syscall yield a whole *batch* of pipelined requests.
#[derive(Debug, Default)]
pub struct FrameCursor {
    buf: Vec<u8>,
    start: usize,
}

impl FrameCursor {
    /// An empty cursor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer bounded
        // by one partial frame plus one read chunk.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= MAX_FRAME) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame payload, `Ok(None)` when more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME {
            return Err(FrameError::Oversized(len));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(payload))
    }
}

/// `{"code":200,"status":"ok", …fields}`.
pub fn ok_response(fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![
        ("code".to_string(), Json::Num(200.0)),
        ("status".to_string(), Json::Str("ok".into())),
    ];
    obj.extend(fields);
    Json::Obj(obj)
}

/// `{"code":<code>,"status":"error","error":<message>}`.
pub fn error_response(code: u16, message: &str) -> Json {
    Json::Obj(vec![
        ("code".to_string(), Json::Num(code as f64)),
        ("status".to_string(), Json::Str("error".into())),
        ("error".to_string(), Json::Str(message.to_string())),
    ])
}

/// The `code` field of a response, `0` when missing or non-numeric.
pub fn response_code(reply: &Json) -> u16 {
    reply
        .get("code")
        .and_then(Json::as_f64)
        .map(|c| c as u16)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(
            parse_request(b"GET user42").unwrap(),
            Request::Get {
                key: b"user42".to_vec()
            }
        );
        assert_eq!(
            parse_request(b"MGET a b c").unwrap(),
            Request::MGet {
                keys: vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]
            }
        );
        assert_eq!(
            parse_request(b"SCAN sensors FILTER ts 100 200 GROUPBY id AGG avg val").unwrap(),
            Request::Scan {
                table: "sensors".into(),
                filter: Some(("ts".into(), 100, 200)),
                agg: ScanAgg::GroupByAvg("id".into(), "val".into()),
            }
        );
        assert_eq!(
            parse_request(b"SCAN sensors SUM val").unwrap(),
            Request::Scan {
                table: "sensors".into(),
                filter: None,
                agg: ScanAgg::Sum("val".into()),
            }
        );
        assert_eq!(parse_request(b"STATS").unwrap(), Request::Stats);
        assert_eq!(
            parse_request(b"PUT sensors 17 3 9000").unwrap(),
            Request::Put {
                table: "sensors".into(),
                row: vec![17, 3, 9000],
            }
        );
        assert_eq!(
            parse_request(b"DEL sensors 17").unwrap(),
            Request::Del {
                table: "sensors".into(),
                key: 17,
            }
        );
        assert_eq!(parse_request(b"FLUSH").unwrap(), Request::Flush);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b""[..],
            b"FROB x",
            b"GET",
            b"GET a b",
            b"MGET",
            b"SCAN",
            b"SCAN t FILTER ts 5",
            b"SCAN t FILTER ts 9 3",
            b"SCAN t GROUPBY id AGG min val",
            b"SCAN t BOGUS",
            b"STATS now",
            b"PUT",
            b"PUT t",
            b"PUT t 1 nope 3",
            b"PUT t -4",
            b"DEL t",
            b"DEL t x",
            b"DEL t 1 2",
            b"FLUSH now",
            b"\xff\xfe",
        ] {
            assert!(parse_request(bad).is_err(), "{:?}", bad);
        }
    }

    #[test]
    fn frame_cursor_reassembles_split_and_batched_frames() {
        let mut wire = Vec::new();
        frame_into(&mut wire, b"GET a");
        frame_into(&mut wire, b"GET b");
        frame_into(&mut wire, b"STATS");
        let mut cursor = FrameCursor::new();
        // Feed one byte at a time: frames must come out intact and in order.
        let mut got = Vec::new();
        for byte in &wire {
            cursor.push(std::slice::from_ref(byte));
            while let Some(frame) = cursor.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(
            got,
            vec![b"GET a".to_vec(), b"GET b".to_vec(), b"STATS".to_vec()]
        );
        assert_eq!(cursor.pending_bytes(), 0);
    }

    #[test]
    fn frame_cursor_rejects_oversized_lengths() {
        let mut cursor = FrameCursor::new();
        cursor.push(&(u32::MAX).to_le_bytes());
        assert_eq!(
            cursor.next_frame(),
            Err(FrameError::Oversized(u32::MAX as usize))
        );
    }

    #[test]
    fn response_codes_round_trip() {
        assert_eq!(response_code(&ok_response(vec![])), 200);
        assert_eq!(response_code(&error_response(400, "nope")), 400);
        let rendered = error_response(500, "boom").render();
        assert_eq!(response_code(&Json::parse(&rendered).unwrap()), 500);
    }
}
