//! A small blocking client for the wire protocol, used by the loopback
//! tests and the `repro_serve` load generator.
//!
//! [`Client::request`] is the simple call-response path;
//! [`Client::send`] + [`Client::recv`] expose pipelining — queue many
//! requests before reading any reply, and the server answers them in order.

use crate::protocol::{frame_into, FrameCursor, FrameError};
use leco_bench::report::Json;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    cursor: FrameCursor,
    chunk: Vec<u8>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            cursor: FrameCursor::new(),
            chunk: vec![0u8; 16 * 1024],
        })
    }

    /// Queue one command without waiting for its reply (pipelining).
    pub fn send(&mut self, command: &str) -> std::io::Result<()> {
        self.send_payload(command.as_bytes())
    }

    /// Queue a raw payload frame — lets tests send malformed bytes.
    pub fn send_payload(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let mut wire = Vec::with_capacity(4 + payload.len());
        frame_into(&mut wire, payload);
        self.stream.write_all(&wire)
    }

    /// Send raw bytes with no framing — for corrupt-stream tests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read the next reply frame and parse it as JSON.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        loop {
            match self.cursor.next_frame() {
                Ok(Some(payload)) => {
                    let text = String::from_utf8_lossy(&payload);
                    return Json::parse(&text).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad reply JSON: {e}"),
                        )
                    });
                }
                Ok(None) => {}
                Err(FrameError::Oversized(len)) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("oversized reply frame ({len} bytes)"),
                    ))
                }
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-reply",
                ));
            }
            let (chunk, cursor) = (&self.chunk[..n], &mut self.cursor);
            cursor.push(chunk);
        }
    }

    /// Send one command and wait for its reply.
    pub fn request(&mut self, command: &str) -> std::io::Result<Json> {
        self.send(command)?;
        self.recv()
    }
}
