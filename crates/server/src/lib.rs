//! `leco-server` — a threaded TCP query frontend over sharded LeCo stores.
//!
//! This crate turns the library stack into a *served* database: a
//! length-prefixed line protocol (`GET`, `MGET`, `SCAN`, `PUT`, `DEL`,
//! `FLUSH`, `STATS`) accepted by a thread-per-connection frontend,
//! dispatched to `N` shard workers — each owning a slice of every row-group
//! table file, an optional WAL-backed [`leco_ingest::LiveTable`] slice, and
//! a [`leco_kvstore::Store`] — with the `leco-scan` work-stealing pool
//! underneath every shard-local scan and multi-get.  See `docs/SERVING.md`
//! for the frame layout, routing rules and lifecycle, and `docs/INGEST.md`
//! for the write path behind `PUT`/`DEL`/`FLUSH`.
//!
//! * **Routing.**  Point lookups go to `fnv1a64(key) % shards`
//!   ([`shard::shard_for_key`]); scans fan out to all shards and merge
//!   *integer partials*, so a sharded result is bit-identical to a single
//!   in-process [`leco_scan::Scanner`] run at any shard count.
//! * **Pipelining.**  A connection drains every buffered request frame into
//!   one batch and dispatches the whole batch before awaiting replies, so a
//!   pipelining client keeps all shards busy from a single socket.
//! * **Isolation.**  Malformed requests answer `400` and the connection
//!   survives; shard failures answer `500` and the worker survives; only a
//!   corrupt frame length closes the connection.
//! * **Observability.**  Connection gauge, request/error counters,
//!   per-command latency histograms and the shard queue-depth gauge, all in
//!   the `srv.*` namespace of the [`leco_obs`] registry.
//!
//! ```no_run
//! use leco_server::{Client, Server, ServerConfig, ShardSetBuilder};
//!
//! # fn demo() -> std::io::Result<()> {
//! let ts: Vec<u64> = (0..10_000).collect();
//! let val: Vec<u64> = (0..10_000).map(|i| i * 7).collect();
//! let set = ShardSetBuilder::new("/tmp/leco-serve", 2)
//!     .table("t", &["ts", "val"], vec![ts, val])
//!     .records(vec![(b"alpha".to_vec(), b"1".to_vec())])
//!     .build()?;
//! let server = Server::start(set, ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let reply = client.request("SCAN t FILTER ts 100 200")?;
//! assert_eq!(leco_server::protocol::response_code(&reply), 200);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod fixture;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::Client;
pub use fixture::{LiveTableSpec, ShardSet, ShardSetBuilder, TableSpec};
pub use protocol::{Request, ScanAgg, MAX_FRAME};
pub use server::{Server, ServerConfig};
pub use shard::{shard_for_key, Manifest, ShardData};
