//! Shards: routing, the per-shard worker loop, and the manifest.
//!
//! Each shard worker is one thread owning its slice of the data — a set of
//! row-group table files plus a [`Store`] — and a receiver of
//! [`ShardJob`]s.  Point lookups route to exactly one shard by key hash
//! ([`shard_for_key`]); scans fan out to every shard holding a slice of the
//! table and come back as *integer partials* ([`ShardScanPartial`]) that
//! the connection merges with exact arithmetic, so a sharded result is
//! bit-identical to a single in-process scan.
//!
//! A bad request (unknown table or column) and an internal failure both
//! come back as replies, never as a dead worker: the worker loop only exits
//! when every job sender is gone.

use crate::protocol::ScanAgg;
use leco_bench::report::Json;
use leco_columnar::TableFile;
use leco_ingest::{Agg as IngestAgg, LiveTable, ScanSpec};
use leco_kvstore::Store;
use leco_scan::Scanner;
use std::collections::HashMap;
use std::sync::mpsc;

/// FNV-1a over the key bytes — the stable, dependency-free routing hash the
/// manifest records.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard owning `key` under `shards`-way hash routing.
pub fn shard_for_key(key: &[u8], shards: usize) -> usize {
    (fnv1a64(key) % shards.max(1) as u64) as usize
}

/// One shard's slice of every table plus its key-value store.
pub struct ShardData {
    /// Shard index in `0..shards`.
    pub id: usize,
    /// Table name → this shard's row-group file for that table.
    pub tables: HashMap<String, TableFile>,
    /// Live table name → this shard's WAL-backed ingestible slice.  Rows
    /// route here by the key column's hash, so one key's rows all live on
    /// one shard.
    pub live_tables: HashMap<String, LiveTable>,
    /// This shard's slice of the key space.
    pub store: Store,
}

/// What a shard is asked to do.  `MGet` carries the keys' positions in the
/// original request so the connection can scatter the answers back in
/// request order.
pub enum ShardCmd {
    /// Exact-match point lookup.
    Get {
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Batched exact-match lookups for the subset of an `MGET` routed here.
    MGet {
        /// `(position in the client's key list, key)` pairs.
        keys: Vec<(usize, Vec<u8>)>,
    },
    /// One shard's share of a `SCAN`.
    Scan {
        /// Table name.
        table: String,
        /// Optional `lo <= col <= hi` predicate.
        filter: Option<(String, u64, u64)>,
        /// Aggregate to compute.
        agg: ScanAgg,
    },
    /// Ingest one row into a live table (the row's key routed it here).
    Put {
        /// Live table name.
        table: String,
        /// One value per column, schema order.
        row: Vec<u64>,
    },
    /// Delete every live row with this key from a live table.
    Del {
        /// Live table name.
        table: String,
        /// Key-column value.
        key: u64,
    },
    /// Freeze and compact every live table on this shard.
    Flush,
}

/// Exact partial aggregates of one shard's scan, merged by the connection.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardScanPartial {
    /// Rows passing the filter on this shard.
    pub rows_selected: u64,
    /// Rows scanned after zone-map pruning on this shard.
    pub rows_scanned: u64,
    /// Morsels executed on this shard.
    pub morsels: usize,
    /// `SUM` partial.
    pub sum: u128,
    /// `(id, sum, count)` group-by partials, sorted by id.
    pub groups: Vec<(u64, u128, u64)>,
}

impl ShardScanPartial {
    /// Fold `other` into `self` with exact integer arithmetic.
    pub fn merge(&mut self, other: &ShardScanPartial) {
        self.rows_selected += other.rows_selected;
        self.rows_scanned += other.rows_scanned;
        self.morsels += other.morsels;
        self.sum += other.sum;
        // Merge two id-sorted partial lists.
        let mut merged = Vec::with_capacity(self.groups.len() + other.groups.len());
        let (mut a, mut b) = (
            self.groups.iter().peekable(),
            other.groups.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, sa, ca)), Some(&&(ib, sb, cb))) => {
                    if ia == ib {
                        merged.push((ia, sa + sb, ca + cb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, sa, ca));
                        a.next();
                    } else {
                        merged.push((ib, sb, cb));
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        self.groups = merged;
    }

    /// Finalise the group partials into `(id, avg)` rows — one division per
    /// group, performed exactly once across the whole distributed scan.
    pub fn finalize_groups(&self) -> Vec<(u64, f64)> {
        let map: HashMap<u64, (u128, u64)> = self
            .groups
            .iter()
            .map(|&(id, sum, count)| (id, (sum, count)))
            .collect();
        leco_columnar::exec::finalize_group_avgs(&map)
    }
}

/// A shard's answer to one [`ShardCmd`].
pub enum ShardReply {
    /// `Get`: the value, if the key exists.
    Value(Option<Vec<u8>>),
    /// `MGet`: `(position, value)` for every key routed to this shard.
    Values(Vec<(usize, Option<Vec<u8>>)>),
    /// `Scan`: this shard's exact partials.
    Scan(Box<ShardScanPartial>),
    /// `Put` / `Del`: the write is durable (WAL fsync'd) on this shard.
    Acked,
    /// `Flush`: rows this shard moved into immutable table files.
    Flushed {
        /// Live rows flushed out of frozen segments.
        rows_flushed: u64,
        /// New table files written.
        files_written: u64,
    },
    /// The request named a table/column this shard does not have → `400`.
    BadRequest(String),
    /// The shard failed to execute a well-formed request → `500`.
    Error(String),
}

/// One unit of work sent to a shard: the command plus the reply route.
pub struct ShardJob {
    /// What to execute.
    pub cmd: ShardCmd,
    /// Identifies this shard's contribution when a request fans out.
    pub tag: usize,
    /// Where the reply goes; a dropped receiver (dead connection) is fine.
    pub reply: mpsc::Sender<(usize, ShardReply)>,
}

/// The shard worker loop: drain jobs until every sender is gone.
///
/// `scan_threads` is the work-stealing parallelism each shard-local
/// [`Scanner`] run uses.  Errors are turned into replies — a bad request
/// never kills the worker.
pub fn run_shard_worker(data: &ShardData, jobs: mpsc::Receiver<ShardJob>, scan_threads: usize) {
    while let Ok(job) = jobs.recv() {
        leco_obs::gauge!("srv.shard.queue_depth").sub(1);
        leco_obs::counter!("srv.shard.jobs").inc();
        let reply = execute(data, &job.cmd, scan_threads);
        // A send error means the connection died mid-request; the shard
        // just moves on.
        let _ = job.reply.send((job.tag, reply));
    }
}

fn execute(data: &ShardData, cmd: &ShardCmd, scan_threads: usize) -> ShardReply {
    match cmd {
        ShardCmd::Get { key } => match data.store.get(key) {
            Ok(value) => ShardReply::Value(value),
            Err(e) => ShardReply::Error(format!("shard {}: get failed: {e}", data.id)),
        },
        ShardCmd::MGet { keys } => {
            let flat: Vec<Vec<u8>> = keys.iter().map(|(_, k)| k.clone()).collect();
            match data.store.multi_get(&flat, scan_threads) {
                Ok(found) => ShardReply::Values(
                    keys.iter()
                        .zip(found)
                        .map(|(&(pos, ref key), hit)| {
                            // multi_get seeks (lower bound); keep only exact
                            // matches, the point-lookup semantic.
                            let value = hit.filter(|(k, _)| k == key).map(|(_, v)| v);
                            (pos, value)
                        })
                        .collect(),
                ),
                Err(e) => ShardReply::Error(format!("shard {}: multi_get failed: {e}", data.id)),
            }
        }
        ShardCmd::Scan { table, filter, agg } => {
            execute_scan(data, table, filter, agg, scan_threads)
        }
        ShardCmd::Put { table, row } => {
            let Some(live) = data.live_tables.get(table) else {
                return ShardReply::BadRequest(format!("unknown live table {table:?}"));
            };
            // `put` returns only after the WAL batch is fsync'd, so this
            // reply is the durability acknowledgement.
            match live.put(row) {
                Ok(()) => ShardReply::Acked,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                    ShardReply::BadRequest(e.to_string())
                }
                Err(e) => ShardReply::Error(format!("shard {}: put failed: {e}", data.id)),
            }
        }
        ShardCmd::Del { table, key } => {
            let Some(live) = data.live_tables.get(table) else {
                return ShardReply::BadRequest(format!("unknown live table {table:?}"));
            };
            match live.delete(*key) {
                Ok(()) => ShardReply::Acked,
                Err(e) => ShardReply::Error(format!("shard {}: del failed: {e}", data.id)),
            }
        }
        ShardCmd::Flush => {
            let mut rows_flushed = 0u64;
            let mut files_written = 0u64;
            for (name, live) in &data.live_tables {
                match live.flush() {
                    Ok(report) => {
                        rows_flushed += report.rows_flushed;
                        files_written += report.files_written as u64;
                    }
                    Err(e) => {
                        return ShardReply::Error(format!(
                            "shard {}: flush of {name:?} failed: {e}",
                            data.id
                        ))
                    }
                }
            }
            ShardReply::Flushed {
                rows_flushed,
                files_written,
            }
        }
    }
}

fn execute_scan(
    data: &ShardData,
    table: &str,
    filter: &Option<(String, u64, u64)>,
    agg: &ScanAgg,
    scan_threads: usize,
) -> ShardReply {
    if let Some(live) = data.live_tables.get(table) {
        return execute_live_scan(data.id, live, filter, agg, scan_threads);
    }
    let Some(file) = data.tables.get(table) else {
        return ShardReply::BadRequest(format!("unknown table {table:?}"));
    };
    let mut scan = Scanner::new(file);
    if let Some((col, lo, hi)) = filter {
        scan = match scan.try_filter(col, *lo, *hi) {
            Ok(scan) => scan,
            Err(e) => return ShardReply::BadRequest(e.to_string()),
        };
    }
    scan = match agg {
        ScanAgg::Count => scan,
        ScanAgg::Sum(col) => match scan.try_sum(col) {
            Ok(scan) => scan,
            Err(e) => return ShardReply::BadRequest(e.to_string()),
        },
        ScanAgg::GroupByAvg(id, val) => match scan.try_group_by_avg(id, val) {
            Ok(scan) => scan,
            Err(e) => return ShardReply::BadRequest(e.to_string()),
        },
    };
    match scan.run(scan_threads) {
        Ok(result) => ShardReply::Scan(Box::new(ShardScanPartial {
            rows_selected: result.rows_selected,
            rows_scanned: result.rows_scanned,
            morsels: result.morsels,
            sum: result.sum,
            groups: result.group_partials,
        })),
        Err(e) => ShardReply::Error(format!("shard {}: scan failed: {e}", data.id)),
    }
}

/// A shard-local scan over a live table: snapshot-consistent across
/// memtable, frozen segments and compacted files, returning the same exact
/// integer partials as a [`Scanner`] run — so a sharded scan of a live
/// table merges bit-identically too.
fn execute_live_scan(
    shard_id: usize,
    live: &LiveTable,
    filter: &Option<(String, u64, u64)>,
    agg: &ScanAgg,
    scan_threads: usize,
) -> ShardReply {
    let mut spec = ScanSpec::count();
    if let Some((col, lo, hi)) = filter {
        spec = spec.filter(col, *lo, *hi);
    }
    spec.agg = match agg {
        ScanAgg::Count => IngestAgg::Count,
        ScanAgg::Sum(col) => IngestAgg::Sum(col.clone()),
        ScanAgg::GroupByAvg(id, val) => IngestAgg::GroupAvg {
            id_col: id.clone(),
            val_col: val.clone(),
        },
    };
    match live.scan(&spec, scan_threads) {
        Ok(out) => ShardReply::Scan(Box::new(ShardScanPartial {
            rows_selected: out.rows_selected,
            rows_scanned: out.rows_scanned,
            morsels: 0,
            sum: out.sum,
            groups: out.group_partials,
        })),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
            ShardReply::BadRequest(e.to_string())
        }
        Err(e) => ShardReply::Error(format!("shard {shard_id}: live scan failed: {e}")),
    }
}

/// The manifest: which shard holds which rows of which table, and how keys
/// route.  Written next to the shard files as `manifest.json` so an
/// operator (or a future reload path) can see the layout.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Number of shards.
    pub shards: usize,
    /// Key routing scheme (always FNV-1a modulo shards today).
    pub kv_routing: String,
    /// Records per shard store, indexed by shard.
    pub kv_records: Vec<u64>,
    /// Per table: `(name, per-shard (row_start, rows))` — contiguous row
    /// ranges, shard `k` holding the `k`-th slice.
    pub tables: Vec<(String, Vec<(u64, u64)>)>,
    /// Live (writable) tables: `(name, key_col)`.  A `PUT`/`DEL` routes to
    /// `fnv1a64(row[key_col]) % shards`; scans fan out like static tables.
    pub live_tables: Vec<(String, usize)>,
}

impl Manifest {
    /// Render as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shards".into(), Json::Num(self.shards as f64)),
            ("kv_routing".into(), Json::Str(self.kv_routing.clone())),
            (
                "kv_records".into(),
                Json::Arr(
                    self.kv_records
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            (
                "tables".into(),
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|(name, slices)| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(name.clone())),
                                (
                                    "slices".into(),
                                    Json::Arr(
                                        slices
                                            .iter()
                                            .map(|&(start, rows)| {
                                                Json::Obj(vec![
                                                    ("row_start".into(), Json::Num(start as f64)),
                                                    ("rows".into(), Json::Num(rows as f64)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "live_tables".into(),
                Json::Arr(
                    self.live_tables
                        .iter()
                        .map(|(name, key_col)| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(name.clone())),
                                ("key_col".into(), Json::Num(*key_col as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for i in 0..1000u64 {
                let key = format!("user{i:08}");
                let s = shard_for_key(key.as_bytes(), shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_key(key.as_bytes(), shards), "stable");
            }
        }
        // All shards get some keys (FNV spreads this keyspace).
        let mut seen = [false; 4];
        for i in 0..1000u64 {
            seen[shard_for_key(format!("user{i:08}").as_bytes(), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn partial_merge_is_exact_and_order_independent() {
        let a = ShardScanPartial {
            rows_selected: 10,
            rows_scanned: 100,
            morsels: 2,
            sum: 1 << 90,
            groups: vec![(1, 10, 2), (3, 30, 3)],
        };
        let b = ShardScanPartial {
            rows_selected: 5,
            rows_scanned: 50,
            morsels: 1,
            sum: 1,
            groups: vec![(1, 5, 1), (2, 20, 2), (4, 40, 4)],
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.sum, (1u128 << 90) + 1);
        assert_eq!(
            ab.groups,
            vec![(1, 15, 3), (2, 20, 2), (3, 30, 3), (4, 40, 4)]
        );
        let avgs = ab.finalize_groups();
        assert_eq!(avgs[0], (1, 5.0));
    }
}
