//! `repro_serve` — load generator for the `leco-server` TCP frontend.
//!
//! Builds a sharded fixture (a LeCo-encoded sensor table split across the
//! shards plus a hash-partitioned key-value store), starts the server on a
//! loopback port, and sweeps `connections × target-qps` points.  Each
//! connection issues a deterministic closed-loop mix of `GET`, `MGET` and
//! `SCAN` requests (optionally paced to a per-connection qps target),
//! records every request's latency client-side, and *verifies* every
//! reply: non-2xx codes, wrong `GET` values and wrong `SCAN` row counts
//! all count as errors.  The run fails (non-zero exit) if any error is
//! seen, so a CI smoke run doubles as an end-to-end correctness check.
//!
//! Emits `BENCH_serve.json` (re-parsed as a self-check) with exact
//! nearest-rank p50/p95/p99 latencies and achieved throughput per sweep
//! point; CI's `bench-gate` holds `errors` exactly at 0 and applies the
//! factor-of-4 cross-machine tripwire to throughput and p50 latency.
//!
//! Environment knobs (defaults tuned for a CI-sized run):
//! `LECO_SERVE_SHARDS` (2), `LECO_SERVE_ROWS` (200000), `LECO_SERVE_KEYS`
//! (20000), `LECO_SERVE_CONNS` ("1,2,8"), `LECO_SERVE_QPS` ("500,0" —
//! per-connection targets, 0 = unthrottled), `LECO_SERVE_REQS` (400,
//! requests per connection per point), `LECO_SERVE_SCAN_THREADS` (2).

use leco_bench::report::{BenchReport, Json, TextTable};
use leco_columnar::{Encoding, TableFileOptions};
use leco_datasets::tables::{sensor_table, SensorDistribution};
use leco_obs::Stopwatch;
use leco_server::{Client, Server, ServerConfig, ShardSetBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(name: &str, default: &str) -> Vec<usize> {
    std::env::var(name)
        .unwrap_or_else(|_| default.to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect()
}

struct Workload {
    keys: Vec<String>,
    values: Vec<String>,
    ts_min: u64,
    ts_max: u64,
    /// Expected `rows_selected` for the fixed verification window.
    verify_window: (u64, u64, u64),
}

fn key_of(i: usize) -> String {
    format!("user{:012}", i as u64 * 37)
}

fn value_of(i: usize) -> String {
    format!("value-{i:06}")
}

/// Nearest-rank percentile of an ascending-sorted sample, in microseconds.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> std::io::Result<()> {
    let shards = env_usize("LECO_SERVE_SHARDS", 2).max(1);
    let rows = env_usize("LECO_SERVE_ROWS", 200_000).max(10_000);
    let n_keys = env_usize("LECO_SERVE_KEYS", 20_000).max(100);
    let conns_sweep = env_list("LECO_SERVE_CONNS", "1,2,8");
    let qps_sweep = env_list("LECO_SERVE_QPS", "500,0");
    let reqs_per_conn = env_usize("LECO_SERVE_REQS", 400).max(10);
    let scan_threads = env_usize("LECO_SERVE_SCAN_THREADS", 2).max(1);

    println!("# leco-server load test — {shards} shards, {rows} table rows, {n_keys} kv records\n");

    // ── Fixture: sensor table sliced across shards + hash-partitioned kv.
    let t = sensor_table(rows, SensorDistribution::Correlated, 42);
    let records: Vec<(Vec<u8>, Vec<u8>)> = (0..n_keys)
        .map(|i| (key_of(i).into_bytes(), value_of(i).into_bytes()))
        .collect();
    let (ts_min, ts_max) = (t.ts[0], *t.ts.last().expect("rows > 0"));
    // Fixed ~2% window used to verify SCAN row counts end-to-end.
    let v_lo = ts_min + (ts_max - ts_min) * 49 / 100;
    let v_hi = ts_min + (ts_max - ts_min) * 51 / 100;
    let v_expected = t.ts.iter().filter(|&&v| v_lo <= v && v <= v_hi).count() as u64;

    let mut dir = std::env::temp_dir();
    dir.push(format!("leco-repro-serve-{}", std::process::id()));
    let build = Stopwatch::start();
    let set = ShardSetBuilder::new(&dir, shards)
        .table_options(TableFileOptions {
            encoding: Encoding::Leco,
            row_group_size: 20_000,
            ..Default::default()
        })
        .table(
            "sensors",
            &["ts", "id", "val"],
            vec![t.ts.clone(), t.id, t.val],
        )
        .records(records)
        .build()?;
    eprintln!(
        "built {} shard(s) under {} in {:.2}s",
        shards,
        dir.display(),
        build.elapsed_secs()
    );

    let server = Server::start(
        set,
        ServerConfig {
            scan_threads,
            ..Default::default()
        },
    )?;
    let addr = server.local_addr();
    eprintln!("serving on {addr}");

    let workload = Workload {
        keys: (0..n_keys).map(key_of).collect(),
        values: (0..n_keys).map(value_of).collect(),
        ts_min,
        ts_max,
        verify_window: (v_lo, v_hi, v_expected),
    };

    // ── Sweep connections × per-connection qps targets.
    let mut sweep = TextTable::new(vec![
        "connections",
        "target_qps",
        "requests",
        "qps",
        "p50_us",
        "p95_us",
        "p99_us",
        "errors",
    ]);
    let mut total_errors = 0u64;
    for &conns in &conns_sweep {
        for &target_qps in &qps_sweep {
            let errors = AtomicU64::new(0);
            let wall = Stopwatch::start();
            let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..conns.max(1))
                    .map(|c| {
                        let (errors, workload) = (&errors, &workload);
                        scope.spawn(move || {
                            run_connection(addr, c, reqs_per_conn, target_qps, workload, errors)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("load connection does not panic"))
                    .collect()
            });
            let wall_secs = wall.elapsed_secs();
            let mut merged: Vec<u64> = latencies.into_iter().flatten().collect();
            merged.sort_unstable();
            let requests = merged.len() as u64;
            let errs = errors.load(Ordering::Relaxed);
            total_errors += errs;
            sweep.row(vec![
                conns.to_string(),
                target_qps.to_string(),
                requests.to_string(),
                format!("{:.0}", requests as f64 / wall_secs),
                percentile(&merged, 0.50).to_string(),
                percentile(&merged, 0.95).to_string(),
                percentile(&merged, 0.99).to_string(),
                errs.to_string(),
            ]);
        }
    }
    sweep.print();

    let mut config = TextTable::new(vec!["shards", "rows", "kv_records", "reqs_per_conn"]);
    config.row(vec![
        shards.to_string(),
        rows.to_string(),
        n_keys.to_string(),
        reqs_per_conn.to_string(),
    ]);

    // ── STATS self-check: the registry must have seen every request.
    let mut client = Client::connect(addr)?;
    let stats = client.request("STATS")?;
    if leco_server::protocol::response_code(&stats) != 200 {
        eprintln!("STATS failed: {}", stats.render());
        total_errors += 1;
    }
    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let mut report = BenchReport::new("serve");
    report.add_table("config", &config);
    report.add_table("sweep", &sweep);
    let path = report.write()?;

    // Self-check: re-parse our own emission and re-verify the error column.
    let parsed = Json::parse(std::fs::read_to_string(&path)?.trim())
        .expect("BENCH_serve.json must re-parse");
    let rows_ok = parsed
        .get("sections")
        .and_then(Json::as_arr)
        .and_then(|sections| {
            sections
                .iter()
                .find(|s| s.get("label").and_then(Json::as_str) == Some("sweep"))
        })
        .and_then(|s| s.get("data").and_then(Json::as_arr))
        .is_some_and(|rows| {
            !rows.is_empty()
                && rows
                    .iter()
                    .all(|r| r.get("errors").and_then(Json::as_f64) == Some(0.0))
        });

    if total_errors > 0 || !rows_ok {
        eprintln!("FAIL: {total_errors} error(s) during the sweep");
        std::process::exit(1);
    }
    println!("\nall sweep points error-free; report self-check passed");
    Ok(())
}

/// One closed-loop connection: `reqs` requests of a deterministic mix,
/// optionally paced to `target_qps`.  Returns per-request latencies in µs;
/// verification failures bump `errors`.
fn run_connection(
    addr: std::net::SocketAddr,
    conn_id: usize,
    reqs: usize,
    target_qps: usize,
    w: &Workload,
    errors: &AtomicU64,
) -> Vec<u64> {
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(_) => {
            errors.fetch_add(reqs as u64, Ordering::Relaxed);
            return Vec::new();
        }
    };
    let mut latencies = Vec::with_capacity(reqs);
    let pace = (target_qps > 0).then(|| Duration::from_secs_f64(1.0 / target_qps as f64));
    let span = Stopwatch::start();
    for i in 0..reqs {
        // Deterministic per-connection stream so runs are comparable.
        let x = (conn_id * 1_000_003 + i) * 9973;
        let sw = Stopwatch::start();
        let ok = match i % 8 {
            // 5/8 GETs: mostly hits, every fourth a definite miss.
            0..=4 => {
                let miss = i % 4 == 3;
                let (cmd, want) = if miss {
                    (format!("GET missing{x:012}"), None)
                } else {
                    let k = x % w.keys.len();
                    (format!("GET {}", w.keys[k]), Some(w.values[k].as_str()))
                };
                verify_get(client.request(&cmd), want)
            }
            // 2/8 MGETs of 8 keys with one guaranteed miss.
            5 | 6 => {
                let ks: Vec<&str> = (0..7)
                    .map(|j| w.keys[(x + j * 131) % w.keys.len()].as_str())
                    .collect();
                let cmd = format!("MGET {} missing{x}", ks.join(" "));
                verify_code(client.request(&cmd))
            }
            // 1/8 SCANs over a ~2% window; the fixed window verifies counts.
            _ => {
                if i % 16 == 7 {
                    let (lo, hi, expected) = w.verify_window;
                    verify_scan(
                        client.request(&format!("SCAN sensors FILTER ts {lo} {hi}")),
                        Some(expected),
                    )
                } else {
                    let width = (w.ts_max - w.ts_min) / 50;
                    let lo = w.ts_min + (x as u64 * 7919) % (w.ts_max - w.ts_min - width);
                    verify_scan(
                        client.request(&format!(
                            "SCAN sensors FILTER ts {lo} {} GROUPBY id AGG avg val",
                            lo + width
                        )),
                        None,
                    )
                }
            }
        };
        latencies.push(sw.elapsed_ns() / 1_000);
        if !ok {
            errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(interval) = pace {
            let scheduled = interval * (i as u32 + 1);
            let elapsed = Duration::from_secs_f64(span.elapsed_secs());
            if let Some(wait) = scheduled.checked_sub(elapsed) {
                std::thread::sleep(wait);
            }
        }
    }
    latencies
}

fn verify_code(reply: std::io::Result<Json>) -> bool {
    matches!(reply, Ok(json) if leco_server::protocol::response_code(&json) == 200)
}

fn verify_get(reply: std::io::Result<Json>, want: Option<&str>) -> bool {
    let Ok(json) = reply else { return false };
    if leco_server::protocol::response_code(&json) != 200 {
        return false;
    }
    let found = json
        .get("found")
        .map(|f| *f == Json::Bool(true))
        .unwrap_or(false);
    match want {
        Some(value) => found && json.get("value").and_then(Json::as_str) == Some(value),
        None => !found,
    }
}

fn verify_scan(reply: std::io::Result<Json>, expected_rows: Option<u64>) -> bool {
    let Ok(json) = reply else { return false };
    if leco_server::protocol::response_code(&json) != 200 {
        return false;
    }
    match expected_rows {
        Some(expected) => json.get("rows_selected").and_then(Json::as_f64) == Some(expected as f64),
        None => json.get("rows_selected").is_some(),
    }
}
