//! Property test: for any sample set and any quantile, the histogram's
//! bucket bounds contain the true quantile — "exact to within one bucket".

use leco_obs::Histogram;
use proptest::prelude::*;

/// The value at rank `floor(q · (n−1))` of the sorted samples: the same
/// rank convention `Histogram::quantile_bounds` documents.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((sorted.len() - 1) as f64 * q) as usize;
    sorted[rank]
}

proptest! {
    #[test]
    fn quantile_bounds_contain_true_quantile(
        mut samples in proptest::collection::vec(any::<u64>(), 1..512),
        q in 0.0f64..=1.0,
    ) {
        // In the noop build nothing records, so there is nothing to check.
        if leco_obs::active() {
            leco_obs::set_enabled(true);
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            let truth = true_quantile(&samples, q);
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty");
            prop_assert!(lo <= truth && truth <= hi,
                "true quantile {truth} outside bucket [{lo}, {hi}] for q={q}");
            // The conservative point estimate is the bucket upper bound.
            prop_assert_eq!(h.quantile(q), hi);
            // And the bucket is tight: one power-of-two wide (or the zero bucket).
            prop_assert!(hi - lo < lo.max(1), "bucket wider than one octave");
        }
    }

    #[test]
    fn count_and_sum_are_exact(
        samples in proptest::collection::vec(any::<u32>(), 0..256),
    ) {
        if leco_obs::active() {
            leco_obs::set_enabled(true);
            let h = Histogram::new();
            for &s in &samples {
                h.record(s as u64);
            }
            prop_assert_eq!(h.count(), samples.len() as u64);
            prop_assert_eq!(h.sum(), samples.iter().map(|&s| s as u64).sum::<u64>());
        }
    }
}
