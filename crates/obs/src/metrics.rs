//! Lock-free metric primitives and the process-global registry.
//!
//! All three metric kinds share one implementation idea: writes go to
//! cache-line-padded atomic shards indexed by a per-thread slot, reads sum
//! the shards. Nothing blocks on the hot path; the only mutex in this module
//! guards name→handle resolution inside [`Registry`], which callers amortise
//! away with the `counter!`/`gauge!`/`histogram!` macros.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of atomic shards per counter/histogram. Threads map onto shards
/// round-robin; 16 covers the scan pool's worker counts (≤ CPU cores on the
/// bench machines) with few collisions, and summing 16 relaxed loads on read
/// is negligible.
const SHARDS: usize = 16;

/// Histogram bucket count: one bucket per possible bit-width of a `u64`
/// sample (1..=64) plus a dedicated bucket for zero.
pub const BUCKETS: usize = 65;

/// A `u64` atomic padded to its own cache line so shards never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

/// The shard this thread writes to. Assigned round-robin on first use and
/// cached in TLS, so steady-state cost is one TLS read.
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(s);
        }
        s
    })
}

/// Is recording live right now? (Compile-time `noop` and the runtime flag.)
#[inline(always)]
fn live() -> bool {
    crate::active() && crate::enabled()
}

/// A monotonic counter, sharded over padded atomics.
///
/// `inc`/`add` are wait-free and touch only this thread's shard;
/// [`Counter::value`] sums the shards with relaxed loads, so a value read
/// concurrently with writers is a valid snapshot of some interleaving.
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A standalone counter (not registered anywhere). Most callers want
    /// [`crate::counter()`] / [`counter!`](crate::counter!) instead.
    pub const fn new() -> Self {
        Counter {
            shards: [const { PaddedU64::new() }; SHARDS],
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if live() {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A signed instantaneous value (queue depths, buffer occupancy).
///
/// Unlike counters, gauges are a single atomic: they are read as often as
/// they are written in the intended uses, and `add`/`sub` must act on one
/// consistent cell for the value to mean anything.
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A standalone gauge (not registered anywhere).
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if live() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (e.g. tasks enqueued).
    #[inline]
    pub fn add(&self, n: i64) {
        if live() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n` (e.g. a task dequeued).
    #[inline]
    pub fn sub(&self, n: i64) {
        if live() {
            self.value.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// Bucket index for a sample: 0 for 0, otherwise the sample's bit width.
/// Bucket `i ≥ 1` therefore covers `[2^(i-1), 2^i - 1]` — log₂ buckets with
/// exact, data-independent boundaries.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
pub(crate) fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Each sample lands in the bucket matching its bit width, so quantile
/// queries are exact to within one power-of-two bucket: for any `q`, the
/// true q-quantile of the recorded samples is guaranteed to lie inside the
/// bucket returned by [`Histogram::quantile_bounds`]. Counts are sharded
/// like [`Counter`]; the running sum keeps mean latency cheap.
pub struct Histogram {
    counts: [[PaddedU64; BUCKETS]; SHARDS],
    sum: [PaddedU64; SHARDS],
}

impl Histogram {
    /// A standalone histogram (not registered anywhere).
    pub const fn new() -> Self {
        Histogram {
            counts: [const { [const { PaddedU64::new() }; BUCKETS] }; SHARDS],
            sum: [const { PaddedU64::new() }; SHARDS],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if live() {
            let s = shard_index();
            self.counts[s][bucket_of(v)]
                .0
                .fetch_add(1, Ordering::Relaxed);
            self.sum[s].0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Record a duration in seconds as integer nanoseconds.
    #[inline]
    pub fn record_secs(&self, secs: f64) {
        if live() {
            self.record((secs * 1e9) as u64);
        }
    }

    /// Time `f` and record its duration in nanoseconds. When recording is
    /// off this is exactly `f()` — no clock reads.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if live() {
            let sw = crate::Stopwatch::start();
            let out = f();
            self.record(sw.elapsed_ns());
            out
        } else {
            f()
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.merged_counts().iter().sum()
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
            .iter()
            .fold(0u64, |a, s| a.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    /// Per-bucket counts aggregated across shards.
    pub fn merged_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for shard in &self.counts {
            for (o, c) in out.iter_mut().zip(shard.iter()) {
                *o += c.0.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Inclusive `[lo, hi]` bounds of the bucket containing the q-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or `None` if the histogram is empty.
    ///
    /// The rank is `floor(q · (n − 1))` — the q-quantile is the value at
    /// that rank in the sorted sample sequence — and because buckets are
    /// value-ordered, that value provably lies within the returned range.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        let counts = self.merged_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return None;
        }
        let rank = ((n - 1) as f64 * q.clamp(0.0, 1.0)) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(bucket_bounds(i));
            }
        }
        Some(bucket_bounds(BUCKETS - 1))
    }

    /// Upper bound of the bucket containing the q-quantile (a conservative
    /// quantile estimate), or 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map(|(_, hi)| hi).unwrap_or(0)
    }

    /// Conservative (p50, p95, p99) in one pass over the merged buckets.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Point-in-time copy of one histogram's aggregate state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Conservative p50/p95/p99 (bucket upper bounds).
    pub p50: u64,
    /// 95th percentile bound.
    pub p95: u64,
    /// 99th percentile bound.
    pub p99: u64,
}

/// Point-in-time copy of every metric in a [`Registry`], keyed by name.
///
/// Snapshots taken before and after a workload subtract cleanly via
/// [`MetricsSnapshot::counter_delta`] / [`MetricsSnapshot::hist_count_delta`],
/// which is how the exactness tests and `BENCH_scan_obs.json` isolate one
/// run's activity from the process-global totals.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 if absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram sample count, 0 if absent.
    pub fn hist_count(&self, name: &str) -> u64 {
        self.histograms.get(name).map(|h| h.count).unwrap_or(0)
    }

    /// How much `name` grew since `earlier`.
    pub fn counter_delta(&self, earlier: &MetricsSnapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }

    /// How many samples `name` gained since `earlier`.
    pub fn hist_count_delta(&self, earlier: &MetricsSnapshot, name: &str) -> u64 {
        self.hist_count(name)
            .saturating_sub(earlier.hist_count(name))
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Name → handle table for every metric in the process.
///
/// Handles are allocated once and leaked, so they are `&'static` and cheap
/// to cache at call sites; the interior mutex is only taken on
/// lookup/snapshot/render, never on record.
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

impl Registry {
    /// The process-global registry every wired crate records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| Registry {
            metrics: Mutex::new(BTreeMap::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut m = self.lock();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut m = self.lock();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut m = self.lock();
        match m
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert((*name).to_string(), c.value());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert((*name).to_string(), g.value());
                }
                Metric::Histogram(h) => {
                    let (p50, p95, p99) = h.percentiles();
                    snap.histograms.insert(
                        (*name).to_string(),
                        HistSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            p50,
                            p95,
                            p99,
                        },
                    );
                }
            }
        }
        snap
    }

    /// Render every metric in the Prometheus text exposition format
    /// (version 0.0.4) — the payload a future `leco-server` `/metrics`
    /// endpoint serves verbatim.
    ///
    /// Metric names have `.` and `-` mapped to `_`; histograms emit
    /// cumulative `_bucket{le="…"}` series over the log₂ bucket uppers plus
    /// `_sum`/`_count`, skipping empty buckets to keep the output short.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let m = self.lock();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            let pname: String = name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {}", c.value());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = writeln!(out, "{pname} {}", g.value());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    let counts = h.merged_counts();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum += c;
                        if c != 0 {
                            let (_, hi) = bucket_bounds(i);
                            let _ = writeln!(out, "{pname}_bucket{{le=\"{hi}\"}} {cum}");
                        }
                    }
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {cum}");
                    let _ = writeln!(out, "{pname}_sum {}", h.sum());
                    let _ = writeln!(out, "{pname}_count {cum}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn counter_sums_across_threads() {
        let _serial = testutil::serial();
        crate::set_enabled(true);
        let c = crate::counter("metrics_test.threads");
        let before = c.value();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        if crate::active() {
            assert_eq!(c.value() - before, 80_000);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[test]
    fn gauge_add_sub_set() {
        let _serial = testutil::serial();
        crate::set_enabled(true);
        let g = crate::gauge("metrics_test.gauge");
        g.set(10);
        g.add(5);
        g.sub(3);
        if crate::active() {
            assert_eq!(g.value(), 12);
        } else {
            assert_eq!(g.value(), 0);
        }
    }

    #[test]
    fn bucket_layout_is_exact() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            if i + 1 < BUCKETS {
                let (next_lo, _) = bucket_bounds(i + 1);
                assert_eq!(next_lo, hi + 1, "buckets must tile the u64 range");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bound_known_data() {
        if !crate::active() {
            return;
        }
        let _serial = testutil::serial();
        crate::set_enabled(true);
        let h = Histogram::new();
        // 100 samples of 10, one of 1000: p50 must sit in 10's bucket,
        // p99+ can be in 1000's bucket.
        for _ in 0..100 {
            h.record(10);
        }
        h.record(1000);
        assert_eq!(h.count(), 101);
        assert_eq!(h.sum(), 2000);
        let (lo, hi) = h.quantile_bounds(0.5).unwrap();
        assert!(lo <= 10 && 10 <= hi);
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert!(lo <= 1000 && 1000 <= hi);
        assert_eq!(
            h.quantile_bounds(0.0).unwrap(),
            bucket_bounds(bucket_of(10))
        );
    }

    #[test]
    fn histogram_time_records_once() {
        if !crate::active() {
            return;
        }
        let _serial = testutil::serial();
        crate::set_enabled(true);
        let h = Histogram::new();
        let out = h.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_and_deltas() {
        let _serial = testutil::serial();
        crate::set_enabled(true);
        let c = crate::counter("metrics_test.snap");
        let h = crate::histogram("metrics_test.snap_hist");
        let before = Registry::global().snapshot();
        c.add(7);
        h.record(100);
        let after = Registry::global().snapshot();
        if crate::active() {
            assert_eq!(after.counter_delta(&before, "metrics_test.snap"), 7);
            assert_eq!(after.hist_count_delta(&before, "metrics_test.snap_hist"), 1);
        } else {
            assert_eq!(after.counter_delta(&before, "metrics_test.snap"), 0);
        }
        assert_eq!(after.counter_delta(&before, "metrics_test.absent"), 0);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let _serial = testutil::serial();
        crate::set_enabled(true);
        crate::counter("metrics_test.render-me").inc();
        crate::histogram("metrics_test.render_hist").record(5);
        let text = Registry::global().render_text();
        assert!(text.contains("# TYPE metrics_test_render_me counter"));
        assert!(text.contains("# TYPE metrics_test_render_hist histogram"));
        assert!(text.contains("_bucket{le=\"+Inf\"}"));
        if crate::active() {
            assert!(text.contains("metrics_test_render_me 1"));
            // Bucket for 5 is [4,7].
            assert!(text.contains("metrics_test_render_hist_bucket{le=\"7\"} 1"));
        }
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let _serial = testutil::serial();
        crate::counter("metrics_test.kind_clash");
        crate::gauge("metrics_test.kind_clash");
    }
}
