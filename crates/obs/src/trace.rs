//! Scoped spans recorded into per-thread ring buffers.
//!
//! A span is opened with [`span("name")`](span) and closed when the returned
//! [`SpanGuard`] drops; the completed [`SpanRecord`] is pushed into the
//! current thread's ring. Rings are bounded (oldest records evicted), so
//! tracing a long run costs fixed memory. [`take_spans`] drains every ring
//! for export — `leco_bench::report` turns the records into Chrome
//! `trace_event` JSON.
//!
//! Span names must be `&'static str`: the hot path stores a pointer, never
//! formats or allocates. Per-thread rings use a `Mutex<VecDeque>` but the
//! lock is uncontended by construction (only the owning thread pushes;
//! [`take_spans`] is a cold path), so `lock()` is a single uncontended CAS.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Per-thread ring capacity. At scan granularity (a handful of spans per
/// 100k-row morsel) this holds minutes of activity; beyond it the oldest
/// spans are dropped, keeping memory bounded.
const RING_CAPACITY: usize = 1 << 14;

/// A completed span: `[start_ns, start_ns + dur_ns)` on thread `tid`,
/// relative to the process trace epoch ([`crate::epoch_ns`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name, e.g. `"scan.morsel.filter"`.
    pub name: &'static str,
    /// Small dense id of the recording thread (assigned on first span).
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    tid: u64,
    spans: Mutex<VecDeque<SpanRecord>>,
}

fn all_rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn thread_ring() -> Arc<Ring> {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    }
    RING.with(|cell| {
        cell.get_or_init(|| {
            let ring = Arc::new(Ring {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                spans: Mutex::new(VecDeque::new()),
            });
            all_rings()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            ring
        })
        .clone()
    })
}

/// An open span; records itself into the thread's ring when dropped.
///
/// Inactive when telemetry is off at open time: the guard is then inert and
/// drop does nothing (no clock reads either).
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    open: Option<(&'static str, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start_ns)) = self.open {
            let end_ns = crate::epoch_ns();
            let ring = thread_ring();
            let mut spans = ring.spans.lock().unwrap_or_else(|e| e.into_inner());
            if spans.len() == RING_CAPACITY {
                spans.pop_front();
            }
            spans.push_back(SpanRecord {
                name,
                tid: ring.tid,
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
            });
        }
    }
}

/// Open a span covering the scope of the returned guard:
///
/// ```
/// let _span = leco_obs::span("scan.morsel.filter");
/// // ... work measured by the span ...
/// ```
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        open: (crate::active() && crate::enabled()).then(|| (name, crate::epoch_ns())),
    }
}

/// Drain every thread's ring, returning all recorded spans sorted by start
/// time. Spans recorded after the drain begins land in the next call.
pub fn take_spans() -> Vec<SpanRecord> {
    let rings = all_rings().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for ring in rings.iter() {
        let mut spans = ring.spans.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(spans.drain(..));
    }
    out.sort_by_key(|s| (s.start_ns, s.tid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_scope_and_drain() {
        if !crate::active() {
            assert!(take_spans().is_empty());
            return;
        }
        let _serial = crate::testutil::serial();
        crate::set_enabled(true);
        let _ = take_spans(); // drop anything earlier tests left behind
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Sorted by start: outer opened first.
        assert_eq!(spans[0].name, "test.outer");
        assert_eq!(spans[1].name, "test.inner");
        assert!(spans[0].dur_ns >= 1_000_000);
        // Inner is nested within outer.
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans[1].start_ns + spans[1].dur_ns <= spans[0].start_ns + spans[0].dur_ns);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn spans_from_many_threads_carry_distinct_tids() {
        if !crate::active() {
            return;
        }
        let _serial = crate::testutil::serial();
        crate::set_enabled(true);
        let _ = take_spans();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _sp = span("test.worker");
                });
            }
        });
        let spans = take_spans();
        let worker_spans: Vec<_> = spans.iter().filter(|s| s.name == "test.worker").collect();
        assert_eq!(worker_spans.len(), 4);
        let tids: std::collections::BTreeSet<u64> = worker_spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4, "each thread gets its own tid");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _serial = crate::testutil::serial();
        let _ = take_spans();
        crate::set_enabled(false);
        {
            let _sp = span("test.disabled");
        }
        crate::set_enabled(true);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        if !crate::active() {
            return;
        }
        let _serial = crate::testutil::serial();
        crate::set_enabled(true);
        let _ = take_spans();
        for _ in 0..(RING_CAPACITY + 10) {
            let _sp = span("test.flood");
        }
        let spans = take_spans();
        assert_eq!(spans.len(), RING_CAPACITY);
    }
}
