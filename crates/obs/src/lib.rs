//! `leco-obs`: a zero-overhead metrics registry and span tracer.
//!
//! Every crate in the workspace that does real work — the scan engine, the
//! KV store, the columnar executor, the encode-path partitioners — records
//! into one process-global [`Registry`] of monotonic [`Counter`]s,
//! [`Gauge`]s and log-bucketed latency [`Histogram`]s, and can open scoped
//! [`span`]s that land in per-thread ring buffers for Chrome `trace_event`
//! export.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths never contend.** Counters and histograms are sharded over
//!    cache-line-padded `u64` atomics; each thread hashes to a fixed shard,
//!    so concurrent increments from the scan pool's workers touch disjoint
//!    cache lines. Aggregation (summing shards) happens only on read.
//! 2. **Off means off.** Telemetry is gated twice: a runtime switch
//!    ([`set_enabled`], initialised from the `LECO_OBS` environment
//!    variable, default on) for A/B overhead measurement inside one binary,
//!    and a `noop` cargo feature that makes [`active`] a compile-time
//!    `false` so every recording call folds to nothing.
//! 3. **No dependencies.** This crate sits below `leco-core`, so it is
//!    std-only; JSON/trace serialization lives in `leco_bench::report`.
//!
//! Handle lookup by name takes a registry mutex, so hot code caches the
//! returned `&'static` handle — the [`counter!`], [`gauge!`] and
//! [`histogram!`] macros do this in a function-local `OnceLock`, costing one
//! atomic load at steady state.

mod metrics;
mod trace;

pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot, Registry, BUCKETS};
pub use trace::{span, take_spans, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Compile-time master switch: `false` when built with the `noop` feature.
///
/// Recording methods check `active() && enabled()`; with `noop` on, the
/// whole expression is constant-folded to `false` and the method body
/// disappears.
#[inline(always)]
pub const fn active() -> bool {
    !cfg!(feature = "noop")
}

/// Runtime override: -1 = unset (fall back to env default), 0 = off, 1 = on.
static ENABLED_OVERRIDE: AtomicI8 = AtomicI8::new(-1);

fn env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("LECO_OBS").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Is telemetry currently recording?
///
/// `false` when built with the `noop` feature, when [`set_enabled`]`(false)`
/// was called, or when the `LECO_OBS` environment variable is `0`/`off`/
/// `false` and no override is set.
#[inline]
pub fn enabled() -> bool {
    if !active() {
        return false;
    }
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => env_default(),
    }
}

/// Turn telemetry on or off at runtime, overriding the `LECO_OBS` default.
///
/// Used by `repro_scan` to measure obs-on vs obs-off throughput inside a
/// single process (same build, same page cache).
pub fn set_enabled(on: bool) {
    ENABLED_OVERRIDE.store(on as i8, Ordering::Relaxed);
}

/// Nanoseconds since the process-wide trace epoch (first use).
///
/// All span timestamps share this epoch so traces from different threads
/// line up on one Chrome timeline.
#[inline]
pub fn epoch_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A started wall-clock timer; the one sanctioned way to measure elapsed
/// time in the wired crates (a CI lint forbids raw `Instant::now()` there).
///
/// `Stopwatch` is deliberately *not* gated by [`enabled`]: callers such as
/// `QueryStats` need wall-clock totals even when telemetry is off. To feed a
/// duration into the registry as well, pass the elapsed time to
/// [`Histogram::record_secs`] (which *is* gated).
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX` (≈584 years).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let n = self.0.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }
}

/// Look up (or create) a counter in the global registry. Prefer the caching
/// [`counter!`] macro in hot paths.
pub fn counter(name: &'static str) -> &'static Counter {
    Registry::global().counter(name)
}

/// Look up (or create) a gauge in the global registry. Prefer [`gauge!`] in
/// hot paths.
pub fn gauge(name: &'static str) -> &'static Gauge {
    Registry::global().gauge(name)
}

/// Look up (or create) a histogram in the global registry. Prefer
/// [`histogram!`] in hot paths.
pub fn histogram(name: &'static str) -> &'static Histogram {
    Registry::global().histogram(name)
}

/// `counter!("name")` — a [`Counter`] handle cached in a local `OnceLock`,
/// so repeated executions skip the registry mutex.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// `gauge!("name")` — a [`Gauge`] handle cached in a local `OnceLock`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// `histogram!("name")` — a [`Histogram`] handle cached in a local
/// `OnceLock`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    /// Unit tests that record into the global registry or flip the runtime
    /// enable flag serialize on this lock so they can assert exact values.
    pub fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_secs() >= 0.002);
        assert!(sw.elapsed_ns() >= 2_000_000);
    }

    #[test]
    fn runtime_toggle_gates_recording() {
        let _serial = testutil::serial();
        let c = counter("lib_test.toggle");
        set_enabled(false);
        c.inc();
        let off = c.value();
        set_enabled(true);
        c.inc();
        let on = c.value();
        set_enabled(true); // leave enabled for other tests
        if active() {
            assert_eq!(off, 0);
            assert_eq!(on, 1);
        } else {
            assert_eq!(on, 0);
        }
    }

    #[test]
    fn macro_handles_are_cached_and_identical() {
        let a = counter!("lib_test.macro") as *const Counter;
        let b = counter!("lib_test.macro") as *const Counter;
        // Two *different* macro expansion sites have distinct OnceLocks but
        // must resolve to the same underlying metric.
        assert_eq!(a, b);
        let c = counter("lib_test.macro") as *const Counter;
        assert_eq!(a, c);
    }
}
