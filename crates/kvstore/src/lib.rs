//! A miniature LSM-style key-value store used for the §5.2 experiment — a
//! stand-in for RocksDB's SSTable + index-block + block-cache read path.
//!
//! The store keeps exactly the pieces whose economics the paper measures:
//!
//! * sorted records laid out in 4 KB [`block`]s inside an SSTable file,
//! * an in-memory [`index`] block mapping separator keys to block handles,
//!   compressed either with RocksDB-style restart-interval prefix-delta
//!   coding or with LeCo (string extension for the keys, integer LeCo for the
//!   block offsets),
//! * an LRU block [`cache`] with a byte budget shared by data blocks,
//! * a multi-threaded `seek` workload driver ([`store::run_seek_workload`]),
//!   and
//! * a batched [`Store::multi_get`] that fans point lookups out over the
//!   work-stealing pool of `leco-scan`.
//!
//! A smaller index block leaves more of the cache budget for data blocks
//! (fewer I/Os), and LeCo's O(1) random access avoids decompressing a whole
//! restart interval per lookup — the two effects behind Figure 22.  The
//! LeCo-compressed block-offset column follows the byte layout documented in
//! `docs/FORMAT.md` at the repository root.
//!
//! ```
//! use leco_kvstore::index::{BlockHandle, IndexBlock};
//! use leco_kvstore::IndexBlockFormat;
//!
//! let entries: Vec<(Vec<u8>, BlockHandle)> = (0..100u64)
//!     .map(|i| {
//!         (format!("key{i:04}").into_bytes(),
//!          BlockHandle { offset: i * 4096, size: 4096 })
//!     })
//!     .collect();
//! let leco = IndexBlock::build(&entries, IndexBlockFormat::Leco);
//! let baseline = IndexBlock::build(&entries, IndexBlockFormat::RestartInterval(1));
//! // The perfectly regular offsets compress to almost nothing under LeCo.
//! assert!(leco.size_bytes() < baseline.size_bytes());
//! assert_eq!(leco.seek(b"key0042"), BlockHandle { offset: 42 * 4096, size: 4096 });
//! ```

pub mod block;
pub mod cache;
pub mod index;
pub mod store;

pub use index::IndexBlockFormat;
pub use store::{run_seek_workload, Store, StoreOptions};
