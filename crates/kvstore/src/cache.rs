//! A byte-budgeted LRU cache for data blocks.
//!
//! Mirrors the role of RocksDB's block cache: Figure 22 varies its capacity
//! to show how a smaller index footprint translates into a better data-block
//! hit ratio.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Key identifying a cached block: (sstable id, byte offset of the block).
pub type BlockKey = (u32, u64);

struct Entry {
    data: Arc<Vec<u8>>,
    /// Monotonic tick of the last access.
    last_used: u64,
}

struct Inner {
    map: HashMap<BlockKey, Entry>,
    used_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Thread-safe LRU cache with a byte budget.
pub struct BlockCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

impl BlockCache {
    /// Create a cache with the given capacity in bytes.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                used_bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity_bytes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Look up a block, updating recency and hit statistics.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let data = entry.data.clone();
                inner.hits += 1;
                leco_obs::counter!("kv.cache.hits").inc();
                Some(data)
            }
            None => {
                inner.misses += 1;
                leco_obs::counter!("kv.cache.misses").inc();
                None
            }
        }
    }

    /// Insert a block, evicting least-recently-used entries until the budget
    /// is respected.  Blocks larger than the whole budget are not cached.
    pub fn insert(&self, key: BlockKey, data: Arc<Vec<u8>>) {
        let size = data.len();
        if size > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                data,
                last_used: tick,
            },
        ) {
            inner.used_bytes -= old.data.len();
        }
        inner.used_bytes += size;
        while inner.used_bytes > self.capacity_bytes {
            // Evict the least recently used entry.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("cache over budget implies non-empty");
            if let Some(e) = inner.map.remove(&victim) {
                inner.used_bytes -= e.data.len();
                inner.evictions += 1;
                leco_obs::counter!("kv.cache.evictions").inc();
            }
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Entries evicted to respect the byte budget (replacements of an
    /// existing key are not evictions).
    pub fn eviction_count(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BlockCache::new(1_000);
        assert!(cache.get(&(0, 0)).is_none());
        cache.insert((0, 0), Arc::new(vec![1u8; 100]));
        assert!(cache.get(&(0, 0)).is_some());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn evicts_lru_when_over_budget() {
        let cache = BlockCache::new(250);
        cache.insert((0, 0), Arc::new(vec![0u8; 100]));
        cache.insert((0, 1), Arc::new(vec![0u8; 100]));
        // Touch block 0 so block 1 becomes the LRU victim.
        cache.get(&(0, 0));
        cache.insert((0, 2), Arc::new(vec![0u8; 100]));
        assert!(cache.get(&(0, 0)).is_some());
        assert!(cache.get(&(0, 1)).is_none());
        assert!(cache.get(&(0, 2)).is_some());
        assert!(cache.used_bytes() <= 250);
        assert_eq!(cache.eviction_count(), 1);
    }

    #[test]
    fn hit_rate_tracks_working_set_vs_capacity() {
        // Working set fits: after one cold pass, every access hits.
        let fits = BlockCache::new(16 * 128);
        for round in 0..4u64 {
            for i in 0..16u64 {
                if fits.get(&(0, i)).is_none() {
                    assert_eq!(round, 0, "only the first pass may miss");
                    fits.insert((0, i), Arc::new(vec![0u8; 128]));
                }
            }
        }
        let (hits, misses) = fits.stats();
        assert_eq!((hits, misses), (48, 16));
        assert_eq!(fits.eviction_count(), 0);
        assert!(hits as f64 / (hits + misses) as f64 >= 0.74);

        // Working set 2x capacity with LRU + sequential sweep: pathological,
        // every access evicts the block that will be needed furthest ahead
        // of never — the classic 0% hit rate.
        let thrash = BlockCache::new(16 * 128);
        for _ in 0..4u64 {
            for i in 0..32u64 {
                if thrash.get(&(0, i)).is_none() {
                    thrash.insert((0, i), Arc::new(vec![0u8; 128]));
                }
            }
        }
        let (hits, misses) = thrash.stats();
        assert_eq!(hits, 0, "sequential sweep over 2x capacity never hits");
        assert_eq!(misses, 128);
        assert_eq!(thrash.eviction_count(), 128 - 16);
    }

    #[test]
    fn oversized_blocks_are_not_cached() {
        let cache = BlockCache::new(50);
        cache.insert((1, 1), Arc::new(vec![0u8; 100]));
        assert!(cache.get(&(1, 1)).is_none());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_and_keeps_budget() {
        let cache = BlockCache::new(300);
        cache.insert((0, 0), Arc::new(vec![0u8; 200]));
        cache.insert((0, 0), Arc::new(vec![0u8; 250]));
        assert_eq!(cache.used_bytes(), 250);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(BlockCache::new(10_000));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    c.insert((t, i % 16), Arc::new(vec![t as u8; 128]));
                    c.get(&(t, i % 16));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.used_bytes() <= 10_000);
    }
}
