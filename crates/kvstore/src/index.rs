//! Index blocks: mapping separator keys to data-block handles.
//!
//! Two families of formats, matching §5.2:
//!
//! * [`IndexBlockFormat::RestartInterval`] — RocksDB's native scheme.  Within
//!   each compression unit of `RI` entries, a key is stored as the length of
//!   its shared prefix with the previous key plus the remaining suffix, and
//!   block offsets are delta encoded.  `RI = 1` disables compression; larger
//!   values shrink the index but force a lookup to decode an entire unit.
//! * [`IndexBlockFormat::Leco`] — keys compressed with LeCo's string
//!   extension and block offsets with integer LeCo, both supporting O(1)
//!   random access, so a lookup is a binary search with two memory probes
//!   per step.

use leco_core::string::{CompressedStrings, StringConfig};
use leco_core::{LecoCompressor, LecoConfig};

/// A data-block handle: byte offset and length within the SSTable file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHandle {
    /// Byte offset of the block.
    pub offset: u64,
    /// Length of the block in bytes.
    pub size: u32,
}

/// Index block format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexBlockFormat {
    /// RocksDB-style prefix-delta compression with the given restart interval.
    RestartInterval(usize),
    /// LeCo-compressed keys and offsets.
    Leco,
}

impl IndexBlockFormat {
    /// Label used in experiment output.
    pub fn name(&self) -> String {
        match self {
            IndexBlockFormat::RestartInterval(ri) => format!("Baseline_{ri}"),
            IndexBlockFormat::Leco => "LeCo".to_string(),
        }
    }
}

/// A built index block.
///
/// (One instance exists per SSTable, so the size gap between the two
/// variants is irrelevant — not worth a `Box` indirection on the seek path.)
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum IndexBlock {
    /// Prefix-delta compressed entries.
    Restart(RestartIndex),
    /// LeCo-compressed entries.
    Leco(LecoIndex),
}

impl IndexBlock {
    /// Build an index block over `(separator key, handle)` pairs (sorted by key).
    pub fn build(entries: &[(Vec<u8>, BlockHandle)], format: IndexBlockFormat) -> Self {
        match format {
            IndexBlockFormat::RestartInterval(ri) => {
                IndexBlock::Restart(RestartIndex::build(entries, ri.max(1)))
            }
            IndexBlockFormat::Leco => IndexBlock::Leco(LecoIndex::build(entries)),
        }
    }

    /// Number of index entries.
    pub fn len(&self) -> usize {
        match self {
            IndexBlock::Restart(r) => r.num_entries,
            IndexBlock::Leco(l) => l.len,
        }
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the index block in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            IndexBlock::Restart(r) => r.size_bytes(),
            IndexBlock::Leco(l) => l.size_bytes(),
        }
    }

    /// Handle of the data block that may contain `key`: the entry with the
    /// largest separator key `<= key` (clamped to the first block).
    pub fn seek(&self, key: &[u8]) -> BlockHandle {
        match self {
            IndexBlock::Restart(r) => r.seek(key),
            IndexBlock::Leco(l) => l.seek(key),
        }
    }
}

// ---------------------------------------------------------------------------
// RocksDB-style restart-interval index
// ---------------------------------------------------------------------------

/// Prefix-delta compressed index with restart points.
#[derive(Debug)]
pub struct RestartIndex {
    /// Serialized entries of every compression unit, concatenated.
    data: Vec<u8>,
    /// Byte offset of each restart unit in `data`, plus its full first key.
    restarts: Vec<(u32, Vec<u8>)>,
    restart_interval: usize,
    num_entries: usize,
    /// Handles are reconstructed during the unit decode; sizes kept raw.
    handles: Vec<BlockHandle>,
}

impl RestartIndex {
    fn build(entries: &[(Vec<u8>, BlockHandle)], restart_interval: usize) -> Self {
        let mut data = Vec::new();
        let mut restarts = Vec::new();
        let mut prev_key: &[u8] = &[];
        for (i, (key, _)) in entries.iter().enumerate() {
            if i % restart_interval == 0 {
                restarts.push((data.len() as u32, key.clone()));
                prev_key = &[];
            }
            let shared = key
                .iter()
                .zip(prev_key.iter())
                .take_while(|(a, b)| a == b)
                .count();
            data.extend_from_slice(&(shared as u16).to_le_bytes());
            data.extend_from_slice(&((key.len() - shared) as u16).to_le_bytes());
            data.extend_from_slice(&key[shared..]);
            prev_key = key;
        }
        Self {
            data,
            restarts,
            restart_interval,
            num_entries: entries.len(),
            handles: entries.iter().map(|(_, h)| *h).collect(),
        }
    }

    fn size_bytes(&self) -> usize {
        // Key payload + one u32 restart offset per unit + delta-coded handles
        // (~3 bytes per entry for offsets stored as deltas within a unit).
        self.data.len() + self.restarts.len() * 4 + self.num_entries * 3
    }

    fn seek(&self, key: &[u8]) -> BlockHandle {
        if self.num_entries == 0 {
            return BlockHandle { offset: 0, size: 0 };
        }
        // Binary search over restart points by their full first key.
        let mut lo = 0usize;
        let mut hi = self.restarts.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.restarts[mid].1.as_slice() <= key {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Decode the unit sequentially (the per-lookup cost RocksDB pays for
        // larger restart intervals).
        let mut pos = self.restarts[lo].0 as usize;
        let mut prev_key: Vec<u8> = Vec::new();
        let mut best = lo * self.restart_interval;
        let unit_end = ((lo + 1) * self.restart_interval).min(self.num_entries);
        for idx in (lo * self.restart_interval)..unit_end {
            let shared = u16::from_le_bytes([self.data[pos], self.data[pos + 1]]) as usize;
            let suffix_len = u16::from_le_bytes([self.data[pos + 2], self.data[pos + 3]]) as usize;
            pos += 4;
            let mut k = prev_key[..shared.min(prev_key.len())].to_vec();
            k.extend_from_slice(&self.data[pos..pos + suffix_len]);
            pos += suffix_len;
            if k.as_slice() <= key {
                best = idx;
            } else {
                break;
            }
            prev_key = k;
        }
        self.handles[best]
    }
}

// ---------------------------------------------------------------------------
// LeCo index
// ---------------------------------------------------------------------------

/// Index block whose keys use LeCo's string extension and whose offsets use
/// integer LeCo.
#[derive(Debug)]
pub struct LecoIndex {
    keys: CompressedStrings,
    offsets: leco_core::CompressedColumn,
    sizes: leco_core::CompressedColumn,
    len: usize,
}

impl LecoIndex {
    fn build(entries: &[(Vec<u8>, BlockHandle)]) -> Self {
        let key_refs: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        let keys = CompressedStrings::encode(
            &key_refs,
            StringConfig {
                partition_len: 64,
                full_byte_charset: false,
            },
        );
        let offs: Vec<u64> = entries.iter().map(|(_, h)| h.offset).collect();
        let sizes: Vec<u64> = entries.iter().map(|(_, h)| h.size as u64).collect();
        let compressor = LecoCompressor::new(LecoConfig::leco_fix_with_len(64));
        Self {
            keys,
            offsets: compressor.compress(&offs),
            sizes: compressor.compress(&sizes),
            len: entries.len(),
        }
    }

    fn size_bytes(&self) -> usize {
        self.keys.size_bytes() + self.offsets.size_bytes() + self.sizes.size_bytes()
    }

    fn seek(&self, key: &[u8]) -> BlockHandle {
        if self.len == 0 {
            return BlockHandle { offset: 0, size: 0 };
        }
        // Binary search over the compressed keys using random access.
        let mut lo = 0usize;
        let mut hi = self.len;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.keys.get(mid).as_slice() <= key {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        BlockHandle {
            offset: self.offsets.get(lo),
            size: self.sizes.get(lo) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries(n: usize) -> Vec<(Vec<u8>, BlockHandle)> {
        (0..n)
            .map(|i| {
                (
                    format!("user{:012}", i as u64 * 977).into_bytes(),
                    BlockHandle {
                        offset: i as u64 * 4096,
                        size: 4096,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn all_formats_agree_on_seek_results() {
        let entries = sample_entries(2_000);
        let formats = [
            IndexBlockFormat::RestartInterval(1),
            IndexBlockFormat::RestartInterval(16),
            IndexBlockFormat::RestartInterval(128),
            IndexBlockFormat::Leco,
        ];
        let blocks: Vec<IndexBlock> = formats
            .iter()
            .map(|f| IndexBlock::build(&entries, *f))
            .collect();
        for probe in 0..2_000usize {
            let key = format!("user{:012}", probe as u64 * 977 + 13).into_bytes();
            let expected = {
                // Reference: last entry with key <= probe key.
                let idx = entries.partition_point(|(k, _)| k.as_slice() <= key.as_slice());
                entries[idx.saturating_sub(1)].1
            };
            for (b, f) in blocks.iter().zip(&formats) {
                assert_eq!(b.seek(&key), expected, "{f:?} probe {probe}");
            }
        }
    }

    #[test]
    fn exact_key_and_before_first_key() {
        let entries = sample_entries(100);
        for format in [
            IndexBlockFormat::RestartInterval(16),
            IndexBlockFormat::Leco,
        ] {
            let block = IndexBlock::build(&entries, format);
            // Exact first key.
            assert_eq!(block.seek(&entries[0].0), entries[0].1);
            // A key before the first separator clamps to block 0.
            assert_eq!(block.seek(b"aaaa"), entries[0].1);
            // A key after the last separator lands in the last block.
            assert_eq!(block.seek(b"zzzz"), entries[99].1);
        }
    }

    #[test]
    fn size_ordering_matches_paper() {
        // RI=1 (no compression) is the largest; RI=128 the smallest baseline;
        // LeCo sits between RI=16 and RI=1 sizes but far below RI=1.
        let entries = sample_entries(5_000);
        let size = |f| IndexBlock::build(&entries, f).size_bytes();
        let ri1 = size(IndexBlockFormat::RestartInterval(1));
        let ri16 = size(IndexBlockFormat::RestartInterval(16));
        let ri128 = size(IndexBlockFormat::RestartInterval(128));
        let leco = size(IndexBlockFormat::Leco);
        assert!(ri128 < ri16 && ri16 < ri1, "{ri128} {ri16} {ri1}");
        assert!(
            leco < ri1 / 2,
            "LeCo {leco} should be far smaller than RI=1 {ri1}"
        );
    }

    #[test]
    fn empty_index() {
        let block = IndexBlock::build(&[], IndexBlockFormat::Leco);
        assert!(block.is_empty());
        assert_eq!(block.seek(b"anything"), BlockHandle { offset: 0, size: 0 });
    }
}
