//! Data blocks: the 4 KB units an SSTable is divided into.
//!
//! A block stores sorted key-value entries back to back
//! (`key_len u16 | key | value_len u32 | value`).  Blocks are the unit of
//! disk I/O and of block-cache residency; `seek` within a block is a linear
//! scan (a 4 KB block holds only a handful of the 420-byte records used in
//! the §5.2 workload, so binary search inside the block would not pay off).

/// Target data block size (RocksDB's default).
pub const BLOCK_SIZE: usize = 4096;

/// Builds data blocks from sorted key-value pairs.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    entries: usize,
    first_key: Vec<u8>,
    last_key: Vec<u8>,
}

impl BlockBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if adding an `extra`-byte entry would overflow the target size
    /// (a non-empty block always accepts at least one entry).
    pub fn is_full(&self, extra: usize) -> bool {
        self.entries > 0 && self.buf.len() + extra > BLOCK_SIZE
    }

    /// Append an entry.  Keys must be added in sorted order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || self.last_key.as_slice() <= key,
            "keys must be sorted"
        );
        if self.entries == 0 {
            self.first_key = key.to_vec();
        }
        self.last_key = key.to_vec();
        self.buf
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(value);
        self.entries += 1;
    }

    /// Serialized size the block would have right now.
    pub fn current_size(&self) -> usize {
        self.buf.len()
    }

    /// Number of entries added.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// First key of the block (the index's separator key).
    pub fn first_key(&self) -> &[u8] {
        &self.first_key
    }

    /// Finish the block, returning its bytes and resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        self.entries = 0;
        self.first_key.clear();
        self.last_key.clear();
        std::mem::take(&mut self.buf)
    }
}

/// Find the first entry in `block` whose key is `>= target`.
/// Returns `(key, value)` or `None` if every key is smaller.
pub fn seek_in_block<'a>(block: &'a [u8], target: &[u8]) -> Option<(&'a [u8], &'a [u8])> {
    let mut pos = 0usize;
    while pos + 6 <= block.len() {
        let key_len = u16::from_le_bytes([block[pos], block[pos + 1]]) as usize;
        pos += 2;
        let key = &block[pos..pos + key_len];
        pos += key_len;
        let value_len =
            u32::from_le_bytes([block[pos], block[pos + 1], block[pos + 2], block[pos + 3]])
                as usize;
        pos += 4;
        let value = &block[pos..pos + value_len];
        pos += value_len;
        if key >= target {
            return Some((key, value));
        }
    }
    None
}

/// Iterate every `(key, value)` pair of a block (used by tests and scans).
pub fn iter_block(block: &[u8]) -> impl Iterator<Item = (&[u8], &[u8])> + '_ {
    let mut pos = 0usize;
    std::iter::from_fn(move || {
        if pos + 6 > block.len() {
            return None;
        }
        let key_len = u16::from_le_bytes([block[pos], block[pos + 1]]) as usize;
        pos += 2;
        let key = &block[pos..pos + key_len];
        pos += key_len;
        let value_len =
            u32::from_le_bytes([block[pos], block[pos + 1], block[pos + 2], block[pos + 3]])
                as usize;
        pos += 4;
        let value = &block[pos..pos + value_len];
        pos += value_len;
        Some((key, value))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_seek() {
        let mut b = BlockBuilder::new();
        for i in 0..8u32 {
            b.add(format!("key{:04}", i * 10).as_bytes(), &[i as u8; 16]);
        }
        assert_eq!(b.entries(), 8);
        assert_eq!(b.first_key(), b"key0000");
        let block = b.finish();
        assert_eq!(b.entries(), 0);

        let (k, v) = seek_in_block(&block, b"key0035").unwrap();
        assert_eq!(k, b"key0040");
        assert_eq!(v, &[4u8; 16]);
        // Exact hit.
        let (k, _) = seek_in_block(&block, b"key0070").unwrap();
        assert_eq!(k, b"key0070");
        // Past the end.
        assert!(seek_in_block(&block, b"key9999").is_none());
    }

    #[test]
    fn is_full_respects_block_size() {
        let mut b = BlockBuilder::new();
        assert!(
            !b.is_full(10_000),
            "an empty block always accepts one entry"
        );
        let mut count = 0;
        loop {
            let key = format!("key{count:08}");
            let value = vec![0u8; 400];
            if b.is_full(key.len() + value.len() + 6) {
                break;
            }
            b.add(key.as_bytes(), &value);
            count += 1;
        }
        assert!(b.current_size() <= BLOCK_SIZE);
        assert!(
            count >= 9,
            "a 4KB block should hold ~10 records of 420 bytes, got {count}"
        );
    }

    #[test]
    fn iter_returns_all_entries_in_order() {
        let mut b = BlockBuilder::new();
        let keys: Vec<String> = (0..5).map(|i| format!("k{i}")).collect();
        for k in &keys {
            b.add(k.as_bytes(), b"v");
        }
        let block = b.finish();
        let seen: Vec<Vec<u8>> = iter_block(&block).map(|(k, _)| k.to_vec()).collect();
        assert_eq!(
            seen,
            keys.iter()
                .map(|k| k.clone().into_bytes())
                .collect::<Vec<_>>()
        );
    }
}
