//! The store: SSTable file, index block, block cache and the seek path.
//!
//! `Store::load` lays sorted records out into 4 KB data blocks inside a
//! single SSTable file and builds one index block in the configured format.
//! `Store::seek` follows the RocksDB read path the paper measures: search the
//! index block for the candidate data block, fetch it from the block cache or
//! the file, then scan the block for the first record `>= key`.

use crate::block::{seek_in_block, BlockBuilder};
use crate::cache::{BlockCache, BlockKey};
use crate::index::{BlockHandle, IndexBlock, IndexBlockFormat};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Store construction options.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Index block format.
    pub index_format: IndexBlockFormat,
    /// Block cache capacity in bytes.
    pub block_cache_bytes: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            index_format: IndexBlockFormat::RestartInterval(1),
            block_cache_bytes: 64 << 20,
        }
    }
}

/// A loaded, immutable key-value store.
pub struct Store {
    path: PathBuf,
    index: IndexBlock,
    cache: BlockCache,
    options: StoreOptions,
    num_records: usize,
    data_bytes: u64,
    /// Number of data-block reads that went to the file (cache misses).
    disk_reads: AtomicU64,
}

impl Store {
    /// Build a store at `path` from records sorted by key.
    pub fn load<P: AsRef<Path>>(
        path: P,
        records: &[(Vec<u8>, Vec<u8>)],
        options: StoreOptions,
    ) -> std::io::Result<Self> {
        debug_assert!(
            records.windows(2).all(|w| w[0].0 <= w[1].0),
            "records must be sorted"
        );
        let mut file = File::create(path.as_ref())?;
        let mut builder = BlockBuilder::new();
        let mut index_entries: Vec<(Vec<u8>, BlockHandle)> = Vec::new();
        let mut offset = 0u64;
        let flush = |builder: &mut BlockBuilder,
                     file: &mut File,
                     offset: &mut u64,
                     entries: &mut Vec<(Vec<u8>, BlockHandle)>|
         -> std::io::Result<()> {
            if builder.entries() == 0 {
                return Ok(());
            }
            let first_key = builder.first_key().to_vec();
            let block = builder.finish();
            file.write_all(&block)?;
            entries.push((
                first_key,
                BlockHandle {
                    offset: *offset,
                    size: block.len() as u32,
                },
            ));
            *offset += block.len() as u64;
            Ok(())
        };
        for (key, value) in records {
            let entry_size = key.len() + value.len() + 6;
            if builder.is_full(entry_size) {
                flush(&mut builder, &mut file, &mut offset, &mut index_entries)?;
            }
            builder.add(key, value);
        }
        flush(&mut builder, &mut file, &mut offset, &mut index_entries)?;
        file.flush()?;
        let index = IndexBlock::build(&index_entries, options.index_format);
        Ok(Self {
            path: path.as_ref().to_path_buf(),
            index,
            cache: BlockCache::new(options.block_cache_bytes),
            options,
            num_records: records.len(),
            data_bytes: offset,
            disk_reads: AtomicU64::new(0),
        })
    }

    /// Number of records loaded.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    /// Total data-block bytes on disk.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Size of the index block in bytes.
    pub fn index_size_bytes(&self) -> usize {
        self.index.size_bytes()
    }

    /// Index compression ratio versus the uncompressed (RI = 1) layout:
    /// the metric the paper reports per configuration.
    pub fn index_compression_ratio(&self, uncompressed_bytes: usize) -> f64 {
        self.index.size_bytes() as f64 / uncompressed_bytes as f64
    }

    /// Options the store was built with.
    pub fn options(&self) -> &StoreOptions {
        &self.options
    }

    /// Block-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Number of data blocks read from disk so far.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    fn read_block(&self, handle: BlockHandle) -> std::io::Result<Arc<Vec<u8>>> {
        let key: BlockKey = (0, handle.offset);
        if let Some(block) = self.cache.get(&key) {
            return Ok(block);
        }
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(handle.offset))?;
        let mut buf = vec![0u8; handle.size as usize];
        file.read_exact(&mut buf)?;
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        let block = Arc::new(buf);
        self.cache.insert(key, block.clone());
        Ok(block)
    }

    /// Seek: return the first record whose key is `>= key`, if any.
    ///
    /// Like RocksDB's `Seek`, the search may need to consult the following
    /// data block when the target falls past the end of the candidate block.
    /// Per-call latency is recorded in the `kv.get_ns` histogram.
    pub fn seek(&self, key: &[u8]) -> std::io::Result<Option<(Vec<u8>, Vec<u8>)>> {
        leco_obs::histogram!("kv.get_ns").time(|| self.seek_inner(key))
    }

    fn seek_inner(&self, key: &[u8]) -> std::io::Result<Option<(Vec<u8>, Vec<u8>)>> {
        if self.num_records == 0 {
            return Ok(None);
        }
        let handle = self.index.seek(key);
        let block = self.read_block(handle)?;
        if let Some((k, v)) = seek_in_block(&block, key) {
            return Ok(Some((k.to_vec(), v.to_vec())));
        }
        // The key is greater than everything in the candidate block: the
        // answer (if any) is the very first entry of the next block.  That
        // block's exact extent is unknown without another index probe, so we
        // over-read directly from the file (bypassing the cache so the
        // over-read never shadows a correctly-sized entry) and only look at
        // its first record.
        let next_offset = handle.offset + handle.size as u64;
        if next_offset >= self.data_bytes {
            return Ok(None);
        }
        self.read_first_record_at(next_offset)
    }

    /// First `(key, value)` record of the block starting at `offset`.
    ///
    /// Most blocks fit `BLOCK_SIZE`, but a single record bigger than the
    /// block budget produces an oversized block: a fixed-size over-read
    /// would truncate it mid-record, and parsing the truncated image used
    /// to slice out of bounds (a panic that poisoned a whole `multi_get`
    /// batch).  The read is therefore extended, header-first, until the
    /// record is complete.
    fn read_first_record_at(&self, offset: u64) -> std::io::Result<Option<KvPair>> {
        let avail = (self.data_bytes - offset) as usize;
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; avail.min(crate::block::BLOCK_SIZE)];
        file.read_exact(&mut buf)?;
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        // Grow `buf` to at least `needed` bytes of the file tail starting at
        // `offset`; false when the file ends before `needed` (a record can
        // never straddle the end of the data region).
        let mut ensure = |buf: &mut Vec<u8>, needed: usize| -> std::io::Result<bool> {
            if buf.len() >= needed {
                return Ok(true);
            }
            if needed > avail {
                return Ok(false);
            }
            let old = buf.len();
            buf.resize(needed, 0);
            file.seek(SeekFrom::Start(offset + old as u64))?;
            file.read_exact(&mut buf[old..])?;
            self.disk_reads.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        };
        if !ensure(&mut buf, 2)? {
            return Ok(None);
        }
        let key_len = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        if !ensure(&mut buf, 2 + key_len + 4)? {
            return Ok(None);
        }
        let value_len = u32::from_le_bytes([
            buf[2 + key_len],
            buf[2 + key_len + 1],
            buf[2 + key_len + 2],
            buf[2 + key_len + 3],
        ]) as usize;
        if !ensure(&mut buf, 2 + key_len + 4 + value_len)? {
            return Ok(None);
        }
        let key = buf[2..2 + key_len].to_vec();
        let value = buf[2 + key_len + 4..2 + key_len + 4 + value_len].to_vec();
        Ok(Some((key, value)))
    }
}

impl Store {
    /// Exact-match point lookup: the value stored under `key`, or `None`.
    ///
    /// Built on [`Self::seek`] (lower-bound search) plus a key-equality
    /// check — the semantic a network `GET` needs, where a missing key must
    /// return "not found" rather than its successor's value.
    pub fn get(&self, key: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
        Ok(self
            .seek(key)?
            .filter(|(k, _)| k.as_slice() == key)
            .map(|(_, v)| v))
    }
}

/// An owned `(key, value)` record, as returned by [`Store::seek`] and
/// [`Store::multi_get`].
pub type KvPair = (Vec<u8>, Vec<u8>);

impl Store {
    /// Batched point lookup: seek every key in `keys` across `threads`
    /// work-stealing workers and return the answers in input order.
    ///
    /// Runs on the same pool machinery as the columnar scan engine
    /// ([`leco_scan::parallel_map`]): keys are dealt into per-worker deques
    /// and idle workers steal, which keeps all threads busy under skewed key
    /// distributions where some keys hit cold (disk-reading) blocks and
    /// others hit the cache.  A panic inside a worker surfaces as an
    /// `io::Error` instead of hanging the batch.
    pub fn multi_get(
        &self,
        keys: &[Vec<u8>],
        threads: usize,
    ) -> std::io::Result<Vec<Option<KvPair>>> {
        // Whole-batch latency in `kv.multi_get_ns`; the constituent seeks
        // also land individually in `kv.get_ns`.
        leco_obs::histogram!("kv.multi_get_ns").time(|| {
            let results = leco_scan::parallel_map(threads, keys, |key| self.seek(key))
                .map_err(std::io::Error::other)?;
            results.into_iter().collect()
        })
    }
}

/// Run `queries` seek operations across `threads` worker threads, returning
/// the aggregate throughput in operations per second.
pub fn run_seek_workload(store: &Arc<Store>, queries: &[Vec<u8>], threads: usize) -> f64 {
    let threads = threads.max(1);
    let start = leco_obs::Stopwatch::start();
    std::thread::scope(|scope| {
        let chunk = queries.len().div_ceil(threads);
        for part in queries.chunks(chunk.max(1)) {
            let store = Arc::clone(store);
            scope.spawn(move || {
                for q in part {
                    let _ = store.seek(q).expect("seek should not fail");
                }
            });
        }
    });
    queries.len() as f64 / start.elapsed_secs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-kv-test-{}-{}", std::process::id(), name));
        p
    }

    fn records(n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("user{:012}", i as u64 * 37).into_bytes(),
                    format!("value-{i:06}").repeat(5).into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn seek_matches_btreemap_reference() {
        let recs = records(20_000);
        let reference: BTreeMap<Vec<u8>, Vec<u8>> = recs.iter().cloned().collect();
        for format in [
            IndexBlockFormat::RestartInterval(1),
            IndexBlockFormat::RestartInterval(16),
            IndexBlockFormat::RestartInterval(128),
            IndexBlockFormat::Leco,
        ] {
            let path = tmp(&format!("seek-{}", format.name()));
            let store = Store::load(
                &path,
                &recs,
                StoreOptions {
                    index_format: format,
                    block_cache_bytes: 1 << 20,
                },
            )
            .unwrap();
            for probe in (0..20_000usize).step_by(371) {
                let key = format!("user{:012}", probe as u64 * 37 + 5).into_bytes();
                let expected = reference
                    .range(key.clone()..)
                    .next()
                    .map(|(k, v)| (k.clone(), v.clone()));
                assert_eq!(
                    store.seek(&key).unwrap(),
                    expected,
                    "{format:?} probe {probe}"
                );
            }
            // Seeks beyond the last key return None.
            assert_eq!(store.seek(b"zzzz").unwrap(), None);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn leco_index_is_smaller_than_uncompressed_baseline() {
        let recs = records(50_000);
        let p1 = tmp("ri1");
        let p2 = tmp("leco");
        let baseline = Store::load(
            &p1,
            &recs,
            StoreOptions {
                index_format: IndexBlockFormat::RestartInterval(1),
                block_cache_bytes: 1 << 20,
            },
        )
        .unwrap();
        let leco = Store::load(
            &p2,
            &recs,
            StoreOptions {
                index_format: IndexBlockFormat::Leco,
                block_cache_bytes: 1 << 20,
            },
        )
        .unwrap();
        assert!(
            leco.index_size_bytes() < baseline.index_size_bytes() / 2,
            "LeCo {} vs RI=1 {}",
            leco.index_size_bytes(),
            baseline.index_size_bytes()
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn block_cache_hits_grow_with_skewed_access() {
        let recs = records(10_000);
        let path = tmp("cache");
        let store = Store::load(
            &path,
            &recs,
            StoreOptions {
                index_format: IndexBlockFormat::Leco,
                block_cache_bytes: 8 << 20,
            },
        )
        .unwrap();
        // Repeatedly hit the same small key range.
        for _ in 0..5 {
            for probe in 0..100usize {
                let key = format!("user{:012}", probe as u64 * 37).into_bytes();
                store.seek(&key).unwrap();
            }
        }
        let (hits, misses) = store.cache_stats();
        assert!(hits > misses, "hits {hits} misses {misses}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multithreaded_seek_workload_completes() {
        let recs = records(5_000);
        let path = tmp("threads");
        let store = Arc::new(
            Store::load(
                &path,
                &recs,
                StoreOptions {
                    index_format: IndexBlockFormat::Leco,
                    block_cache_bytes: 4 << 20,
                },
            )
            .unwrap(),
        );
        let queries: Vec<Vec<u8>> = (0..2_000usize)
            .map(|i| format!("user{:012}", (i * 91) as u64 * 37).into_bytes())
            .collect();
        let tput = run_seek_workload(&store, &queries, 4);
        assert!(tput > 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_get_matches_sequential_seeks() {
        let recs = records(20_000);
        let path = tmp("multiget");
        let store = Store::load(
            &path,
            &recs,
            StoreOptions {
                index_format: IndexBlockFormat::Leco,
                block_cache_bytes: 2 << 20,
            },
        )
        .unwrap();
        // Mix of exact hits, between-key probes and past-the-end misses.
        let keys: Vec<Vec<u8>> = (0..3_000usize)
            .map(|i| format!("user{:012}", (i * 17) as u64 * 37 + (i % 3) as u64).into_bytes())
            .chain(std::iter::once(b"zzzz".to_vec()))
            .collect();
        let expected: Vec<_> = keys.iter().map(|k| store.seek(k).unwrap()).collect();
        for threads in [1, 2, 4, 8] {
            let got = store.multi_get(&keys, threads).unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
        std::fs::remove_file(&path).ok();
    }

    /// A store whose middle block is oversized: one record's value is
    /// several times `BLOCK_SIZE`, so the block holding it cannot be
    /// over-read with a fixed-size window.
    fn records_with_oversized_block() -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut recs: Vec<(Vec<u8>, Vec<u8>)> = (0..200usize)
            .map(|i| {
                (
                    format!("a{i:04}").into_bytes(),
                    format!("small-{i}").into_bytes(),
                )
            })
            .collect();
        recs.push((b"b-big".to_vec(), vec![0xAB; 4 * crate::block::BLOCK_SIZE]));
        recs.extend((0..50usize).map(|i| (format!("c{i:04}").into_bytes(), b"tail".to_vec())));
        recs
    }

    /// Regression: seeking a key that falls past the end of a block used to
    /// over-read the *next* block with a fixed 4 KB window; when that
    /// block's first record was larger than the window, parsing the
    /// truncated image sliced out of bounds and panicked.
    #[test]
    fn seek_past_block_end_with_oversized_successor_record() {
        let recs = records_with_oversized_block();
        let path = tmp("oversized");
        let store = Store::load(
            &path,
            &recs,
            StoreOptions {
                index_format: IndexBlockFormat::Leco,
                block_cache_bytes: 1 << 20,
            },
        )
        .unwrap();
        // Greater than every "a…" key, smaller than "b-big": the candidate
        // block is exhausted and the answer is the first record of the
        // oversized successor block.
        let got = store.seek(b"azzz").unwrap();
        assert_eq!(
            got,
            Some((b"b-big".to_vec(), vec![0xAB; 4 * crate::block::BLOCK_SIZE]))
        );
        // Same through the exact-match path: a miss, not the successor.
        assert_eq!(store.get(b"azzz").unwrap(), None);
        assert_eq!(
            store.get(b"b-big").unwrap(),
            Some(vec![0xAB; 4 * crate::block::BLOCK_SIZE])
        );
        std::fs::remove_file(&path).ok();
    }

    /// Regression for the server workload: concurrent `multi_get` batches
    /// sharing one store, with duplicate keys, missing keys (including ones
    /// that land past a block end, the over-read path above) and past-the-end
    /// probes.  Every batch must match sequential seeks — a panic inside one
    /// worker used to poison the pool and fail the whole batch.
    #[test]
    fn multi_get_concurrent_duplicate_and_missing_keys() {
        let recs = records_with_oversized_block();
        let path = tmp("concurrent-multiget");
        let store = Store::load(
            &path,
            &recs,
            StoreOptions {
                index_format: IndexBlockFormat::Leco,
                block_cache_bytes: 256 << 10,
            },
        )
        .unwrap();
        let keys: Vec<Vec<u8>> = vec![
            b"a0007".to_vec(),
            b"a0007".to_vec(), // duplicate of an exact hit
            b"azzz".to_vec(),  // missing: past the a-block, oversized successor
            b"azzz".to_vec(),  // duplicate of a missing key
            b"a0100".to_vec(),
            b"b-big".to_vec(),
            b"c0049".to_vec(),
            b"zzzz".to_vec(), // past the end of the store
            b"a000".to_vec(), // missing: before its successor within a block
        ];
        let expected: Vec<_> = keys.iter().map(|k| store.seek(k).unwrap()).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (store, keys, expected) = (&store, &keys, &expected);
                scope.spawn(move || {
                    for threads in [1, 2, 4] {
                        let got = store.multi_get(keys, threads).unwrap();
                        assert_eq!(&got, expected, "threads={threads}");
                    }
                });
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store() {
        let path = tmp("empty");
        let store = Store::load(&path, &[], StoreOptions::default()).unwrap();
        assert_eq!(store.seek(b"anything").unwrap(), None);
        assert_eq!(store.num_records(), 0);
        std::fs::remove_file(&path).ok();
    }
}
