//! Multi-column tabular data sets (§4.6, Figure 13) and the sensor table of
//! the end-to-end query experiments (§5.1).
//!
//! Each generator produces the *numeric* columns of the corresponding table,
//! sorted by its primary-key column, with non-key columns exhibiting varying
//! degrees of correlation with the sort order — the property Figure 13 links
//! to per-table "sortedness".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small in-memory table: named numeric columns of equal length.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (paper label).
    pub name: &'static str,
    /// `(column name, values)` pairs.
    pub columns: Vec<(&'static str, Vec<u64>)>,
}

impl Table {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Average column sortedness (the Figure 13 table metric).
    pub fn sortedness(&self) -> f64 {
        if self.columns.is_empty() {
            return 1.0;
        }
        self.columns
            .iter()
            .map(|(_, c)| crate::sortedness(c))
            .sum::<f64>()
            / self.columns.len() as f64
    }

    /// Columns whose number of distinct values is at least `fraction` of the
    /// row count (the "high-cardinality only" panel of Figure 13).
    pub fn high_cardinality_columns(&self, fraction: f64) -> Vec<&(&'static str, Vec<u64>)> {
        self.columns
            .iter()
            .filter(|(_, c)| {
                let mut d = c.clone();
                d.sort_unstable();
                d.dedup();
                d.len() as f64 >= fraction * c.len() as f64
            })
            .collect()
    }
}

/// The nine tabular data sets of Figure 13, generated at `rows` rows each.
pub fn all_tables(rows: usize, seed: u64) -> Vec<Table> {
    vec![
        lineitem(rows, seed),
        partsupp(rows, seed),
        orders(rows, seed),
        inventory(rows, seed),
        catalog_sales(rows, seed),
        date_dim(rows, seed),
        geo(rows, seed),
        stock(rows, seed),
        course_info(rows, seed),
    ]
}

fn rng_for(name: &str, seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(name.len() as u64))
}

/// TPC-H `lineitem`-like: orderkey-sorted, partkey/suppkey random, quantities
/// and prices low-cardinality, dates loosely correlated with orderkey.
pub fn lineitem(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("lineitem", seed);
    let mut orderkey = Vec::with_capacity(rows);
    let mut ok = 1u64;
    for _ in 0..rows {
        orderkey.push(ok);
        if rng.gen_bool(0.25) {
            ok += rng.gen_range(1..8);
        }
    }
    let partkey: Vec<u64> = (0..rows).map(|_| rng.gen_range(1..200_000)).collect();
    let suppkey: Vec<u64> = partkey.iter().map(|p| p % 10_000 + 1).collect();
    let quantity: Vec<u64> = (0..rows).map(|_| rng.gen_range(1..51)).collect();
    let extendedprice: Vec<u64> = (0..rows)
        .map(|i| quantity[i] * rng.gen_range(90_000..110_000) / 100)
        .collect();
    let shipdate: Vec<u64> = orderkey
        .iter()
        .map(|&o| 19_920_101 + o / 800 + rng.gen_range(0..120))
        .collect();
    let commitdate: Vec<u64> = shipdate.iter().map(|&d| d + rng.gen_range(0..90)).collect();
    let receiptdate: Vec<u64> = shipdate.iter().map(|&d| d + rng.gen_range(0..30)).collect();
    Table {
        name: "lineitem",
        columns: vec![
            ("l_orderkey", orderkey),
            ("l_partkey", partkey),
            ("l_suppkey", suppkey),
            ("l_quantity", quantity),
            ("l_extendedprice", extendedprice),
            ("l_shipdate", shipdate),
            ("l_commitdate", commitdate),
            ("l_receiptdate", receiptdate),
        ],
    }
}

/// TPC-H `partsupp`-like: partkey-sorted, 4 suppliers per part.
pub fn partsupp(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("partsupp", seed);
    let partkey: Vec<u64> = (0..rows).map(|i| (i / 4 + 1) as u64).collect();
    let suppkey: Vec<u64> = (0..rows)
        .map(|i| ((i % 4) * 2_500 + (i / 4) % 2_500 + 1) as u64)
        .collect();
    let availqty: Vec<u64> = (0..rows).map(|_| rng.gen_range(1..10_000)).collect();
    let supplycost: Vec<u64> = (0..rows).map(|_| rng.gen_range(100..100_000)).collect();
    Table {
        name: "partsupp",
        columns: vec![
            ("ps_partkey", partkey),
            ("ps_suppkey", suppkey),
            ("ps_availqty", availqty),
            ("ps_supplycost", supplycost),
        ],
    }
}

/// TPC-H `orders`-like: orderkey-sorted, custkeys random, dates correlated.
pub fn orders(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("orders", seed);
    let orderkey: Vec<u64> = (0..rows).map(|i| (i as u64) * 4 + 1).collect();
    let custkey: Vec<u64> = (0..rows).map(|_| rng.gen_range(1..150_000)).collect();
    let totalprice: Vec<u64> = (0..rows)
        .map(|_| rng.gen_range(85_000..55_000_000))
        .collect();
    let orderdate: Vec<u64> = orderkey
        .iter()
        .map(|&o| 19_920_101 + o / 2_000 + rng.gen_range(0..30))
        .collect();
    let shippriority: Vec<u64> = (0..rows).map(|_| 0).collect();
    Table {
        name: "orders",
        columns: vec![
            ("o_orderkey", orderkey),
            ("o_custkey", custkey),
            ("o_totalprice", totalprice),
            ("o_orderdate", orderdate),
            ("o_shippriority", shippriority),
        ],
    }
}

/// TPC-DS `inventory`-like: highly sorted composite key columns.
pub fn inventory(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("inventory", seed);
    let items = 2_000u64;
    let date_sk: Vec<u64> = (0..rows)
        .map(|i| 2_450_815 + (i as u64 / (items * 10)) * 7)
        .collect();
    let item_sk: Vec<u64> = (0..rows).map(|i| (i as u64 / 10) % items + 1).collect();
    let warehouse_sk: Vec<u64> = (0..rows).map(|i| (i % 10) as u64 + 1).collect();
    let quantity: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..1_000)).collect();
    Table {
        name: "inventory",
        columns: vec![
            ("inv_date_sk", date_sk),
            ("inv_item_sk", item_sk),
            ("inv_warehouse_sk", warehouse_sk),
            ("inv_quantity_on_hand", quantity),
        ],
    }
}

/// TPC-DS `catalog_sales`-like: mostly uncorrelated fact columns.
pub fn catalog_sales(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("catalog_sales", seed);
    let mut columns: Vec<(&'static str, Vec<u64>)> = Vec::new();
    let order: Vec<u64> = (0..rows).map(|i| i as u64 + 1).collect();
    columns.push(("cs_order_number", order));
    const NAMES: [&str; 12] = [
        "cs_sold_date_sk",
        "cs_item_sk",
        "cs_bill_customer_sk",
        "cs_ship_customer_sk",
        "cs_warehouse_sk",
        "cs_promo_sk",
        "cs_quantity",
        "cs_wholesale_cost",
        "cs_list_price",
        "cs_sales_price",
        "cs_ext_tax",
        "cs_net_profit",
    ];
    for (k, name) in NAMES.iter().enumerate() {
        let hi = 1_000u64 * (k as u64 + 1) * 37;
        columns.push((
            name,
            (0..rows).map(|_| rng.gen_range(0..hi.max(2))).collect(),
        ));
    }
    Table {
        name: "catalog_sales",
        columns,
    }
}

/// TPC-DS `date_dim`-like: derived calendar columns, strongly sorted.
pub fn date_dim(rows: usize, seed: u64) -> Table {
    let _ = seed;
    let date_sk: Vec<u64> = (0..rows).map(|i| 2_415_022 + i as u64).collect();
    let year: Vec<u64> = (0..rows).map(|i| 1_900 + (i / 365) as u64).collect();
    let moy: Vec<u64> = (0..rows).map(|i| ((i / 30) % 12) as u64 + 1).collect();
    let dom: Vec<u64> = (0..rows).map(|i| (i % 30) as u64 + 1).collect();
    let qoy: Vec<u64> = moy.iter().map(|m| (m - 1) / 3 + 1).collect();
    Table {
        name: "date_dim",
        columns: vec![
            ("d_date_sk", date_sk),
            ("d_year", year),
            ("d_moy", moy),
            ("d_dom", dom),
            ("d_qoy", qoy),
        ],
    }
}

/// geonames-like: id-sorted with latitude/longitude/population/elevation.
pub fn geo(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("geo", seed);
    let id: Vec<u64> = {
        let mut v = 1_000u64;
        (0..rows)
            .map(|_| {
                v += rng.gen_range(1..40);
                v
            })
            .collect()
    };
    let lat: Vec<u64> = (0..rows)
        .map(|_| (rng.gen_range(-90.0f64..90.0) * 10_000.0 + 900_000.0) as u64)
        .collect();
    let lon: Vec<u64> = (0..rows)
        .map(|_| (rng.gen_range(-180.0f64..180.0) * 10_000.0 + 1_800_000.0) as u64)
        .collect();
    let population: Vec<u64> = (0..rows).map(|_| heavy(&mut rng, 1.0e7)).collect();
    let elevation: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..4_000)).collect();
    Table {
        name: "geo",
        columns: vec![
            ("geonameid", id),
            ("latitude", lat),
            ("longitude", lon),
            ("population", population),
            ("elevation", elevation),
        ],
    }
}

/// Price-tick (GRXEUR) style: timestamp-sorted with slowly drifting prices —
/// the highest-sortedness table of the group.
pub fn stock(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("stock", seed);
    let ts: Vec<u64> = {
        let mut v = 1_500_000_000_000u64;
        (0..rows)
            .map(|_| {
                v += rng.gen_range(50..2_000);
                v
            })
            .collect()
    };
    // Prices follow a random walk with upward drift: locally noisy but
    // long-range sorted, which is what gives the table its 0.98 sortedness in
    // the paper.
    let mut price = 1_000_000i64;
    let open: Vec<u64> = (0..rows)
        .map(|_| {
            price += rng.gen_range(-100..140);
            price.max(1) as u64
        })
        .collect();
    let high: Vec<u64> = open.iter().map(|&p| p + rng.gen_range(0..200)).collect();
    let low: Vec<u64> = open
        .iter()
        .map(|&p| p.saturating_sub(rng.gen_range(0..200)))
        .collect();
    let close: Vec<u64> = open.iter().map(|&p| p + rng.gen_range(0..100)).collect();
    let volume: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..5_000)).collect();
    Table {
        name: "stock",
        columns: vec![
            ("timestamp", ts),
            ("open", open),
            ("high", high),
            ("low", low),
            ("close", close),
            ("volume", volume),
        ],
    }
}

/// Udemy-courses-like: course-id sorted, prices/subscribers heavy-tailed.
pub fn course_info(rows: usize, seed: u64) -> Table {
    let mut rng = rng_for("course_info", seed);
    let id: Vec<u64> = {
        let mut v = 10_000u64;
        (0..rows)
            .map(|_| {
                v += rng.gen_range(1..2_000);
                v
            })
            .collect()
    };
    let price: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..10u64) * 25).collect();
    let subscribers: Vec<u64> = (0..rows).map(|_| heavy(&mut rng, 3.0e5)).collect();
    let reviews: Vec<u64> = subscribers
        .iter()
        .map(|&s| s / (rng.gen_range(5..40)))
        .collect();
    let lectures: Vec<u64> = (0..rows).map(|_| rng.gen_range(5..400)).collect();
    let duration: Vec<u64> = lectures.iter().map(|&l| l * rng.gen_range(3..15)).collect();
    Table {
        name: "course_info",
        columns: vec![
            ("course_id", id),
            ("price", price),
            ("num_subscribers", subscribers),
            ("num_reviews", reviews),
            ("num_lectures", lectures),
            ("content_duration", duration),
        ],
    }
}

fn heavy(rng: &mut StdRng, max: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    ((1.0 / u.powf(1.5) - 1.0).min(max)) as u64
}

/// The §5.1 sensor table: `(ts, id, val)` columns under the `random` or
/// `correlated` distribution of the filter-group-by-aggregation experiment.
#[derive(Debug, Clone)]
pub struct SensorTable {
    /// Timestamps in seconds, almost sorted (from the `ml` distribution).
    pub ts: Vec<u64>,
    /// 16-bit sensor ids, 1..=10_000.
    pub id: Vec<u64>,
    /// 64-bit sensor readings.
    pub val: Vec<u64>,
}

/// Distribution of the non-key columns of the sensor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorDistribution {
    /// `id` and `val` random: hard to compress for every scheme.
    Random,
    /// `id` clustered in groups of 100, `val` monotonically increasing across
    /// groups (random within): serial patterns available.
    Correlated,
}

/// Generate the sensor table of §5.1.1.
pub fn sensor_table(rows: usize, dist: SensorDistribution, seed: u64) -> SensorTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E25);
    let ts = crate::realworld::ml_timestamps(rows, &mut rng);
    let (id, val) = match dist {
        SensorDistribution::Random => {
            let id: Vec<u64> = (0..rows).map(|_| rng.gen_range(1..=10_000)).collect();
            let val: Vec<u64> = (0..rows).map(|_| rng.gen::<u64>() >> 1).collect();
            (id, val)
        }
        SensorDistribution::Correlated => {
            let id: Vec<u64> = (0..rows).map(|i| ((i / 100) % 10_000) as u64 + 1).collect();
            let val: Vec<u64> = (0..rows)
                .map(|i| (i as u64 / 100) * 1_000 + rng.gen_range(0..1_000))
                .collect();
            (id, val)
        }
    };
    SensorTable { ts, id, val }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_have_rows_and_names() {
        let tables = all_tables(5_000, 3);
        assert_eq!(tables.len(), 9);
        for t in &tables {
            assert_eq!(t.num_rows(), 5_000, "{}", t.name);
            assert!(t.columns.len() >= 4, "{}", t.name);
        }
    }

    #[test]
    fn sortedness_ordering_matches_paper_intuition() {
        let tables = all_tables(20_000, 3);
        let get = |name: &str| tables.iter().find(|t| t.name == name).unwrap().sortedness();
        // stock and inventory are highly sorted; catalog_sales is not.
        assert!(get("stock") > 0.8, "stock {}", get("stock"));
        assert!(get("inventory") > 0.45, "inventory {}", get("inventory"));
        assert!(
            get("catalog_sales") < 0.4,
            "catalog_sales {}",
            get("catalog_sales")
        );
    }

    #[test]
    fn high_cardinality_filter_works() {
        let t = lineitem(10_000, 1);
        let hi = t.high_cardinality_columns(0.10);
        assert!(!hi.is_empty());
        assert!(hi.len() < t.columns.len());
    }

    #[test]
    fn sensor_table_shapes() {
        let random = sensor_table(50_000, SensorDistribution::Random, 1);
        let corr = sensor_table(50_000, SensorDistribution::Correlated, 1);
        assert_eq!(random.ts.len(), 50_000);
        assert!(random.id.iter().all(|&i| (1..=10_000).contains(&i)));
        assert!(corr.id.iter().all(|&i| (1..=10_000).contains(&i)));
        // Correlated values rise across groups.
        assert!(corr.val[40_000] > corr.val[100]);
        // Correlated ids are clustered in runs of 100.
        assert_eq!(corr.id[0], corr.id[99]);
        assert_ne!(corr.id[0], corr.id[100]);
    }
}
