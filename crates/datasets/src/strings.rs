//! String data sets of §4.7: `email`, `hex` and `word`.

use rand::rngs::StdRng;
use rand::Rng;

/// `email`: host-reversed email addresses (sorted), average ~15 bytes.
pub fn email(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    const HOSTS: [&str; 6] = [
        "com.gmail",
        "com.yahoo",
        "com.outlook",
        "org.mail",
        "net.fast",
        "de.web",
    ];
    const NAMES: [&str; 8] = ["alex", "sam", "kim", "lee", "pat", "max", "joe", "ana"];
    let mut out: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            let host = HOSTS[rng.gen_range(0..HOSTS.len())];
            let name = NAMES[rng.gen_range(0..NAMES.len())];
            let num: u32 = rng.gen_range(0..99_999);
            format!("{host}@{name}{num}").into_bytes()
        })
        .collect();
    out.sort();
    out
}

/// `hex`: sorted hexadecimal strings of up to 8 characters.
pub fn hex(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    let mut values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..0xFFFF_FFFFu64)).collect();
    values.sort_unstable();
    values.dedup();
    while values.len() < n {
        values.push(values.last().copied().unwrap_or(0) + 1);
    }
    values
        .into_iter()
        .take(n)
        .map(|v| format!("{v:08x}").into_bytes())
        .collect()
}

/// `word`: English-like words (sorted), average ~9 bytes, generated from
/// syllables so the corpus has the repeating roots/suffixes FSST thrives on.
pub fn word(n: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    const SYLLABLES: [&str; 16] = [
        "an", "ber", "con", "der", "ing", "land", "ment", "ner", "ol", "pre", "qui", "ran", "ser",
        "tion", "ver", "wor",
    ];
    const SUFFIX: [&str; 4] = ["", "s", "ed", "ly"];
    let mut out: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            let parts = rng.gen_range(2..5);
            let mut w = String::new();
            for _ in 0..parts {
                w.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
            }
            w.push_str(SUFFIX[rng.gen_range(0..SUFFIX.len())]);
            w.into_bytes()
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn email_shape() {
        let v = email(5_000, &mut rng());
        assert_eq!(v.len(), 5_000);
        assert!(v.windows(2).all(|w| w[0] <= w[1]), "emails are sorted");
        let avg: f64 = v.iter().map(|s| s.len()).sum::<usize>() as f64 / v.len() as f64;
        assert!((12.0..20.0).contains(&avg), "avg len {avg}");
    }

    #[test]
    fn hex_strings_are_sorted_8_chars() {
        let v = hex(5_000, &mut rng());
        assert!(v.iter().all(|s| s.len() == 8));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert!(v.iter().all(|s| s.iter().all(|c| c.is_ascii_hexdigit())));
    }

    #[test]
    fn words_are_lowercase_and_repetitive() {
        let v = word(5_000, &mut rng());
        assert!(v.iter().all(|s| s.iter().all(|c| c.is_ascii_lowercase())));
        let avg: f64 = v.iter().map(|s| s.len()).sum::<usize>() as f64 / v.len() as f64;
        assert!((6.0..14.0).contains(&avg), "avg len {avg}");
    }
}
