//! Purely synthetic data sets (§4.1): clean distributions with known ground
//! truth, used to probe specific regressor families.

use rand::rngs::StdRng;
use rand::Rng;

/// Standard-normal sample via Box–Muller (avoids an extra distribution crate).
pub(crate) fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `linear`: 32-bit sorted integers following a clean linear distribution.
pub fn linear(n: usize, _rng: &mut StdRng) -> Vec<u64> {
    let max = u32::MAX as f64 * 0.95;
    (0..n).map(|i| (i as f64 / n as f64 * max) as u64).collect()
}

/// `normal`: 32-bit sorted integers following a normal distribution.
pub fn normal_sorted(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut values: Vec<u64> = (0..n)
        .map(|_| {
            let z = std_normal(rng);
            let v = 2.1e9 + z * 3.0e8;
            v.clamp(0.0, u32::MAX as f64) as u64
        })
        .collect();
    values.sort_unstable();
    values
}

/// `poisson`: 64-bit timestamps of a Poisson process collected from several
/// distributed sensors — the merged stream is *almost* sorted but individual
/// sensor clock skew introduces local inversions (the paper lists it among the
/// not-fully-sorted sets).
pub fn poisson_timestamps(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let sensors = 16usize;
    let rate = 1.0 / 50_000.0; // events every ~50k ns on average
    let mut clocks = vec![1_600_000_000_000_000_000u64; sensors];
    // Give each sensor a constant skew.
    let skews: Vec<i64> = (0..sensors)
        .map(|_| rng.gen_range(-200_000..200_000))
        .collect();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let s = rng.gen_range(0..sensors);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() / rate) as u64 + 1;
        clocks[s] += gap * sensors as u64;
        out.push((clocks[s] as i64 + skews[s]) as u64);
    }
    out
}

/// `cosmos`: the cosmic-ray signal of §4.4,
/// `(sin((x+10)/60π) + 0.1·sin(3(x+10)/60π))·10⁶ + N(0, 100)`.
pub fn cosmos(n: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            let signal = ((x + 10.0) / (60.0 * std::f64::consts::PI)).sin()
                + 0.1 * (3.0 * (x + 10.0) / (60.0 * std::f64::consts::PI)).sin();
            let noise = std_normal(rng) * 10.0;
            let v = signal * 1.0e6 + noise + 2.0e6; // shift positive
            v.max(0.0) as u64
        })
        .collect()
}

/// `polylog`: alternating polynomial and logarithm blocks of 500 records
/// (a biological population growth curve).
pub fn polylog(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let block = 500usize;
    let mut out = Vec::with_capacity(n);
    let mut base = 1_000_000.0f64;
    let mut i = 0usize;
    let mut which_poly = true;
    while i < n {
        let len = block.min(n - i);
        if which_poly {
            let a = rng.gen_range(0.5..4.0);
            for k in 0..len {
                let x = k as f64;
                out.push((base + a * x * x) as u64);
            }
            base += a * (len as f64) * (len as f64);
        } else {
            let s = rng.gen_range(5_000.0..50_000.0);
            for k in 0..len {
                out.push((base + s * ((k + 1) as f64).ln()) as u64);
            }
            base += s * (len as f64).ln();
        }
        which_poly = !which_poly;
        i += len;
    }
    out
}

/// `exp`: blockwise exponential growth with per-block parameters.
pub fn exp_blocks(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let block = 2_000usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        let len = block.min(n - i);
        let start = rng.gen_range(1.0e3..1.0e6);
        let rate = rng.gen_range(0.002..0.012);
        for k in 0..len {
            let v = start * (rate * k as f64).exp();
            out.push(v.min(1.7e15) as u64);
        }
        i += len;
    }
    out
}

/// `poly`: blockwise polynomial growth with per-block parameters.
pub fn poly_blocks(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let block = 3_000usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        let len = block.min(n - i);
        let a = rng.gen_range(0.001..0.1);
        let b = rng.gen_range(1.0..500.0);
        let c = rng.gen_range(0.0..1.0e6);
        for k in 0..len {
            let x = k as f64;
            out.push((c + b * x + a * x * x * x) as u64);
        }
        i += len;
    }
    out
}

/// `timestamps`: 64-bit sorted epoch-millisecond event timestamps with a
/// steady 40 ms cadence, a 5-second ingestion gap every 100k events and
/// sub-tick jitter — the quickstart's "realistic columnar workload" column,
/// promoted to a named data set because its long clean runs with periodic
/// jumps are exactly the regime where the variable-length partitioner's cost
/// model has to price partition growth honestly.
pub fn bursty_timestamps(n: usize, _rng: &mut StdRng) -> Vec<u64> {
    (0..n as u64)
        .map(|i| 1_700_000_000_000 + i * 40 + (i / 100_000) * 5_000_000 + (i % 7))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn linear_is_sorted_and_spans_u32() {
        let v = linear(100_000, &mut rng());
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert!(*v.last().unwrap() > 4_000_000_000);
        assert!(v.iter().all(|&x| x <= u32::MAX as u64));
    }

    #[test]
    fn normal_sorted_is_sorted_and_concentrated() {
        let v = normal_sorted(50_000, &mut rng());
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let median = v[v.len() / 2] as f64;
        assert!((median - 2.1e9).abs() < 1.0e8, "median {median}");
    }

    #[test]
    fn poisson_has_positive_gaps_mostly() {
        let v = poisson_timestamps(20_000, &mut rng());
        let increasing = v.windows(2).filter(|w| w[1] >= w[0]).count();
        assert!(increasing as f64 / v.len() as f64 > 0.5);
    }

    #[test]
    fn cosmos_oscillates() {
        let v = cosmos(10_000, &mut rng());
        let min = *v.iter().min().unwrap() as f64;
        let max = *v.iter().max().unwrap() as f64;
        assert!(max - min > 1.5e6, "amplitude {}", max - min);
    }

    #[test]
    fn std_normal_moments() {
        let mut r = rng();
        let samples: Vec<f64> = (0..100_000).map(|_| std_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn block_generators_produce_requested_length() {
        assert_eq!(polylog(12_345, &mut rng()).len(), 12_345);
        assert_eq!(exp_blocks(7_001, &mut rng()).len(), 7_001);
        assert_eq!(poly_blocks(9_999, &mut rng()).len(), 9_999);
    }
}
