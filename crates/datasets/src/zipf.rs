//! Zipfian workload generator for the key-value store experiment (§5.2).
//!
//! The paper uses YCSB with a skewed configuration where 80% of queries touch
//! 20% of the keys.  This module provides a classic Zipf(θ) sampler over a
//! key universe plus a convenience constructor tuned to the 80/20 shape.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf-distributed sampler over `0..n` using the standard inverse-CDF table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `theta` (0 = uniform,
    /// larger = more skew).  The memory cost is one `f64` per item.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "universe must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Sampler whose skew approximates the YCSB "80% of accesses hit 20% of
    /// keys" configuration (θ ≈ 0.99 gives that shape for large universes).
    pub fn ycsb_skewed(n: usize) -> Self {
        Self::new(n, 0.99)
    }

    /// Number of items.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one item index (0-based rank; rank 0 is the hottest).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw `count` item indices.
    pub fn sample_many(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_theta_zero() {
        let z = Zipf::new(1_000, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let samples = z.sample_many(50_000, &mut rng);
        let top_fifth = samples.iter().filter(|&&s| s < 200).count();
        let share = top_fifth as f64 / samples.len() as f64;
        assert!((share - 0.2).abs() < 0.03, "share {share}");
    }

    #[test]
    fn skewed_sampler_is_roughly_80_20() {
        let z = Zipf::ycsb_skewed(100_000);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = z.sample_many(100_000, &mut rng);
        let hot = samples.iter().filter(|&&s| s < 20_000).count();
        let share = hot as f64 / samples.len() as f64;
        assert!(share > 0.70, "hot-key share {share} should be close to 0.8");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }
}
