//! Synthetic stand-ins for the real-world data sets of §4.1.
//!
//! Each generator reproduces the distribution *shape* that drives a serial-
//! correlation compressor on the corresponding real data set: sortedness,
//! gap distribution, plateaus, repeated runs, piecewise structure and local
//! noise.  The shapes are chosen so the data sets land in the same regions of
//! the local/global hardness plane as Figure 9b (e.g. `linear`/`normal`/
//! `libio` locally easy, `osm`/`facebook` locally hard, `movieid`/
//! `house_price` globally hard but locally easy).

use crate::synthetic::std_normal;
use rand::rngs::StdRng;
use rand::Rng;

/// Sorted sequence built from i.i.d. positive gaps produced by `gap`.
fn from_gaps(n: usize, start: u64, mut gap: impl FnMut() -> u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut v = start;
    for _ in 0..n {
        out.push(v);
        v = v.saturating_add(gap());
    }
    out
}

/// Pareto-like heavy-tailed gap: mostly small, occasionally huge.
fn heavy_tail_gap(rng: &mut StdRng, scale: f64, alpha: f64) -> u64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (scale / u.powf(1.0 / alpha)) as u64 + 1
}

/// `ml`: sorted accelerometer timestamps — long stretches of regular sampling
/// interrupted by session gaps.
pub fn ml_timestamps(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut v: u64 = 1_493_700_000_000;
    let mut out = Vec::with_capacity(n);
    let mut remaining_in_session = 0usize;
    for _ in 0..n {
        if remaining_in_session == 0 {
            remaining_in_session = rng.gen_range(2_000..20_000);
            v += rng.gen_range(1_000_000..100_000_000); // session gap
        }
        out.push(v);
        v += 40 + rng.gen_range(0..4); // ~25 Hz sampling with jitter
        remaining_in_session -= 1;
    }
    out
}

/// `booksale`: 32-bit sorted Amazon sale ranks — heavy-tailed gaps.
pub fn booksale(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let target_max = 4.0e9;
    let scale = target_max / (n as f64) / 3.0;
    let mut v = from_gaps(n, 0, || heavy_tail_gap(rng, scale, 1.3));
    // Clamp into u32 range while keeping sortedness.
    let max = *v.last().expect("non-empty");
    if max > u32::MAX as u64 {
        let ratio = u32::MAX as f64 / max as f64;
        for x in &mut v {
            *x = (*x as f64 * ratio) as u64;
        }
    }
    v
}

/// `facebook`: 64-bit sorted user ids — dense plateaus separated by huge
/// jumps (id blocks allocated per shard), locally hard.
pub fn facebook_ids(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut base: u64 = 1 << 32;
    let mut i = 0usize;
    while i < n {
        let block = rng.gen_range(1_000..50_000).min(n - i);
        for _ in 0..block {
            base += heavy_tail_gap(rng, 20.0, 1.1);
            out.push(base);
        }
        base = base.saturating_add(rng.gen_range(1u64 << 36..1u64 << 44));
        i += block;
    }
    out
}

/// `wiki`: 64-bit sorted edit timestamps — near-uniform arrival with daily
/// periodic intensity.
pub fn wiki_timestamps(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut v: u64 = 1_200_000_000;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let phase = (i as f64 / n as f64) * 400.0 * std::f64::consts::TAU;
        let intensity = 1.5 + phase.sin();
        out.push(v);
        v += (rng.gen_range(1.0..8.0) / intensity) as u64 + 1;
    }
    out
}

/// `osm`: 64-bit sorted OpenStreetMap cell ids — extremely irregular gap
/// distribution spanning many orders of magnitude (locally hard).
pub fn osm_cellids(n: usize, rng: &mut StdRng) -> Vec<u64> {
    from_gaps(n, 1 << 40, || {
        let magnitude = rng.gen_range(0u32..36);
        rng.gen_range(1u64..16) << magnitude
    })
}

/// `movieid`: 32-bit *unsorted* "liked movie" ids — per-user bursts of nearly
/// consecutive ids with jumps between users (the Figure 1 motivating shape).
pub fn movieid(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        let burst = rng.gen_range(20..500).min(n - i);
        let start = rng.gen_range(1..80_000u64);
        let stride = rng.gen_range(1..4u64);
        for k in 0..burst {
            out.push(start + k as u64 * stride + rng.gen_range(0..2));
        }
        i += burst;
    }
    out
}

/// `house_price`: 32-bit sorted prices — long runs of identical round prices
/// plus jumps between price bands (globally hard, locally very easy).
pub fn house_price(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mut price: u64 = 45_000;
    while out.len() < n {
        let run = rng.gen_range(1..60).min(n - out.len());
        for _ in 0..run {
            out.push(price);
        }
        // Prices move in round increments, occasionally jumping a band.
        let step = if rng.gen_bool(0.02) {
            rng.gen_range(50_000..500_000)
        } else {
            rng.gen_range(0..50) * 100
        };
        price += step;
    }
    out
}

/// `planet`: 64-bit sorted planet object ids — near-dense with deletions.
pub fn planet_ids(n: usize, rng: &mut StdRng) -> Vec<u64> {
    from_gaps(n, 100_000_000, || {
        if rng.gen_bool(0.85) {
            1
        } else {
            rng.gen_range(2..2_000)
        }
    })
}

/// `libio`: 64-bit sorted repository ids — near-dense, very gentle growth.
pub fn libio_ids(n: usize, rng: &mut StdRng) -> Vec<u64> {
    from_gaps(n, 1_000, || rng.gen_range(1..6))
}

/// `medicare`: augmented 64-bit ids without order (the §4.5 probe column).
pub fn medicare(n: usize, rng: &mut StdRng) -> Vec<u64> {
    // Dictionary-friendly: values drawn from a moderately sized id universe
    // with skew, then left unsorted.
    let universe = (n / 4).max(1_000) as u64;
    (0..n)
        .map(|_| {
            let z = rng.gen_range(0.0f64..1.0).powf(2.0);
            1_000_000_007u64 + (z * universe as f64) as u64 * 97
        })
        .collect()
}

/// `site`: sorted 32-bit column with a stepped CDF (website session counts).
pub fn site(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n)
        .map(|_| {
            let z: f64 = rng.gen_range(0.0..1.0);
            (z.powf(3.0) * 35_000.0) as u64
        })
        .collect();
    v.sort_unstable();
    v
}

/// `weight`: sorted 32-bit column, near-normal (weights × heights data).
pub fn weight(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n)
        .map(|_| (6.75e6 + std_normal(rng) * 2.0e5).max(6.0e6) as u64)
        .collect();
    v.sort_unstable();
    v
}

/// `adult`: sorted 32-bit census column with heavy repetition at round values.
pub fn adult(n: usize, rng: &mut StdRng) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.6) {
                rng.gen_range(0..40u64) * 2_500
            } else {
                rng.gen_range(0..1_500_000u64)
            }
        })
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn sorted_generators_are_sorted() {
        let checks: Vec<(&str, Vec<u64>)> = vec![
            ("ml", ml_timestamps(20_000, &mut rng())),
            ("booksale", booksale(20_000, &mut rng())),
            ("facebook", facebook_ids(20_000, &mut rng())),
            ("wiki", wiki_timestamps(20_000, &mut rng())),
            ("osm", osm_cellids(20_000, &mut rng())),
            ("house_price", house_price(20_000, &mut rng())),
            ("planet", planet_ids(20_000, &mut rng())),
            ("libio", libio_ids(20_000, &mut rng())),
            ("site", site(20_000, &mut rng())),
            ("weight", weight(20_000, &mut rng())),
            ("adult", adult(20_000, &mut rng())),
        ];
        for (name, v) in checks {
            assert_eq!(v.len(), 20_000, "{name}");
            assert!(
                v.windows(2).all(|w| w[0] <= w[1]),
                "{name} should be sorted"
            );
        }
    }

    #[test]
    fn booksale_fits_u32() {
        let v = booksale(50_000, &mut rng());
        assert!(v.iter().all(|&x| x <= u32::MAX as u64));
    }

    #[test]
    fn movieid_has_bursty_structure() {
        let v = movieid(50_000, &mut rng());
        // Within bursts the first-order gaps are tiny; across bursts they jump.
        let small_gaps = v
            .windows(2)
            .filter(|w| (w[1] as i64 - w[0] as i64).unsigned_abs() <= 4)
            .count();
        assert!(
            small_gaps as f64 / v.len() as f64 > 0.8,
            "bursts should dominate"
        );
        assert!(v.iter().all(|&x| x <= u32::MAX as u64));
    }

    #[test]
    fn house_price_has_long_runs() {
        let v = house_price(50_000, &mut rng());
        let repeats = v.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            repeats as f64 / v.len() as f64 > 0.5,
            "expected many repeated prices"
        );
    }

    #[test]
    fn osm_gaps_span_many_orders_of_magnitude() {
        let v = osm_cellids(50_000, &mut rng());
        let gaps: Vec<u64> = v.windows(2).map(|w| w[1] - w[0]).collect();
        let small = gaps.iter().filter(|&&g| g < 100).count();
        let large = gaps.iter().filter(|&&g| g > 1_000_000).count();
        assert!(small > 0 && large > 0);
    }

    #[test]
    fn medicare_has_bounded_cardinality() {
        let v = medicare(100_000, &mut rng());
        let mut distinct = v.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() < v.len() / 2,
            "probe column should have repeated join keys"
        );
    }
}
