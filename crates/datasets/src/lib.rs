//! Seeded synthetic data-set and workload generators for the LeCo evaluation.
//!
//! The paper evaluates on a mixture of synthetic and real-world data sets
//! (§4.1).  The real data (SOSD columns, MovieLens ids, OpenStreetMap ids,
//! house prices, …) cannot be redistributed here, so every generator in this
//! crate reproduces the *distribution shape* that matters to a serial-
//! correlation compressor: sortedness, local smoothness, heavy-tailed gaps,
//! plateaus and jumps, periodicity, and so on.  All generators are
//! deterministic given a seed, so experiments are reproducible.
//!
//! The [`IntDataset`] enum enumerates every integer data set by its paper
//! name; [`generate`] produces it at any requested size.  String data sets,
//! multi-column tables, the §5.1 sensor table and the zipfian key workload of
//! §5.2 live in the [`strings`], [`tables`] and [`zipf`] modules.  The
//! columns these generators produce are what the benchmark harness feeds the
//! compressors whose on-disk output `docs/FORMAT.md` (repository root)
//! specifies.
//!
//! ```
//! use leco_datasets::{generate, IntDataset};
//!
//! // Same seed, same data — experiments are reproducible.
//! let a = generate(IntDataset::Booksale, 10_000, 42);
//! let b = generate(IntDataset::Booksale, 10_000, 42);
//! assert_eq!(a, b);
//! assert_eq!(a.len(), 10_000);
//! // booksale is sorted (a cumulative count), the shape LeCo exploits.
//! assert!(a.windows(2).all(|w| w[0] <= w[1]));
//! ```

pub mod realworld;
pub mod strings;
pub mod synthetic;
pub mod tables;
pub mod zipf;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale factor applied to the *default* data-set sizes used by the benchmark
/// harness, controlled by the `LECO_SCALE` environment variable (default 1.0,
/// i.e. about one million values per data set — laptop friendly).
pub fn scale_factor() -> f64 {
    std::env::var("LECO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Default number of values for microbenchmark data sets, after scaling.
pub fn default_size() -> usize {
    (1_000_000.0 * scale_factor()) as usize
}

/// Integer data sets of the microbenchmark (§4.1), by paper name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntDataset {
    /// Clean sorted linear sequence (synthetic).
    Linear,
    /// Sorted samples from a normal distribution (synthetic).
    Normal,
    /// Poisson-process timestamps (sensor events).
    Poisson,
    /// UCI-ML bar-crawl timestamps: sorted, bursty.
    Ml,
    /// SOSD `books` Amazon sale ranks: sorted, heavy-tailed gaps.
    Booksale,
    /// SOSD Facebook user ids: sorted, large plateaus of dense ids.
    Facebook,
    /// SOSD Wikipedia edit timestamps: sorted, mildly bursty.
    Wiki,
    /// SOSD OpenStreetMap cell ids: sorted, very irregular gaps.
    Osm,
    /// MovieLens "liked" movie ids: unsorted, piecewise-linear per user.
    Movieid,
    /// US house prices: sorted, long runs of repeated values.
    HousePrice,
    /// OpenStreetMap planet object ids: sorted, near-dense with gaps.
    Planet,
    /// libraries.io repository ids: sorted, near-dense.
    Libio,
    /// Public-BI `medicare` augmented ids: unsorted, low locality.
    Medicare,
    /// Cosmic-ray signal: two sine components plus Gaussian noise.
    Cosmos,
    /// Alternating polynomial / logarithm blocks (population growth).
    Polylog,
    /// Blockwise exponential growth with varying parameters.
    Exp,
    /// Blockwise polynomial growth with varying parameters.
    Poly,
    /// mlcourse.ai `websites_train_sessions` column: sorted, small range.
    Site,
    /// mlcourse.ai `weights_heights` column: sorted, near-normal.
    Weight,
    /// mlcourse.ai `adult_train` column: sorted, stepped.
    Adult,
    /// Sorted epoch-ms event timestamps: steady cadence with periodic burst
    /// gaps (the quickstart column; stresses the partition cost model).
    Timestamps,
}

impl IntDataset {
    /// The twelve data sets of the main microbenchmark (Figure 10), in the
    /// paper's presentation order.
    pub const MICROBENCH: [IntDataset; 12] = [
        IntDataset::Linear,
        IntDataset::Normal,
        IntDataset::Libio,
        IntDataset::Wiki,
        IntDataset::Booksale,
        IntDataset::Planet,
        IntDataset::Facebook,
        IntDataset::Ml,
        IntDataset::Movieid,
        IntDataset::Poisson,
        IntDataset::HousePrice,
        IntDataset::Osm,
    ];

    /// The additional non-linear data sets of §4.4 (Figure 11).
    pub const NONLINEAR: [IntDataset; 8] = [
        IntDataset::Movieid,
        IntDataset::Poly,
        IntDataset::Cosmos,
        IntDataset::Exp,
        IntDataset::Polylog,
        IntDataset::Site,
        IntDataset::Weight,
        IntDataset::Adult,
    ];

    /// Paper name of the data set (used as a row/series label in the
    /// reproduction harness).
    pub fn name(&self) -> &'static str {
        match self {
            IntDataset::Linear => "linear",
            IntDataset::Normal => "normal",
            IntDataset::Poisson => "poisson",
            IntDataset::Ml => "ml",
            IntDataset::Booksale => "booksale",
            IntDataset::Facebook => "facebook",
            IntDataset::Wiki => "wiki",
            IntDataset::Osm => "osm",
            IntDataset::Movieid => "movieid",
            IntDataset::HousePrice => "house_price",
            IntDataset::Planet => "planet",
            IntDataset::Libio => "libio",
            IntDataset::Medicare => "medicare",
            IntDataset::Cosmos => "cosmos",
            IntDataset::Polylog => "polylog",
            IntDataset::Exp => "exp",
            IntDataset::Poly => "poly",
            IntDataset::Site => "site",
            IntDataset::Weight => "weight",
            IntDataset::Adult => "adult",
            IntDataset::Timestamps => "timestamps",
        }
    }

    /// Width in bytes of the original values (the paper stores some data sets
    /// as 32-bit and others as 64-bit integers); used for ratio accounting.
    pub fn value_width(&self) -> usize {
        match self {
            IntDataset::Linear
            | IntDataset::Normal
            | IntDataset::Booksale
            | IntDataset::Movieid
            | IntDataset::HousePrice
            | IntDataset::Cosmos
            | IntDataset::Site
            | IntDataset::Weight
            | IntDataset::Adult => 4,
            _ => 8,
        }
    }

    /// Whether the generated sequence is sorted (Elias-Fano only applies to
    /// monotone data; `poisson` and `movieid` are the paper's exceptions).
    pub fn is_sorted(&self) -> bool {
        !matches!(
            self,
            IntDataset::Movieid | IntDataset::Medicare | IntDataset::Cosmos | IntDataset::Poisson
        )
    }
}

/// Generate `n` values of the given data set with a deterministic seed.
pub fn generate(dataset: IntDataset, n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ dataset.name().len() as u64);
    match dataset {
        IntDataset::Linear => synthetic::linear(n, &mut rng),
        IntDataset::Normal => synthetic::normal_sorted(n, &mut rng),
        IntDataset::Poisson => synthetic::poisson_timestamps(n, &mut rng),
        IntDataset::Cosmos => synthetic::cosmos(n, &mut rng),
        IntDataset::Polylog => synthetic::polylog(n, &mut rng),
        IntDataset::Exp => synthetic::exp_blocks(n, &mut rng),
        IntDataset::Poly => synthetic::poly_blocks(n, &mut rng),
        IntDataset::Ml => realworld::ml_timestamps(n, &mut rng),
        IntDataset::Booksale => realworld::booksale(n, &mut rng),
        IntDataset::Facebook => realworld::facebook_ids(n, &mut rng),
        IntDataset::Wiki => realworld::wiki_timestamps(n, &mut rng),
        IntDataset::Osm => realworld::osm_cellids(n, &mut rng),
        IntDataset::Movieid => realworld::movieid(n, &mut rng),
        IntDataset::HousePrice => realworld::house_price(n, &mut rng),
        IntDataset::Planet => realworld::planet_ids(n, &mut rng),
        IntDataset::Libio => realworld::libio_ids(n, &mut rng),
        IntDataset::Medicare => realworld::medicare(n, &mut rng),
        IntDataset::Site => realworld::site(n, &mut rng),
        IntDataset::Weight => realworld::weight(n, &mut rng),
        IntDataset::Adult => realworld::adult(n, &mut rng),
        IntDataset::Timestamps => synthetic::bursty_timestamps(n, &mut rng),
    }
}

/// "Sortedness" of a sequence in `[0, 1]`: `1 − 2·(inversion fraction)`, the
/// inverse-pair metric used for the multi-column analysis (Figure 13),
/// estimated from a deterministic sample of pairs.
pub fn sortedness(values: &[u64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 1.0;
    }
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    use rand::Rng;
    let samples = 20_000.min(n * (n - 1) / 2);
    let mut inversions = 0usize;
    for _ in 0..samples {
        let i = rng.gen_range(0..n - 1);
        let j = rng.gen_range(i + 1..n);
        if values[i] > values[j] {
            inversions += 1;
        }
    }
    (1.0 - 2.0 * inversions as f64 / samples as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for ds in IntDataset::MICROBENCH {
            let a = generate(ds, 5_000, 1);
            let b = generate(ds, 5_000, 1);
            let c = generate(ds, 5_000, 2);
            assert_eq!(a, b, "{ds:?} must be deterministic");
            assert_eq!(a.len(), 5_000);
            if ds != IntDataset::Linear {
                assert_ne!(a, c, "{ds:?} should vary with the seed");
            }
        }
    }

    #[test]
    fn sorted_datasets_are_sorted() {
        for ds in IntDataset::MICROBENCH {
            if ds.is_sorted() {
                let v = generate(ds, 20_000, 7);
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "{ds:?} should be sorted"
                );
            }
        }
    }

    #[test]
    fn unsorted_datasets_are_not_sorted() {
        for ds in [
            IntDataset::Movieid,
            IntDataset::Medicare,
            IntDataset::Poisson,
        ] {
            let v = generate(ds, 20_000, 7);
            assert!(
                !v.windows(2).all(|w| w[0] <= w[1]),
                "{ds:?} should not be fully sorted"
            );
        }
    }

    #[test]
    fn sortedness_metric_extremes() {
        let sorted: Vec<u64> = (0..10_000).collect();
        let reversed: Vec<u64> = (0..10_000).rev().collect();
        assert!(sortedness(&sorted) > 0.99);
        assert!(sortedness(&reversed) < 0.01);
        // Uncorrelated data has ~50% inverse pairs, i.e. sortedness ≈ 0 on
        // this scale (matching the paper's catalog_sales ≈ 0.07).
        let mid: Vec<u64> = (0..10_000).map(|i| (i * 2654435761) % 1_000_000).collect();
        let s = sortedness(&mid);
        assert!(s < 0.2, "uncorrelated data sortedness {s}");
    }

    #[test]
    fn value_widths_fit() {
        for ds in IntDataset::MICROBENCH {
            let v = generate(ds, 10_000, 3);
            if ds.value_width() == 4 {
                assert!(
                    v.iter().all(|&x| x <= u32::MAX as u64),
                    "{ds:?} should fit in 32 bits"
                );
            }
        }
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        // Cannot assume the env var is unset in every environment, but the
        // parsing path must at least return a positive number.
        assert!(scale_factor() > 0.0);
        assert!(default_size() > 0);
    }
}
