//! Snapshot scans over a live table: memtable + frozen segments + compacted
//! row groups, merged with exact integer partials.
//!
//! Bit-identity contract: every partial aggregate is an exact integer — row
//! counts in `u64`, sums in `u128`, group-by partials as `(sum: u128,
//! count: u64)` — and the one lossy operation (the f64 division of a group
//! average) happens exactly once, on the fully merged partials, via
//! [`leco_columnar::exec::finalize_group_avgs`]. That is the same discipline
//! `leco-scan` uses to merge morsels and `leco-server` uses to merge shards,
//! so a live-table scan, a one-shot `Scanner`, and a sharded server scan all
//! produce bit-identical answers over the same rows, regardless of how the
//! rows happen to be spread across memtable, frozen segments and files.

use crate::segment::FrozenSegment;
use leco_columnar::exec::{
    filter_chunk, finalize_group_avgs, group_by_avg_chunk, sum_selected_chunk, QueryStats,
};
use leco_columnar::{Bitmap, TableFile};
use leco_scan::Scanner;
use std::collections::{HashMap, HashSet};

/// Aggregate requested by a [`ScanSpec`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Agg {
    /// Count the selected rows (always reported anyway).
    #[default]
    Count,
    /// Exact `u128` sum of one column over the selected rows.
    Sum(String),
    /// `GROUP BY id_col` → average of `val_col`, f64-finalized once.
    GroupAvg {
        /// Grouping column.
        id_col: String,
        /// Averaged column.
        val_col: String,
    },
}

/// A declarative scan over a live table, mirroring the `leco-scan` builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanSpec {
    /// Optional inclusive range predicate `(column, lo, hi)`.
    pub filter: Option<(String, u64, u64)>,
    /// Aggregate to compute.
    pub agg: Agg,
}

impl ScanSpec {
    /// Count-only scan of everything.
    pub fn count() -> Self {
        Self::default()
    }

    /// Add an inclusive range filter on `col`.
    pub fn filter(mut self, col: &str, lo: u64, hi: u64) -> Self {
        self.filter = Some((col.to_string(), lo, hi));
        self
    }

    /// Sum `col` over the selected rows.
    pub fn sum(mut self, col: &str) -> Self {
        self.agg = Agg::Sum(col.to_string());
        self
    }

    /// Group by `id_col`, averaging `val_col`.
    pub fn group_by_avg(mut self, id_col: &str, val_col: &str) -> Self {
        self.agg = Agg::GroupAvg {
            id_col: id_col.to_string(),
            val_col: val_col.to_string(),
        };
        self
    }
}

/// Result of a live-table scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanOutput {
    /// Live rows in the scanned snapshot.
    pub rows_scanned: u64,
    /// Rows passing the filter.
    pub rows_selected: u64,
    /// Exact sum (for [`Agg::Sum`]).
    pub sum: u128,
    /// `(id, avg)` pairs sorted by id (for [`Agg::GroupAvg`]).
    pub groups: Vec<(u64, f64)>,
    /// The exact integer partials behind `groups`, sorted by id — what a
    /// sharded merge combines before finalizing.
    pub group_partials: Vec<(u64, u128, u64)>,
}

/// Resolved column indices for a spec (names checked once, up front).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResolvedSpec {
    pub filter: Option<(usize, u64, u64)>,
    pub agg: ResolvedAgg,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ResolvedAgg {
    Count,
    Sum(usize),
    GroupAvg { id_col: usize, val_col: usize },
}

pub(crate) fn resolve(spec: &ScanSpec, columns: &[String]) -> std::io::Result<ResolvedSpec> {
    let idx = |name: &str| {
        columns.iter().position(|c| c == name).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown column {name:?}"),
            )
        })
    };
    let filter = match &spec.filter {
        Some((col, lo, hi)) => Some((idx(col)?, *lo, *hi)),
        None => None,
    };
    let agg = match &spec.agg {
        Agg::Count => ResolvedAgg::Count,
        Agg::Sum(col) => ResolvedAgg::Sum(idx(col)?),
        Agg::GroupAvg { id_col, val_col } => ResolvedAgg::GroupAvg {
            id_col: idx(id_col)?,
            val_col: idx(val_col)?,
        },
    };
    Ok(ResolvedSpec { filter, agg })
}

/// Exact integer partial accumulator, merged across every data source.
#[derive(Debug, Default)]
pub(crate) struct Partials {
    pub rows_scanned: u64,
    pub rows_selected: u64,
    pub sum: u128,
    pub groups: HashMap<u64, (u128, u64)>,
}

impl Partials {
    pub fn finish(self) -> ScanOutput {
        let groups = finalize_group_avgs(&self.groups);
        let mut group_partials: Vec<(u64, u128, u64)> = self
            .groups
            .into_iter()
            .map(|(id, (sum, count))| (id, sum, count))
            .collect();
        group_partials.sort_unstable_by_key(|&(id, _, _)| id);
        ScanOutput {
            rows_scanned: self.rows_scanned,
            rows_selected: self.rows_selected,
            sum: self.sum,
            groups,
            group_partials,
        }
    }
}

/// Accumulate over in-memory row data (`columns` vectors), with an optional
/// per-row alive test. Used for the memtable (`alive` = `None`) and frozen
/// segments (`alive` = the segment's mask).
pub(crate) fn scan_rows(
    columns: &[Vec<u64>],
    alive: Option<&FrozenSegment>,
    spec: &ResolvedSpec,
    acc: &mut Partials,
) {
    let rows = columns.first().map_or(0, Vec::len);
    // One index walks several parallel column vectors; an iterator would
    // only cover one of them.
    #[allow(clippy::needless_range_loop)]
    for i in 0..rows {
        if let Some(seg) = alive {
            if !seg.is_alive(i) {
                continue;
            }
        }
        acc.rows_scanned += 1;
        if let Some((col, lo, hi)) = spec.filter {
            let v = columns[col][i];
            if v < lo || v > hi {
                continue;
            }
        }
        acc.rows_selected += 1;
        match spec.agg {
            ResolvedAgg::Count => {}
            ResolvedAgg::Sum(col) => acc.sum += columns[col][i] as u128,
            ResolvedAgg::GroupAvg { id_col, val_col } => {
                let entry = acc.groups.entry(columns[id_col][i]).or_insert((0, 0));
                entry.0 += columns[val_col][i] as u128;
                entry.1 += 1;
            }
        }
    }
}

/// Whether any tombstoned key could live in `file`, judged by the key
/// column's zone maps. False positives only cost a masked scan / rewrite.
pub(crate) fn file_may_contain(file: &TableFile, key_col: usize, keys: &HashSet<u64>) -> bool {
    if keys.is_empty() {
        return false;
    }
    (0..file.num_row_groups()).any(|rg| {
        let (min, max) = file.zone_map(rg, key_col);
        keys.iter().any(|&k| (min..=max).contains(&k))
    })
}

/// Scan one compacted file with no tombstones touching it: delegate to the
/// existing morsel-driven [`Scanner`] at the requested thread count and fold
/// its exact partials in.
pub(crate) fn scan_file_clean(
    file: &TableFile,
    spec: &ResolvedSpec,
    threads: usize,
    acc: &mut Partials,
) -> std::io::Result<()> {
    let mut scanner = Scanner::new(file);
    if let Some((col, lo, hi)) = spec.filter {
        scanner = scanner.filter_col(col, lo, hi);
    }
    match spec.agg {
        ResolvedAgg::Count => scanner = scanner.count(),
        ResolvedAgg::Sum(col) => scanner = scanner.sum_col(col),
        ResolvedAgg::GroupAvg { id_col, val_col } => {
            scanner = scanner.group_by_avg_cols(id_col, val_col)
        }
    }
    let result = scanner
        .run(threads.max(1))
        .map_err(|e| std::io::Error::other(format!("scan failed: {e:?}")))?;
    acc.rows_scanned += file.num_rows() as u64;
    acc.rows_selected += result.rows_selected;
    acc.sum += result.sum;
    for (id, sum, count) in result.group_partials {
        let entry = acc.groups.entry(id).or_insert((0, 0));
        entry.0 += sum;
        entry.1 += count;
    }
    Ok(())
}

/// Scan one compacted file that tombstones may touch: build an alive bitmap
/// from the key column (`key ∉ tombstones`), intersect it with the filter
/// selection, and aggregate with the shared chunk kernels. Single-threaded —
/// masked files exist only in the window between a delete and the next
/// compaction.
pub(crate) fn scan_file_masked(
    file: &TableFile,
    key_col: usize,
    tombstones: &HashSet<u64>,
    spec: &ResolvedSpec,
    acc: &mut Partials,
) -> std::io::Result<()> {
    let n = file.num_rows();
    let reader = file.chunk_reader()?;
    let mut stats = QueryStats::default();
    let mut decode: Vec<u64> = Vec::new();

    // Alive bitmap: one pass over the key column.
    let mut alive = Bitmap::new(n);
    let mut live_rows = 0u64;
    for rg in 0..file.num_row_groups() {
        let chunk = reader.read_chunk(rg, key_col, &mut stats)?;
        let (row_start, _) = file.row_group_range(rg);
        decode.clear();
        chunk.decode_into(&mut decode);
        for (local, key) in decode.iter().enumerate() {
            if !tombstones.contains(key) {
                alive.set(row_start + local);
                live_rows += 1;
            }
        }
    }
    acc.rows_scanned += live_rows;

    // Selection: filter ∧ alive (or alive alone when unfiltered).
    let sel = match spec.filter {
        Some((col, lo, hi)) => {
            let mut sel = Bitmap::new(n);
            for rg in 0..file.num_row_groups() {
                let (zmin, zmax) = file.zone_map(rg, col);
                if zmax < lo || zmin > hi {
                    continue;
                }
                let chunk = reader.read_chunk(rg, col, &mut stats)?;
                let (row_start, _) = file.row_group_range(rg);
                filter_chunk(
                    chunk,
                    lo,
                    hi,
                    false,
                    row_start,
                    &mut sel,
                    &mut decode,
                    &mut stats,
                );
            }
            sel.and(&alive);
            sel
        }
        None => alive,
    };
    acc.rows_selected += sel.count_ones() as u64;

    match spec.agg {
        ResolvedAgg::Count => {}
        ResolvedAgg::Sum(col) => {
            for rg in 0..file.num_row_groups() {
                let (row_start, row_end) = file.row_group_range(rg);
                if sel.count_ones_in(row_start, row_end) == 0 {
                    continue;
                }
                let chunk = reader.read_chunk(rg, col, &mut stats)?;
                acc.sum += sum_selected_chunk(chunk, &sel, row_start, &mut decode);
            }
        }
        ResolvedAgg::GroupAvg { id_col, val_col } => {
            let mut decode2: Vec<u64> = Vec::new();
            for rg in 0..file.num_row_groups() {
                let (row_start, row_end) = file.row_group_range(rg);
                if sel.count_ones_in(row_start, row_end) == 0 {
                    continue;
                }
                let ids = reader.read_chunk(rg, id_col, &mut stats)?;
                let vals = reader.read_chunk(rg, val_col, &mut stats)?;
                group_by_avg_chunk(
                    ids,
                    vals,
                    &sel,
                    row_start,
                    &mut decode,
                    &mut decode2,
                    &mut acc.groups,
                );
            }
        }
    }
    Ok(())
}
