//! Table manifest: the single commit point of the write path.
//!
//! The manifest is a tiny line-based text file naming the current WAL and
//! every live compacted table file. It is replaced atomically (write to
//! `MANIFEST.tmp`, fsync, rename over `MANIFEST`, fsync the directory), so a
//! crash at any instant leaves either the old or the new manifest — never a
//! torn one. Files on disk that the manifest does not reference are orphans
//! from an interrupted compaction and are deleted on open.
//!
//! Format (one directive per line, `#` comments ignored):
//!
//! ```text
//! leco-ingest-manifest v1
//! gen 3
//! key_col 0
//! columns ts,id,val
//! wal wal-000003.log
//! file file-000001.tbl
//! file file-000004.tbl
//! ```

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// File name of the manifest inside a table directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const HEADER: &str = "leco-ingest-manifest v1";

fn bad_data(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint generation; increments on every compaction commit.
    pub gen: u64,
    /// Index of the key column deletes address.
    pub key_col: usize,
    /// Column names, in storage order.
    pub columns: Vec<String>,
    /// Current WAL file name (relative to the table directory).
    pub wal: String,
    /// Live compacted table files, oldest first (relative names).
    pub files: Vec<String>,
}

impl Manifest {
    /// Read and parse `dir/MANIFEST`; `Ok(None)` if it does not exist.
    pub fn read(dir: &Path) -> std::io::Result<Option<Manifest>> {
        let path = dir.join(MANIFEST_NAME);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines().filter(|l| !l.trim_start().starts_with('#'));
        if lines.next() != Some(HEADER) {
            return Err(bad_data(format!("{}: bad manifest header", path.display())));
        }
        let mut gen = None;
        let mut key_col = None;
        let mut columns = None;
        let mut wal = None;
        let mut files = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (directive, arg) = line
                .split_once(' ')
                .ok_or_else(|| bad_data(format!("manifest line without argument: {line:?}")))?;
            match directive {
                "gen" => {
                    gen = Some(
                        arg.parse()
                            .map_err(|_| bad_data(format!("bad gen {arg:?}")))?,
                    )
                }
                "key_col" => {
                    key_col = Some(
                        arg.parse()
                            .map_err(|_| bad_data(format!("bad key_col {arg:?}")))?,
                    )
                }
                "columns" => columns = Some(arg.split(',').map(str::to_string).collect()),
                "wal" => wal = Some(arg.to_string()),
                "file" => files.push(arg.to_string()),
                other => return Err(bad_data(format!("unknown manifest directive {other:?}"))),
            }
        }
        Ok(Some(Manifest {
            gen: gen.ok_or_else(|| bad_data("manifest missing gen".into()))?,
            key_col: key_col.ok_or_else(|| bad_data("manifest missing key_col".into()))?,
            columns: columns.ok_or_else(|| bad_data("manifest missing columns".into()))?,
            wal: wal.ok_or_else(|| bad_data("manifest missing wal".into()))?,
            files,
        }))
    }

    /// Atomically install this manifest as `dir/MANIFEST`: tmp + fsync +
    /// rename + directory fsync. This rename is the durability commit point
    /// for a compaction — everything the manifest references must already be
    /// synced before calling.
    pub fn write_atomic(&self, dir: &Path) -> std::io::Result<()> {
        let mut text = String::new();
        text.push_str(HEADER);
        text.push('\n');
        text.push_str(&format!("gen {}\n", self.gen));
        text.push_str(&format!("key_col {}\n", self.key_col));
        text.push_str(&format!("columns {}\n", self.columns.join(",")));
        text.push_str(&format!("wal {}\n", self.wal));
        for f in &self.files {
            text.push_str(&format!("file {f}\n"));
        }
        let tmp = dir.join(MANIFEST_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
        sync_dir(dir)
    }
}

/// fsync a directory so a rename inside it is durable. Windows cannot open
/// directories as files; renames there are best-effort.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-manifest-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn round_trips_and_overwrites_atomically() {
        let dir = tmp_dir("roundtrip");
        assert_eq!(Manifest::read(&dir).unwrap(), None);
        let m = Manifest {
            gen: 2,
            key_col: 1,
            columns: vec!["ts".into(), "id".into()],
            wal: "wal-000002.log".into(),
            files: vec!["file-000000.tbl".into(), "file-000001.tbl".into()],
        };
        m.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m.clone()));
        let m2 = Manifest {
            gen: 3,
            files: vec!["file-000002.tbl".into()],
            ..m
        };
        m2.write_atomic(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), Some(m2));
        assert!(!dir.join(MANIFEST_TMP).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = tmp_dir("garbage");
        std::fs::write(dir.join(MANIFEST_NAME), "not a manifest\n").unwrap();
        assert!(Manifest::read(&dir).is_err());
        std::fs::write(
            dir.join(MANIFEST_NAME),
            format!("{HEADER}\ngen x\nkey_col 0\ncolumns a\nwal w\n"),
        )
        .unwrap();
        assert!(Manifest::read(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
