//! `leco-ingest` — the write path of the LeCo stack.
//!
//! Everything below this crate encodes a complete, static column; this crate
//! is what makes data *arrive*: a WAL-backed mutable memtable with O(1)
//! running ingest statistics, background compaction through the learned
//! partitioner + exact cost model into immutable row-group table files, and
//! snapshot-consistent scans that merge memtable, frozen segments and
//! compacted files with exact integer partials.
//!
//! Entry point: [`LiveTable`]. See `docs/INGEST.md` for the on-disk formats
//! (WAL record bytes, manifest), the segment lifecycle, the recovery rules
//! and the `ing.*` metric inventory.

pub mod manifest;
pub mod scan;
pub mod segment;
pub mod stats;
pub mod table;
pub mod wal;

pub use manifest::Manifest;
pub use scan::{Agg, ScanOutput, ScanSpec};
pub use segment::{FrozenSegment, MemSegment};
pub use stats::ColumnStats;
pub use table::{CompactReport, IngestConfig, LiveTable, TableStats};
pub use wal::{crc32, replay, ReplayReport, Wal, WalRecord};
