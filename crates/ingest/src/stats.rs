//! O(1) running column statistics, maintained per push.
//!
//! Every value appended to a [`crate::MemSegment`] updates these counters in
//! constant time (the LocustDB ingest-builder trick): min/max bound the
//! domain, and the count of maximal non-decreasing runs measures how
//! model-friendly the column is.  The compactor consults the run structure
//! when choosing the flush encoding — long runs mean the learned partitioner
//! will fit cheap linear models, short runs mean the column is noise and
//! plain storage is the better deal.

/// Running statistics over one column of a mutable segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Values pushed so far.
    pub rows: u64,
    /// Smallest value seen.
    pub min: u64,
    /// Largest value seen.
    pub max: u64,
    /// First value pushed (needed to merge run counts across segments).
    pub first: u64,
    /// Most recent value pushed.
    pub last: u64,
    /// Number of maximal non-decreasing runs. A fully sorted column has one
    /// run; a strictly decreasing column has one run per value.
    pub runs: u64,
}

impl Default for ColumnStats {
    fn default() -> Self {
        Self {
            rows: 0,
            min: u64::MAX,
            max: 0,
            first: 0,
            last: 0,
            runs: 0,
        }
    }
}

impl ColumnStats {
    /// Fold one value in. O(1): a handful of compares and adds.
    pub fn push(&mut self, v: u64) {
        if self.rows == 0 {
            self.first = v;
            self.runs = 1;
        } else if v < self.last {
            self.runs += 1;
        }
        self.rows += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
    }

    /// Whether every pushed value was `>=` its predecessor.
    pub fn is_non_decreasing(&self) -> bool {
        self.runs <= 1
    }

    /// Mean length of the non-decreasing runs; `0.0` before any push.
    /// Long runs (say `>= 4`) are the hint that a learned model will pay off.
    pub fn avg_run_len(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.rows as f64 / self.runs as f64
        }
    }

    /// Combine the stats of two column fragments laid out back to back
    /// (`self` first, `other` after it). Exact: the only cross-boundary fact
    /// needed is whether `other` starts a new run.
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        if other.rows == 0 {
            return *self;
        }
        if self.rows == 0 {
            return *other;
        }
        ColumnStats {
            rows: self.rows + other.rows,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            first: self.first,
            last: other.last,
            runs: self.runs + other.runs - u64::from(other.first >= self.last),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(values: &[u64]) -> ColumnStats {
        let mut s = ColumnStats::default();
        for &v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn tracks_min_max_and_runs() {
        let s = stats_of(&[5, 7, 7, 9, 2, 3, 1]);
        assert_eq!((s.min, s.max), (1, 9));
        assert_eq!(s.rows, 7);
        assert_eq!(s.runs, 3); // [5 7 7 9] [2 3] [1]
        assert!(!s.is_non_decreasing());
        assert_eq!(stats_of(&[1, 2, 3]).runs, 1);
        assert!(stats_of(&[1, 2, 3]).is_non_decreasing());
    }

    #[test]
    fn merge_matches_concatenation() {
        let cases: [(&[u64], &[u64]); 4] = [
            (&[1, 2, 3], &[4, 5]),
            (&[1, 2, 3], &[0, 5]),
            (&[9], &[9]),
            (&[3, 1], &[2, 0, 7]),
        ];
        for (a, b) in cases {
            let concat: Vec<u64> = a.iter().chain(b).copied().collect();
            assert_eq!(
                stats_of(a).merge(&stats_of(b)),
                stats_of(&concat),
                "{a:?} ++ {b:?}"
            );
        }
        let empty = ColumnStats::default();
        assert_eq!(empty.merge(&stats_of(&[1])), stats_of(&[1]));
        assert_eq!(stats_of(&[1]).merge(&empty), stats_of(&[1]));
    }
}
