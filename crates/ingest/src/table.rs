//! The live table: WAL-backed memtable, frozen segments, background
//! compaction into immutable LeCo table files, and snapshot scans.
//!
//! # Data flow
//!
//! ```text
//! put/del ──► WAL (append + fsync batch) ──► memtable (MemSegment)
//!                                               │ segment_rows reached
//!                                               ▼  (FREEZE marker)
//!                                          frozen segments
//!                                               │ background compactor
//!                                               ▼
//!                          partitioner + CostModel (Encoding::LecoVar)
//!                                               │
//!                                               ▼
//!                              immutable table files (TableFile)
//!                                               │ atomic swap
//!                                               ▼
//!                            manifest rename  +  fresh checkpoint WAL
//! ```
//!
//! # Locking
//!
//! Two locks, always in the order **WAL → state**: the WAL mutex serializes
//! writers (and makes batch fsyncs well-ordered); the state `RwLock` guards
//! the in-memory view. Scans only take the state read lock, briefly, to
//! clone a snapshot (memtable copy + `Arc`s of frozen segments and files) —
//! they never block on an fsync and never see a half-applied commit.
//!
//! # Crash safety
//!
//! The manifest rename is the *only* commit point for compaction. The
//! compactor first syncs the new table files, then writes and syncs a fresh
//! checkpoint WAL serializing exactly the state the swap will leave in
//! memory, and only then renames the manifest (which names both). A crash
//! before the rename replays the old WAL against the old file set; a crash
//! after replays the checkpoint against the new one — both reconstruct the
//! acknowledged rows exactly once. Replaced table files and the old WAL are
//! deleted lazily (orphan sweep on open), never while a concurrent scan
//! might still read them.
//!
//! # Deletes
//!
//! `DEL key` kills every row whose key column equals `key` *at that moment*:
//! memtable rows are purged in place, frozen segments get a copy-on-write
//! alive mask, and compacted files are masked at scan time by a tombstone
//! set (every live tombstone postdates every compacted row, so plain key
//! membership is exact). Each tombstone carries the epoch of its delete;
//! compaction rewrites the files it can prove the tombstones touch and then
//! drops exactly the tombstones that existed when its snapshot was taken —
//! a delete racing the compactor keeps its tombstone and masks the freshly
//! written files too.

use crate::manifest::{sync_dir, Manifest};
use crate::scan::{
    file_may_contain, resolve, scan_file_clean, scan_file_masked, scan_rows, Partials, ScanOutput,
    ScanSpec,
};
use crate::segment::{FrozenSegment, MemSegment};
use crate::stats::ColumnStats;
use crate::wal::{replay, ReplayReport, Wal, WalRecord};
use leco_columnar::{Encoding, TableFile, TableFileOptions};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Tuning knobs for a [`LiveTable`].
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Rows per memtable before it freezes.
    pub segment_rows: usize,
    /// Frozen segments that wake the background compactor.
    pub compact_min_segments: usize,
    /// Row-group size of compacted table files.
    pub row_group_size: usize,
    /// Spawn the background compactor thread. Off, compaction only happens
    /// through [`LiveTable::flush`] / [`LiveTable::compact_once`] — what the
    /// deterministic tests use.
    pub auto_compact: bool,
    /// Key column deletes address (only consulted when creating a new
    /// table; reopened tables take it from the manifest).
    pub key_col: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            segment_rows: 65_536,
            compact_min_segments: 2,
            row_group_size: 8_192,
            auto_compact: true,
            key_col: 0,
        }
    }
}

/// What a [`LiveTable::flush`] / [`LiveTable::compact_once`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Live rows flushed out of frozen segments into table files.
    pub rows_flushed: u64,
    /// New table files written from frozen segments.
    pub files_written: usize,
    /// Existing table files rewritten to drop tombstoned rows.
    pub files_rewritten: usize,
    /// Tombstones retired by the swap.
    pub tombstones_dropped: usize,
}

/// Point-in-time shape of a live table, for tests and observability.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Rows in the mutable memtable.
    pub mem_rows: usize,
    /// Frozen segments awaiting compaction.
    pub frozen_segments: usize,
    /// Live rows across frozen segments.
    pub frozen_rows: usize,
    /// Compacted table files.
    pub files: usize,
    /// Total rows stored in compacted files (before tombstone masking).
    pub file_rows: usize,
    /// Live tombstones masking compacted files.
    pub tombstones: usize,
}

#[derive(Debug)]
struct CompactedFile {
    name: String,
    table: TableFile,
}

#[derive(Debug)]
struct TableState {
    mem: MemSegment,
    frozen: Vec<Arc<FrozenSegment>>,
    files: Vec<Arc<CompactedFile>>,
    /// key → epoch of its latest delete. Epochs order deletes against
    /// compaction snapshots so a racing delete survives the swap.
    tombstones: HashMap<u64, u64>,
    del_epoch: u64,
    next_segment_id: u64,
    next_file_id: u64,
    manifest_gen: u64,
    wal_name: String,
}

struct Inner {
    dir: PathBuf,
    columns: Vec<String>,
    key_col: usize,
    config: IngestConfig,
    wal: Mutex<Wal>,
    state: RwLock<TableState>,
    /// Serializes compaction cycles (the heavyweight part runs lock-free
    /// against a snapshot; this keeps two cycles from interleaving).
    compact_gate: Mutex<()>,
    wake: StdMutex<bool>,
    wake_cv: Condvar,
    shutdown: AtomicBool,
}

/// A WAL-backed ingestible table serving snapshot-consistent scans.
pub struct LiveTable {
    inner: Arc<Inner>,
    compactor: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Replay outcome of the open that produced this handle.
    replay_report: ReplayReport,
}

impl std::fmt::Debug for LiveTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveTable")
            .field("dir", &self.inner.dir)
            .field("columns", &self.inner.columns)
            .finish_non_exhaustive()
    }
}

fn wal_file_name(gen: u64) -> String {
    format!("wal-{gen:06}.log")
}

fn table_file_name(id: u64) -> String {
    format!("file-{id:06}.tbl")
}

fn invalid_input(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
}

impl LiveTable {
    /// Open (or create) the live table stored in `dir`.
    ///
    /// Creating requires `columns` (no commas in names) — they become the
    /// table schema. Reopening validates `columns` against the manifest,
    /// sweeps orphan files from interrupted compactions, opens the manifest's
    /// table files and replays the WAL, truncating it at the first torn or
    /// corrupt record.
    pub fn open<P: AsRef<Path>>(
        dir: P,
        columns: &[&str],
        config: IngestConfig,
    ) -> std::io::Result<LiveTable> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest = match Manifest::read(&dir)? {
            Some(m) => {
                if m.columns != columns {
                    return Err(invalid_input(format!(
                        "schema mismatch: manifest has {:?}, caller wants {columns:?}",
                        m.columns
                    )));
                }
                m
            }
            None => {
                if columns.is_empty() {
                    return Err(invalid_input("a table needs at least one column".into()));
                }
                if columns.iter().any(|c| c.contains(',') || c.is_empty()) {
                    return Err(invalid_input(format!("bad column names {columns:?}")));
                }
                if config.key_col >= columns.len() {
                    return Err(invalid_input(format!(
                        "key_col {} out of range for {} columns",
                        config.key_col,
                        columns.len()
                    )));
                }
                let m = Manifest {
                    gen: 0,
                    key_col: config.key_col,
                    columns: columns.iter().map(|s| s.to_string()).collect(),
                    wal: wal_file_name(0),
                    files: Vec::new(),
                };
                Wal::create(&dir.join(&m.wal))?;
                m.write_atomic(&dir)?;
                m
            }
        };

        // Orphan sweep: WALs and table files from an interrupted compaction
        // (written but never committed by a manifest rename) are garbage.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_wal_orphan = name.starts_with("wal-") && name != manifest.wal;
            let is_file_orphan = name.starts_with("file-") && !manifest.files.contains(&name);
            if is_wal_orphan || is_file_orphan || name == "MANIFEST.tmp" {
                std::fs::remove_file(entry.path())?;
                leco_obs::counter!("ing.orphans_swept").inc();
            }
        }

        let files: Vec<Arc<CompactedFile>> = manifest
            .files
            .iter()
            .map(|name| {
                TableFile::open(dir.join(name)).map(|table| {
                    Arc::new(CompactedFile {
                        name: name.clone(),
                        table,
                    })
                })
            })
            .collect::<std::io::Result<_>>()?;
        let next_file_id = manifest
            .files
            .iter()
            .filter_map(|f| {
                f.strip_prefix("file-")?
                    .strip_suffix(".tbl")?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .map_or(0, |m| m + 1);

        // Replay the WAL into a fresh in-memory state. FREEZE markers
        // reproduce the original segment boundaries; deletes re-purge and
        // re-tombstone exactly as they did the first time.
        let ncols = manifest.columns.len();
        let key_col = manifest.key_col;
        let mut state = TableState {
            mem: MemSegment::new(ncols),
            frozen: Vec::new(),
            files,
            tombstones: HashMap::new(),
            del_epoch: 0,
            next_segment_id: 0,
            next_file_id,
            manifest_gen: manifest.gen,
            wal_name: manifest.wal.clone(),
        };
        let wal_path = dir.join(&manifest.wal);
        let sw = leco_obs::Stopwatch::start();
        let replay_report = replay(&wal_path, |record| match record {
            WalRecord::Row(values) => {
                if values.len() == ncols {
                    state.mem.push_row(&values);
                } else {
                    leco_obs::counter!("ing.replay_bad_arity").inc();
                }
            }
            WalRecord::Del(key) => apply_del(&mut state, key_col, key),
            WalRecord::Freeze => {
                if !state.mem.is_empty() {
                    let id = state.next_segment_id;
                    state.next_segment_id += 1;
                    let seg = std::mem::replace(&mut state.mem, MemSegment::new(ncols));
                    state.frozen.push(Arc::new(seg.freeze(id)));
                }
            }
        })?;
        leco_obs::histogram!("ing.replay_secs").record_secs(sw.elapsed_secs());

        let wal = Wal::open_for_append(&wal_path)?;
        let inner = Arc::new(Inner {
            dir,
            columns: manifest.columns,
            key_col,
            config,
            wal: Mutex::new(wal),
            state: RwLock::new(state),
            compact_gate: Mutex::new(()),
            wake: StdMutex::new(false),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let compactor = if config.auto_compact {
            let worker = Arc::clone(&inner);
            Some(std::thread::spawn(move || background_compactor(worker)))
        } else {
            None
        };
        let table = LiveTable {
            inner,
            compactor: Mutex::new(compactor),
            replay_report,
        };
        table.publish_gauges();
        Ok(table)
    }

    /// Column names, in storage order.
    pub fn columns(&self) -> &[String] {
        &self.inner.columns
    }

    /// Index of the key column deletes address.
    pub fn key_col(&self) -> usize {
        self.inner.key_col
    }

    /// Path of the current WAL file (what a crash test corrupts).
    pub fn wal_path(&self) -> PathBuf {
        self.inner.dir.join(&self.inner.state.read().wal_name)
    }

    /// What WAL replay recovered (and discarded) when this handle opened.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay_report
    }

    /// Append one row: durable (WAL fsync) before it is visible or
    /// acknowledged.
    pub fn put(&self, row: &[u64]) -> std::io::Result<()> {
        self.put_batch(&[row])
    }

    /// Append a batch of rows under one fsync — the group commit. All-or-
    /// nothing per batch: arity is validated before anything is written.
    pub fn put_batch(&self, rows: &[&[u64]]) -> std::io::Result<()> {
        let ncols = self.inner.columns.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != ncols) {
            return Err(invalid_input(format!(
                "row has {} values, table has {ncols} columns",
                bad.len()
            )));
        }
        if rows.is_empty() {
            return Ok(());
        }
        self.ingest_rows(rows)
    }

    /// Append column-major data (`cols[c][r]`), group-committed in bounded
    /// chunks so arbitrarily large loads never hold the locks for long.
    pub fn append_columns(&self, cols: &[Vec<u64>]) -> std::io::Result<()> {
        let ncols = self.inner.columns.len();
        if cols.len() != ncols {
            return Err(invalid_input(format!(
                "{} columns given, table has {ncols}",
                cols.len()
            )));
        }
        let rows = cols.first().map_or(0, Vec::len);
        if cols.iter().any(|c| c.len() != rows) {
            return Err(invalid_input("ragged columns".into()));
        }
        const CHUNK: usize = 65_536;
        let mut buf: Vec<Vec<u64>> = Vec::with_capacity(CHUNK.min(rows));
        for start in (0..rows).step_by(CHUNK) {
            let end = (start + CHUNK).min(rows);
            buf.clear();
            for r in start..end {
                buf.push(cols.iter().map(|c| c[r]).collect());
            }
            let refs: Vec<&[u64]> = buf.iter().map(Vec::as_slice).collect();
            self.ingest_rows(&refs)?;
        }
        Ok(())
    }

    /// The shared ingest path: write WAL records (with FREEZE markers at the
    /// exact positions the memtable will freeze), fsync once, then apply.
    /// The rows are walked twice — once to log, once to apply — so freeze
    /// boundaries in the log match the in-memory boundaries record for
    /// record, and replay reproduces the same segments.
    fn ingest_rows(&self, rows: &[&[u64]]) -> std::io::Result<()> {
        let inner = &self.inner;
        let seg_rows = inner.config.segment_rows.max(1);
        let mut wal = inner.wal.lock();
        // Freeze boundaries are determined by the memtable fill at commit
        // time; the WAL lock keeps other writers from interleaving, so the
        // fill cannot change between the two passes.
        let mut fill = inner.state.read().mem.rows();
        for row in rows {
            wal.append(&WalRecord::Row(row.to_vec()))?;
            fill += 1;
            if fill >= seg_rows {
                wal.append(&WalRecord::Freeze)?;
                fill = 0;
            }
        }
        let sw = leco_obs::Stopwatch::start();
        wal.commit()?;
        leco_obs::histogram!("ing.commit_secs").record_secs(sw.elapsed_secs());

        let mut froze = false;
        {
            let mut st = inner.state.write();
            for row in rows {
                st.mem.push_row(row);
                if st.mem.rows() >= seg_rows {
                    let id = st.next_segment_id;
                    st.next_segment_id += 1;
                    let ncols = inner.columns.len();
                    let seg = std::mem::replace(&mut st.mem, MemSegment::new(ncols));
                    st.frozen.push(Arc::new(seg.freeze(id)));
                    froze = true;
                }
            }
        }
        drop(wal);
        leco_obs::counter!("ing.put_rows").add(rows.len() as u64);
        if froze {
            leco_obs::counter!("ing.freezes").inc();
            self.poke_compactor();
        }
        self.publish_gauges();
        Ok(())
    }

    /// Delete every row whose key column equals `key` — durable before
    /// visible, like [`Self::put`].
    pub fn delete(&self, key: u64) -> std::io::Result<()> {
        let inner = &self.inner;
        let mut wal = inner.wal.lock();
        wal.append(&WalRecord::Del(key))?;
        wal.commit()?;
        {
            let mut st = inner.state.write();
            apply_del(&mut st, inner.key_col, key);
        }
        drop(wal);
        leco_obs::counter!("ing.del_ops").inc();
        self.publish_gauges();
        Ok(())
    }

    /// Freeze whatever the memtable holds and run one synchronous compaction
    /// cycle: afterwards every acknowledged row lives in a compacted table
    /// file (or was deleted).
    pub fn flush(&self) -> std::io::Result<CompactReport> {
        {
            let inner = &self.inner;
            let mut wal = inner.wal.lock();
            let mut st = inner.state.write();
            if !st.mem.is_empty() {
                wal.append(&WalRecord::Freeze)?;
                wal.commit()?;
                let id = st.next_segment_id;
                st.next_segment_id += 1;
                let ncols = inner.columns.len();
                let seg = std::mem::replace(&mut st.mem, MemSegment::new(ncols));
                st.frozen.push(Arc::new(seg.freeze(id)));
                leco_obs::counter!("ing.freezes").inc();
            }
        }
        self.compact_once()
    }

    /// Run one compaction cycle (freeze nothing; flush existing frozen
    /// segments and apply tombstones). No-op when there is nothing to do.
    pub fn compact_once(&self) -> std::io::Result<CompactReport> {
        compact_cycle(&self.inner)
    }

    /// Scan a consistent snapshot: memtable + frozen segments + compacted
    /// files, merged with exact integer partials. `threads` parallelizes the
    /// compacted-file portion through the `leco-scan` morsel engine.
    pub fn scan(&self, spec: &ScanSpec, threads: usize) -> std::io::Result<ScanOutput> {
        let inner = &self.inner;
        let resolved = resolve(spec, &inner.columns)?;
        let sw = leco_obs::Stopwatch::start();

        // Snapshot under the read lock: copy the (bounded) memtable, clone
        // Arcs for everything immutable. Commits after this see none of it.
        let (mem_columns, frozen, files, tombstones) = {
            let st = inner.state.read();
            let mem_columns: Vec<Vec<u64>> = st.mem.columns().to_vec();
            let tombstones: HashSet<u64> = st.tombstones.keys().copied().collect();
            (mem_columns, st.frozen.clone(), st.files.clone(), tombstones)
        };

        let mut acc = Partials::default();
        scan_rows(&mem_columns, None, &resolved, &mut acc);
        for seg in &frozen {
            scan_rows(seg.columns(), Some(seg), &resolved, &mut acc);
        }
        for file in &files {
            if file_may_contain(&file.table, inner.key_col, &tombstones) {
                scan_file_masked(&file.table, inner.key_col, &tombstones, &resolved, &mut acc)?;
            } else {
                scan_file_clean(&file.table, &resolved, threads, &mut acc)?;
            }
        }
        leco_obs::histogram!("ing.scan_secs").record_secs(sw.elapsed_secs());
        Ok(acc.finish())
    }

    /// Current shape of the table (sizes, not contents).
    pub fn stats(&self) -> TableStats {
        let st = self.inner.state.read();
        TableStats {
            mem_rows: st.mem.rows(),
            frozen_segments: st.frozen.len(),
            frozen_rows: st.frozen.iter().map(|s| s.live_rows()).sum(),
            files: st.files.len(),
            file_rows: st.files.iter().map(|f| f.table.num_rows()).sum(),
            tombstones: st.tombstones.len(),
        }
    }

    fn publish_gauges(&self) {
        let s = self.stats();
        leco_obs::gauge!("ing.mem_rows").set(s.mem_rows as i64);
        leco_obs::gauge!("ing.frozen_segments").set(s.frozen_segments as i64);
        leco_obs::gauge!("ing.files").set(s.files as i64);
        leco_obs::gauge!("ing.tombstones").set(s.tombstones as i64);
    }

    fn poke_compactor(&self) {
        let mut flag = self.inner.wake.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        self.inner.wake_cv.notify_all();
    }
}

impl Drop for LiveTable {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let mut flag = self.inner.wake.lock().unwrap_or_else(|e| e.into_inner());
            *flag = true;
            self.inner.wake_cv.notify_all();
        }
        if let Some(handle) = self.compactor.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Apply a delete to the in-memory state (WAL record already durable, or
/// being replayed): purge the memtable, copy-on-write-mask every frozen
/// segment, and record an epoch-stamped tombstone for the compacted files.
fn apply_del(st: &mut TableState, key_col: usize, key: u64) {
    st.mem.purge_key(key_col, key);
    for slot in &mut st.frozen {
        if let Some(masked) = slot.without_key(key_col, key) {
            *slot = Arc::new(masked);
        }
    }
    st.del_epoch += 1;
    let epoch = st.del_epoch;
    st.tombstones.insert(key, epoch);
}

/// The background thread: sleep until poked (or shutdown), compact when
/// enough frozen segments have piled up.
fn background_compactor(inner: Arc<Inner>) {
    loop {
        {
            let guard = inner.wake.lock().unwrap_or_else(|e| e.into_inner());
            let (mut guard, _timeout) = inner
                .wake_cv
                .wait_timeout_while(guard, std::time::Duration::from_millis(100), |woken| {
                    !*woken
                })
                .unwrap_or_else(|e| e.into_inner());
            *guard = false;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let pending = inner.state.read().frozen.len();
        if pending >= inner.config.compact_min_segments {
            if let Err(e) = compact_cycle(&inner) {
                leco_obs::counter!("ing.compact_errors").inc();
                eprintln!("leco-ingest: background compaction failed: {e}");
            }
        }
    }
}

/// Pick the flush encoding from the O(1) ingest stats: columns dominated by
/// long non-decreasing runs reward the learned variable-length partitioner
/// (`LecoVar` — split-merge partitioning under the exact cost model); noisy
/// short-run data is stored plain rather than paying model overhead for no
/// size win.
fn choose_encoding(stats: &[ColumnStats]) -> Encoding {
    let model_friendly = stats.iter().filter(|s| s.avg_run_len() >= 4.0).count();
    if 2 * model_friendly >= stats.len() {
        Encoding::LecoVar
    } else {
        Encoding::Plain
    }
}

/// One full compaction cycle. Heavy work (reads, encodes, file writes)
/// happens against a lock-free snapshot; the commit takes WAL → state locks
/// only for the checkpoint serialization and pointer swap.
fn compact_cycle(inner: &Arc<Inner>) -> std::io::Result<CompactReport> {
    let _gate = inner.compact_gate.lock();
    let sw = leco_obs::Stopwatch::start();
    let ncols = inner.columns.len();
    let key_col = inner.key_col;

    // ---- Snapshot ----
    let (frozen, files, tombstones, snapshot_epoch, mut next_file_id) = {
        let st = inner.state.read();
        (
            st.frozen.clone(),
            st.files.clone(),
            st.tombstones.clone(),
            st.del_epoch,
            st.next_file_id,
        )
    };
    let tomb_keys: HashSet<u64> = tombstones.keys().copied().collect();

    // ---- Plan: which existing files do tombstones touch? ----
    let mut kept: Vec<Arc<CompactedFile>> = Vec::new();
    let mut rewrite: Vec<Arc<CompactedFile>> = Vec::new();
    for f in &files {
        if file_may_contain(&f.table, key_col, &tomb_keys) {
            rewrite.push(Arc::clone(f));
        } else {
            kept.push(Arc::clone(f));
        }
    }
    if frozen.is_empty() && rewrite.is_empty() && tombstones.is_empty() {
        return Ok(CompactReport::default());
    }

    let mut report = CompactReport::default();
    let mut new_files: Vec<Arc<CompactedFile>> = Vec::new();

    // ---- Rewrite tombstoned files, dropping dead rows ----
    for f in &rewrite {
        let table = &f.table;
        let mut cols: Vec<Vec<u64>> = vec![Vec::new(); ncols];
        let mut stats = leco_columnar::exec::QueryStats::default();
        let reader = table.chunk_reader()?;
        let mut decoded: Vec<Vec<u64>> = vec![Vec::new(); ncols];
        for rg in 0..table.num_row_groups() {
            for (c, buf) in decoded.iter_mut().enumerate() {
                buf.clear();
                reader.read_chunk(rg, c, &mut stats)?.decode_into(buf);
            }
            let rows = decoded[key_col].len();
            // `r` walks every decoded column vector in parallel.
            #[allow(clippy::needless_range_loop)]
            for r in 0..rows {
                if !tomb_keys.contains(&decoded[key_col][r]) {
                    for (c, col) in cols.iter_mut().enumerate() {
                        col.push(decoded[c][r]);
                    }
                }
            }
        }
        report.files_rewritten += 1;
        if cols[0].is_empty() {
            continue; // every row was dead; the file simply disappears
        }
        let file = write_table_file(inner, &mut next_file_id, &cols, None)?;
        new_files.push(Arc::new(file));
    }

    // ---- Flush the snapshot's frozen segments into one new file ----
    if !frozen.is_empty() {
        let mut cols: Vec<Vec<u64>> = vec![Vec::new(); ncols];
        let mut any_masked = false;
        for seg in &frozen {
            if seg.live_rows() != seg.rows() {
                any_masked = true;
            }
            let data = seg.columns();
            for i in seg.live_indices() {
                for (c, col) in cols.iter_mut().enumerate() {
                    col.push(data[c][i]);
                }
            }
        }
        report.rows_flushed = cols[0].len() as u64;
        if !cols[0].is_empty() {
            // Partitioner hint: the O(1) ingest stats, merged across
            // segments. Masked segments invalidate them, so recompute then.
            let hints = if any_masked {
                None
            } else {
                let mut merged = vec![ColumnStats::default(); ncols];
                for seg in &frozen {
                    for (m, s) in merged.iter_mut().zip(seg.stats()) {
                        *m = m.merge(s);
                    }
                }
                Some(merged)
            };
            let file = write_table_file(inner, &mut next_file_id, &cols, hints)?;
            report.files_written += 1;
            new_files.push(Arc::new(file));
        }
    }
    leco_obs::counter!("ing.compact_rows").add(report.rows_flushed);

    // ---- Commit: checkpoint WAL, manifest rename, in-memory swap ----
    let snapshot_ids: HashSet<u64> = frozen.iter().map(|s| s.id).collect();
    let mut wal = inner.wal.lock();
    let mut st = inner.state.write();

    // Post-swap in-memory state, computed first so the checkpoint can
    // serialize exactly what the swap will install.
    let files_after: Vec<Arc<CompactedFile>> = kept
        .iter()
        .cloned()
        .chain(new_files.iter().cloned())
        .collect();
    let frozen_after: Vec<Arc<FrozenSegment>> = st
        .frozen
        .iter()
        .filter(|s| !snapshot_ids.contains(&s.id))
        .cloned()
        .collect();
    let tombstones_after: HashMap<u64, u64> = st
        .tombstones
        .iter()
        .filter(|&(_, &epoch)| epoch > snapshot_epoch)
        .map(|(&k, &e)| (k, e))
        .collect();
    report.tombstones_dropped = st.tombstones.len() - tombstones_after.len();

    // Checkpoint WAL: tombstones first (they must not kill the re-logged
    // rows, which are all live by construction), then frozen segments
    // oldest-first with their FREEZE markers, then the memtable.
    let gen = st.manifest_gen + 1;
    let wal_name = wal_file_name(gen);
    let mut checkpoint = Wal::create(&inner.dir.join(&wal_name))?;
    let mut keys: Vec<u64> = tombstones_after.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        checkpoint.append(&WalRecord::Del(key))?;
    }
    let mut row = vec![0u64; ncols];
    for seg in &frozen_after {
        let data = seg.columns();
        for i in seg.live_indices() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = data[c][i];
            }
            checkpoint.append(&WalRecord::Row(row.clone()))?;
        }
        checkpoint.append(&WalRecord::Freeze)?;
    }
    for r in 0..st.mem.rows() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = st.mem.columns()[c][r];
        }
        checkpoint.append(&WalRecord::Row(row.clone()))?;
    }
    checkpoint.commit()?;

    // The commit point. Before: replaying the old WAL against the old file
    // set reconstructs everything. After: the new manifest names the new
    // files and the checkpoint WAL.
    let manifest = Manifest {
        gen,
        key_col,
        columns: inner.columns.clone(),
        wal: wal_name.clone(),
        files: files_after.iter().map(|f| f.name.clone()).collect(),
    };
    manifest.write_atomic(&inner.dir)?;

    let old_wal_name = std::mem::replace(&mut st.wal_name, wal_name);
    st.manifest_gen = gen;
    st.files = files_after;
    st.frozen = frozen_after;
    st.tombstones = tombstones_after;
    st.next_file_id = next_file_id;
    *wal = checkpoint;
    drop(st);
    drop(wal);

    // The old WAL is superseded; replaced table files stay on disk for
    // concurrent scans still holding their Arcs (swept on next open).
    std::fs::remove_file(inner.dir.join(&old_wal_name)).ok();

    leco_obs::counter!("ing.compactions").inc();
    leco_obs::counter!("ing.checkpoints").inc();
    leco_obs::histogram!("ing.compact_secs").record_secs(sw.elapsed_secs());
    leco_obs::gauge!("ing.files").set(inner.state.read().files.len() as i64);
    Ok(report)
}

/// Encode `cols` into a new table file (choosing the encoding from the
/// ingest-stat hints, recomputing them if not supplied), then fsync it and
/// its directory so the manifest rename that follows commits real bytes.
fn write_table_file(
    inner: &Inner,
    next_file_id: &mut u64,
    cols: &[Vec<u64>],
    hints: Option<Vec<ColumnStats>>,
) -> std::io::Result<CompactedFile> {
    let stats = hints.unwrap_or_else(|| {
        cols.iter()
            .map(|col| {
                let mut s = ColumnStats::default();
                for &v in col {
                    s.push(v);
                }
                s
            })
            .collect()
    });
    let name = table_file_name(*next_file_id);
    *next_file_id += 1;
    let path = inner.dir.join(&name);
    let names: Vec<&str> = inner.columns.iter().map(String::as_str).collect();
    let table = TableFile::write(
        &path,
        &names,
        cols,
        TableFileOptions {
            encoding: choose_encoding(&stats),
            row_group_size: inner.config.row_group_size,
            block_compression: leco_columnar::BlockCompression::None,
        },
    )?;
    File::open(&path)?.sync_all()?;
    sync_dir(&inner.dir)?;
    Ok(CompactedFile { name, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-ingest-table-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn manual_config() -> IngestConfig {
        IngestConfig {
            segment_rows: 100,
            compact_min_segments: 2,
            row_group_size: 64,
            auto_compact: false,
            key_col: 0,
        }
    }

    /// (key, id, val) rows with keys cycling 0..50.
    fn sample_rows(n: u64) -> Vec<Vec<u64>> {
        (0..n).map(|i| vec![i % 50, i % 7, 1_000 + i * 3]).collect()
    }

    fn put_all(table: &LiveTable, rows: &[Vec<u64>]) {
        let refs: Vec<&[u64]> = rows.iter().map(Vec::as_slice).collect();
        table.put_batch(&refs).unwrap();
    }

    #[test]
    fn put_freeze_compact_scan_pipeline() {
        let dir = tmp_dir("pipeline");
        let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
        let rows = sample_rows(250);
        put_all(&table, &rows);
        // 250 rows at segment_rows=100: two frozen segments + 50 in memtable.
        let s = table.stats();
        assert_eq!((s.mem_rows, s.frozen_segments, s.files), (50, 2, 0));

        let expect_sum: u128 = rows.iter().map(|r| r[2] as u128).sum();
        let out = table.scan(&ScanSpec::count().sum("val"), 2).unwrap();
        assert_eq!(out.rows_selected, 250);
        assert_eq!(out.sum, expect_sum);

        let report = table.flush().unwrap();
        assert_eq!(report.rows_flushed, 250);
        assert_eq!(report.files_written, 1);
        let s = table.stats();
        assert_eq!(
            (s.mem_rows, s.frozen_segments, s.files, s.file_rows),
            (0, 0, 1, 250)
        );

        // Same answers after everything moved into a compacted file.
        let out = table.scan(&ScanSpec::count().sum("val"), 2).unwrap();
        assert_eq!((out.rows_selected, out.sum), (250, expect_sum));
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_replays_the_wal() {
        let dir = tmp_dir("reopen");
        let rows = sample_rows(130);
        {
            let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
            put_all(&table, &rows);
        }
        let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
        // 130 ROW records + 1 FREEZE marker.
        assert_eq!(table.replay_report().records, 131);
        assert_eq!(table.replay_report().truncated_bytes, 0);
        let s = table.stats();
        assert_eq!((s.mem_rows, s.frozen_segments), (30, 1));
        let out = table.scan(&ScanSpec::count(), 1).unwrap();
        assert_eq!(out.rows_selected, 130);
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_after_flush_uses_manifest_files() {
        let dir = tmp_dir("reopen-flushed");
        let rows = sample_rows(300);
        let expect_sum: u128 = rows.iter().map(|r| r[2] as u128).sum();
        {
            let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
            put_all(&table, &rows);
            table.flush().unwrap();
            // A few more rows after the checkpoint, recovered from the new WAL.
            table.put(&[1000, 1, 5]).unwrap();
        }
        let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
        assert_eq!(table.replay_report().records, 1);
        let s = table.stats();
        assert_eq!((s.mem_rows, s.files, s.file_rows), (1, 1, 300));
        let out = table.scan(&ScanSpec::count().sum("val"), 2).unwrap();
        assert_eq!(out.rows_selected, 301);
        assert_eq!(out.sum, expect_sum + 5);
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_masks_every_layer() {
        let dir = tmp_dir("delete");
        let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
        // Layer 1: compacted file holding key 7.
        put_all(&table, &sample_rows(250));
        table.flush().unwrap();
        // Layer 2: frozen segment holding key 7.
        put_all(&table, &sample_rows(100));
        // Layer 3: memtable holding key 7.
        put_all(&table, &sample_rows(30));

        let before = table.scan(&ScanSpec::count(), 1).unwrap().rows_selected;
        let with_key7 = table
            .scan(&ScanSpec::count().filter("key", 7, 7), 1)
            .unwrap()
            .rows_selected;
        assert!(with_key7 > 0);
        table.delete(7).unwrap();
        let after = table.scan(&ScanSpec::count(), 1).unwrap();
        assert_eq!(after.rows_selected, before - with_key7);
        assert_eq!(
            table
                .scan(&ScanSpec::count().filter("key", 7, 7), 1)
                .unwrap()
                .rows_selected,
            0
        );

        // Resurrection: a put after the delete is visible...
        table.put(&[7, 1, 999]).unwrap();
        assert_eq!(
            table
                .scan(&ScanSpec::count().filter("key", 7, 7), 1)
                .unwrap()
                .rows_selected,
            1
        );
        // ...and survives the compaction that applies the tombstone.
        let report = table.flush().unwrap();
        assert!(report.files_rewritten >= 1);
        assert_eq!(table.stats().tombstones, 0);
        let sum7 = table
            .scan(&ScanSpec::count().filter("key", 7, 7).sum("val"), 1)
            .unwrap();
        assert_eq!((sum7.rows_selected, sum7.sum), (1, 999));
        assert_eq!(
            table.scan(&ScanSpec::count(), 1).unwrap().rows_selected,
            after.rows_selected + 1
        );
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_survives_reopen() {
        let dir = tmp_dir("delete-reopen");
        {
            let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
            put_all(&table, &sample_rows(250));
            table.flush().unwrap();
            table.delete(3).unwrap(); // tombstone in the WAL, not yet compacted
        }
        let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
        assert_eq!(
            table
                .scan(&ScanSpec::count().filter("key", 3, 3), 1)
                .unwrap()
                .rows_selected,
            0
        );
        assert_eq!(table.stats().tombstones, 1);
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_avg_matches_hand_computation() {
        let dir = tmp_dir("groups");
        let table = LiveTable::open(&dir, &["key", "id", "val"], manual_config()).unwrap();
        let rows = sample_rows(333);
        put_all(&table, &rows);
        table.flush().unwrap();
        put_all(&table, &sample_rows(40)); // leave some rows in memory too

        let mut expect: HashMap<u64, (u128, u64)> = HashMap::new();
        for r in rows.iter().chain(sample_rows(40).iter()) {
            let e = expect.entry(r[1]).or_insert((0, 0));
            e.0 += r[2] as u128;
            e.1 += 1;
        }
        let out = table
            .scan(&ScanSpec::count().group_by_avg("id", "val"), 2)
            .unwrap();
        let want = leco_columnar::exec::finalize_group_avgs(&expect);
        assert_eq!(out.groups.len(), want.len());
        for ((gid, gavg), (wid, wavg)) in out.groups.iter().zip(&want) {
            assert_eq!(gid, wid);
            assert_eq!(gavg.to_bits(), wavg.to_bits());
        }
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_mismatch_and_bad_input_are_rejected() {
        let dir = tmp_dir("badinput");
        let table = LiveTable::open(&dir, &["a", "b"], manual_config()).unwrap();
        assert!(table.put(&[1]).is_err());
        assert!(table.put(&[1, 2, 3]).is_err());
        assert!(table.scan(&ScanSpec::count().sum("nosuch"), 1).is_err());
        drop(table);
        assert!(LiveTable::open(&dir, &["a", "c"], manual_config()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_compactor_kicks_in() {
        let dir = tmp_dir("background");
        let config = IngestConfig {
            auto_compact: true,
            ..manual_config()
        };
        let table = LiveTable::open(&dir, &["key", "id", "val"], config).unwrap();
        put_all(&table, &sample_rows(450)); // 4 frozen segments + 50 in mem
        let sw = leco_obs::Stopwatch::start();
        while table.stats().files == 0 && sw.elapsed_secs() < 10.0 {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let s = table.stats();
        assert!(s.files >= 1, "compactor never ran: {s:?}");
        assert_eq!(
            table.scan(&ScanSpec::count(), 1).unwrap().rows_selected,
            450
        );
        drop(table);
        std::fs::remove_dir_all(&dir).ok();
    }
}
