//! In-memory segments: the mutable memtable and its frozen, immutable form.
//!
//! A [`MemSegment`] is plain column vectors plus O(1) running
//! [`ColumnStats`]. When it reaches the configured row budget it is frozen:
//! the column data moves behind an `Arc` and gains an *alive* bitmask.
//! Frozen data never mutates — a delete produces a copy-on-write replacement
//! segment sharing the same column `Arc` with a narrower mask — so a scan
//! that cloned the segment list keeps seeing a consistent snapshot no matter
//! what commits after it.

use crate::stats::ColumnStats;
use std::sync::Arc;

/// The mutable head of a live table: plain column vectors being appended.
#[derive(Debug)]
pub struct MemSegment {
    columns: Vec<Vec<u64>>,
    stats: Vec<ColumnStats>,
}

impl MemSegment {
    /// An empty segment with `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        Self {
            columns: (0..ncols).map(|_| Vec::new()).collect(),
            stats: vec![ColumnStats::default(); ncols],
        }
    }

    /// Append one row; `row.len()` must equal the column count.
    pub fn push_row(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.columns.len());
        for ((col, stat), &v) in self.columns.iter_mut().zip(&mut self.stats).zip(row) {
            col.push(v);
            stat.push(v);
        }
    }

    /// Rows currently held.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// The column vectors.
    pub fn columns(&self) -> &[Vec<u64>] {
        &self.columns
    }

    /// Running stats, one per column.
    pub fn stats(&self) -> &[ColumnStats] {
        &self.stats
    }

    /// Remove every row whose `key_col` value equals `key`, returning how
    /// many rows were dropped. Rebuilds the running stats from the survivors
    /// (deletes are rare; appends stay O(1)).
    pub fn purge_key(&mut self, key_col: usize, key: u64) -> u64 {
        let keep: Vec<bool> = self.columns[key_col].iter().map(|&v| v != key).collect();
        let dropped = keep.iter().filter(|k| !**k).count() as u64;
        if dropped == 0 {
            return 0;
        }
        for col in &mut self.columns {
            let mut it = keep.iter();
            col.retain(|_| *it.next().unwrap());
        }
        for (col, stat) in self.columns.iter().zip(&mut self.stats) {
            let mut s = ColumnStats::default();
            for &v in col {
                s.push(v);
            }
            *stat = s;
        }
        dropped
    }

    /// Convert into an immutable [`FrozenSegment`] with every row alive.
    pub fn freeze(self, id: u64) -> FrozenSegment {
        let rows = self.rows();
        FrozenSegment {
            id,
            columns: Arc::new(self.columns),
            stats: self.stats,
            alive: AliveMask::all_set(rows),
        }
    }
}

/// Fixed-size bitmask over a frozen segment's rows; bit set = row alive.
#[derive(Debug, Clone)]
struct AliveMask {
    words: Vec<u64>,
    live: usize,
}

impl AliveMask {
    fn all_set(rows: usize) -> Self {
        let nwords = rows.div_ceil(64);
        let mut words = vec![u64::MAX; nwords];
        if !rows.is_multiple_of(64) {
            if let Some(w) = words.last_mut() {
                *w = (1u64 << (rows % 64)) - 1;
            }
        }
        Self { words, live: rows }
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn clear(&mut self, i: usize) {
        let w = &mut self.words[i / 64];
        if *w & (1 << (i % 64)) != 0 {
            *w &= !(1 << (i % 64));
            self.live -= 1;
        }
    }
}

/// An immutable, frozen segment: shared column data plus an alive mask.
#[derive(Debug, Clone)]
pub struct FrozenSegment {
    /// Stable identity, preserved across copy-on-write delete masking, so
    /// the compactor can tell which live-list entries correspond to the
    /// segments in its snapshot.
    pub id: u64,
    columns: Arc<Vec<Vec<u64>>>,
    stats: Vec<ColumnStats>,
    alive: AliveMask,
}

impl FrozenSegment {
    /// Total rows (alive and dead).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Rows still alive under the mask.
    pub fn live_rows(&self) -> usize {
        self.alive.live
    }

    /// Whether row `i` is alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.alive.get(i)
    }

    /// The shared column vectors (mask not applied).
    pub fn columns(&self) -> &[Vec<u64>] {
        &self.columns
    }

    /// Stats captured at freeze time. Hints only: deletes may have narrowed
    /// the live domain since.
    pub fn stats(&self) -> &[ColumnStats] {
        &self.stats
    }

    /// Copy-on-write delete: a new segment sharing the same column data with
    /// every row whose `key_col` equals `key` masked out. `None` if no row
    /// matched (the caller keeps the original `Arc`).
    pub fn without_key(&self, key_col: usize, key: u64) -> Option<FrozenSegment> {
        let keys = &self.columns[key_col];
        let mut hit = false;
        let mut masked = self.clone(); // clones the mask, shares the columns
        for (i, &v) in keys.iter().enumerate() {
            if v == key && self.alive.get(i) {
                masked.alive.clear(i);
                hit = true;
            }
        }
        hit.then_some(masked)
    }

    /// Iterate the alive row indices in order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.rows()).filter(|&i| self.alive.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_with(rows: &[[u64; 3]]) -> MemSegment {
        let mut seg = MemSegment::new(3);
        for row in rows {
            seg.push_row(row);
        }
        seg
    }

    #[test]
    fn push_tracks_stats_per_column() {
        let seg = segment_with(&[[1, 9, 5], [2, 7, 5], [3, 8, 5]]);
        assert_eq!(seg.rows(), 3);
        assert!(seg.stats()[0].is_non_decreasing());
        assert_eq!(seg.stats()[1].runs, 2);
        assert_eq!((seg.stats()[2].min, seg.stats()[2].max), (5, 5));
    }

    #[test]
    fn purge_rewrites_columns_and_stats() {
        let mut seg = segment_with(&[[1, 10, 0], [2, 20, 0], [1, 30, 0], [3, 40, 0]]);
        assert_eq!(seg.purge_key(0, 1), 2);
        assert_eq!(seg.rows(), 2);
        assert_eq!(seg.columns()[1], vec![20, 40]);
        assert_eq!((seg.stats()[0].min, seg.stats()[0].max), (2, 3));
        assert_eq!(seg.purge_key(0, 99), 0);
    }

    #[test]
    fn frozen_cow_masking_leaves_the_original_untouched() {
        let frozen = segment_with(&[[1, 10, 0], [2, 20, 0], [1, 30, 0]]).freeze(7);
        assert_eq!(frozen.live_rows(), 3);
        let masked = frozen.without_key(0, 1).expect("two rows match");
        assert_eq!(masked.id, 7);
        assert_eq!(masked.live_rows(), 1);
        assert_eq!(masked.live_indices().collect::<Vec<_>>(), vec![1]);
        // Original snapshot unchanged; column data shared, not copied.
        assert_eq!(frozen.live_rows(), 3);
        assert!(Arc::ptr_eq(&frozen.columns, &masked.columns));
        assert!(masked.without_key(0, 99).is_none());
    }

    #[test]
    fn alive_mask_partial_last_word() {
        let mut seg = MemSegment::new(1);
        for i in 0..70u64 {
            seg.push_row(&[i]);
        }
        let frozen = seg.freeze(0);
        assert_eq!(frozen.live_rows(), 70);
        assert_eq!(frozen.live_indices().count(), 70);
        let masked = frozen.without_key(0, 69).unwrap();
        assert_eq!(masked.live_rows(), 69);
        assert!(!masked.is_alive(69));
    }
}
