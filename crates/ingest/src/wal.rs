//! Write-ahead log: length-prefixed, checksummed records with fsync'd batch
//! commit and a replay that truncates at the first corrupt or torn record.
//!
//! On-disk frame (all integers little-endian):
//!
//! ```text
//! [len: u32] [crc: u32] [payload: len bytes]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE, reflected 0xEDB88320) of the payload and
//! the payload starts with a one-byte opcode:
//!
//! | op     | body                                  | meaning                  |
//! |--------|---------------------------------------|--------------------------|
//! | `0x01` | `ncols: u16`, then `ncols × u64`      | append one row           |
//! | `0x02` | `key: u64`                            | delete all rows with key |
//! | `0x03` | (empty)                               | freeze the memtable      |
//!
//! Durability contract: records are buffered in memory until
//! [`Wal::commit`], which flushes and `fdatasync`s — an acknowledged batch
//! is on stable storage. Replay accepts exactly the committed prefix: the
//! first frame whose length overruns the file (torn write), whose checksum
//! mismatches (corruption), or whose payload fails to parse ends the log,
//! and the file is truncated back to the durable prefix so the next append
//! continues from a clean tail.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Opcode: append one row.
pub const OP_ROW: u8 = 0x01;
/// Opcode: delete every row whose key column equals the operand.
pub const OP_DEL: u8 = 0x02;
/// Opcode: freeze the memtable into an immutable segment.
pub const OP_FREEZE: u8 = 0x03;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Append one row (one value per column).
    Row(Vec<u64>),
    /// Delete every row whose key column equals `key`.
    Del(u64),
    /// Freeze the memtable into an immutable in-memory segment.
    Freeze,
}

impl WalRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let payload_start = out.len() + 8;
        out.extend_from_slice(&[0u8; 8]); // len + crc backpatched below
        match self {
            WalRecord::Row(values) => {
                out.push(OP_ROW);
                let ncols = u16::try_from(values.len()).expect("at most 65535 columns");
                out.extend_from_slice(&ncols.to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            WalRecord::Del(key) => {
                out.push(OP_DEL);
                out.extend_from_slice(&key.to_le_bytes());
            }
            WalRecord::Freeze => out.push(OP_FREEZE),
        }
        let len = (out.len() - payload_start) as u32;
        let crc = crc32(&out[payload_start..]);
        out[payload_start - 8..payload_start - 4].copy_from_slice(&len.to_le_bytes());
        out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
    }
}

fn parse_payload(p: &[u8]) -> Option<WalRecord> {
    match *p.first()? {
        OP_ROW => {
            if p.len() < 3 {
                return None;
            }
            let ncols = u16::from_le_bytes([p[1], p[2]]) as usize;
            if p.len() != 3 + 8 * ncols {
                return None;
            }
            Some(WalRecord::Row(
                p[3..]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
        OP_DEL => {
            if p.len() != 9 {
                return None;
            }
            Some(WalRecord::Del(u64::from_le_bytes(
                p[1..9].try_into().unwrap(),
            )))
        }
        OP_FREEZE => (p.len() == 1).then_some(WalRecord::Freeze),
        _ => None,
    }
}

/// Decode one frame from the front of `bytes`. `None` means torn or corrupt
/// — the caller must treat everything from here on as garbage.
fn decode_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if bytes.len() < 8 + len {
        return None; // torn: the frame promises more bytes than exist
    }
    let payload = &bytes[8..8 + len];
    if crc32(payload) != crc {
        return None; // corrupt: checksum mismatch
    }
    Some((parse_payload(payload)?, 8 + len))
}

/// Outcome of [`replay`]: how much of the log was durable and how much was
/// discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records successfully decoded and applied.
    pub records: u64,
    /// Bytes of the durable prefix (the file's length after replay).
    pub durable_bytes: u64,
    /// Bytes discarded past the first torn/corrupt frame.
    pub truncated_bytes: u64,
}

/// Replay the log at `path`, invoking `apply` for every durable record in
/// order, then truncate the file back to the durable prefix.
///
/// Never panics on garbage input: any malformation — a torn tail, a bad
/// checksum, an unknown opcode, an impossible payload length — ends the
/// durable prefix at the frame before it.
pub fn replay(path: &Path, mut apply: impl FnMut(WalRecord)) -> std::io::Result<ReplayReport> {
    let bytes = std::fs::read(path)?;
    let mut pos = 0usize;
    let mut records = 0u64;
    while let Some((record, frame_len)) = decode_frame(&bytes[pos..]) {
        apply(record);
        pos += frame_len;
        records += 1;
    }
    let truncated = (bytes.len() - pos) as u64;
    if truncated > 0 {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(pos as u64)?;
        file.sync_all()?;
        leco_obs::counter!("ing.replay_truncated_bytes").add(truncated);
    }
    leco_obs::counter!("ing.replay_records").add(records);
    Ok(ReplayReport {
        records,
        durable_bytes: pos as u64,
        truncated_bytes: truncated,
    })
}

/// Append half of the log: buffered writes, one fsync per [`Self::commit`].
#[derive(Debug)]
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    /// Bytes appended since the last commit (not yet guaranteed durable).
    pending: u64,
    scratch: Vec<u8>,
}

impl Wal {
    /// Create a fresh, empty log (truncating any existing file).
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        file.sync_all()?;
        Ok(Self {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            pending: 0,
            scratch: Vec::new(),
        })
    }

    /// Open an existing log for appending (call [`replay`] first so the tail
    /// is known-good).
    pub fn open_for_append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            pending: 0,
            scratch: Vec::new(),
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffer one record. Not durable until [`Self::commit`] returns.
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        self.scratch.clear();
        record.encode_into(&mut self.scratch);
        self.writer.write_all(&self.scratch)?;
        self.pending += self.scratch.len() as u64;
        Ok(())
    }

    /// Flush every buffered record and fsync: the batch commit. After this
    /// returns, everything appended so far survives a crash.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        leco_obs::counter!("ing.wal_commits").inc();
        leco_obs::counter!("ing.wal_bytes").add(self.pending);
        self.pending = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("leco-wal-test-{}-{name}.log", std::process::id()));
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Row(vec![1, 2, 3]),
            WalRecord::Row(vec![4, 5, 6]),
            WalRecord::Del(7),
            WalRecord::Freeze,
            WalRecord::Row(vec![u64::MAX, 0, 42]),
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn write_commit_replay_round_trips() {
        let path = tmp("roundtrip");
        let records = sample_records();
        {
            let mut wal = Wal::create(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.commit().unwrap();
        }
        let mut seen = Vec::new();
        let report = replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(seen, records);
        assert_eq!(report.records, records.len() as u64);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(
            report.durable_bytes,
            std::fs::metadata(&path).unwrap().len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_replay_continues_the_log() {
        let path = tmp("continue");
        {
            let mut wal = Wal::create(&path).unwrap();
            wal.append(&WalRecord::Row(vec![1])).unwrap();
            wal.commit().unwrap();
        }
        let mut n = 0;
        replay(&path, |_| n += 1).unwrap();
        assert_eq!(n, 1);
        {
            let mut wal = Wal::open_for_append(&path).unwrap();
            wal.append(&WalRecord::Row(vec![2])).unwrap();
            wal.commit().unwrap();
        }
        let mut seen = Vec::new();
        replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![WalRecord::Row(vec![1]), WalRecord::Row(vec![2])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_opcode_and_bad_arity_end_the_log() {
        let path = tmp("badop");
        let mut bytes = Vec::new();
        WalRecord::Row(vec![9]).encode_into(&mut bytes);
        // A frame with a valid checksum but an opcode from the future.
        let payload = [0x7F_u8, 1, 2, 3];
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let mut seen = Vec::new();
        let report = replay(&path, |r| seen.push(r)).unwrap();
        assert_eq!(seen, vec![WalRecord::Row(vec![9])]);
        assert!(report.truncated_bytes > 0);

        // ROW frame whose length disagrees with its column count.
        let mut bytes = Vec::new();
        let payload = [OP_ROW, 2, 0, 1, 2, 3]; // claims 2 cols, holds 5 bytes
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&path, &bytes).unwrap();
        let report = replay(&path, |_| panic!("no record should decode")).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }
}
