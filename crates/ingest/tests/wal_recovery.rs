//! Crash-recovery fault injection for the WAL.
//!
//! The contract under test: replay recovers *exactly the durable prefix* —
//! every record whose full frame survived, none of a record whose frame was
//! torn or corrupted, and nothing after the first bad frame. No panics, no
//! phantom rows, at **every** byte-truncation point of the log, and under
//! single-bit checksum corruption at every frame.

use leco_ingest::wal::{crc32, replay, Wal, WalRecord};
use leco_ingest::{IngestConfig, LiveTable, ScanSpec};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("leco-walrec-{}-{name}", std::process::id()));
    std::fs::remove_file(&p).ok();
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A mixed record workload: rows of different widths, deletes, freezes.
fn workload() -> Vec<WalRecord> {
    let mut records = Vec::new();
    for i in 0..10u64 {
        records.push(WalRecord::Row(vec![i, i * 7 % 13, 1_000 + i]));
        if i % 4 == 3 {
            records.push(WalRecord::Freeze);
        }
        if i % 5 == 4 {
            records.push(WalRecord::Del(i % 3));
        }
    }
    records.push(WalRecord::Row(vec![u64::MAX, 0, u64::MAX]));
    records
}

/// Byte offset where each record's frame ends (= the durable prefix if the
/// file is cut anywhere inside the *next* frame).
fn frame_ends(records: &[WalRecord]) -> Vec<u64> {
    // Reconstruct frame sizes from the encoding: 8-byte header + payload.
    records
        .iter()
        .scan(0u64, |pos, r| {
            let payload = match r {
                WalRecord::Row(v) => 3 + 8 * v.len(),
                WalRecord::Del(_) => 9,
                WalRecord::Freeze => 1,
            } as u64;
            *pos += 8 + payload;
            Some(*pos)
        })
        .collect()
}

#[test]
fn every_truncation_point_recovers_the_durable_prefix() {
    let path = tmp("trunc-src.log");
    let records = workload();
    {
        let mut wal = Wal::create(&path).unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.commit().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let ends = frame_ends(&records);
    assert_eq!(
        *ends.last().unwrap(),
        bytes.len() as u64,
        "frame map drifted"
    );

    let cut_path = tmp("trunc-cut.log");
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let mut seen = Vec::new();
        let report = replay(&cut_path, |r| seen.push(r)).unwrap();

        // The durable prefix is every record whose frame fits in `cut`.
        let durable = ends.iter().take_while(|&&e| e <= cut as u64).count();
        assert_eq!(
            seen.len(),
            durable,
            "cut at byte {cut}: got {} records, want {durable}",
            seen.len()
        );
        assert_eq!(seen, records[..durable], "cut at byte {cut}: wrong records");
        assert_eq!(report.records, durable as u64);
        assert_eq!(
            report.durable_bytes,
            ends.get(durable.wrapping_sub(1)).copied().unwrap_or(0)
        );
        // Replay must also have truncated the file back to the prefix, so a
        // subsequent append continues from a clean tail.
        assert_eq!(
            std::fs::metadata(&cut_path).unwrap().len(),
            report.durable_bytes,
            "cut at byte {cut}: file not truncated to the durable prefix"
        );
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&cut_path).ok();
}

#[test]
fn flipped_checksum_ends_the_log_at_that_frame() {
    let path = tmp("crc-src.log");
    let records = workload();
    {
        let mut wal = Wal::create(&path).unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.commit().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    let ends = frame_ends(&records);
    let flip_path = tmp("crc-flip.log");

    for (i, &end) in ends.iter().enumerate() {
        let frame_start = if i == 0 { 0 } else { ends[i - 1] } as usize;
        // Flip one bit of the stored CRC of frame i.
        let mut corrupt = bytes.clone();
        corrupt[frame_start + 4] ^= 0x01;
        std::fs::write(&flip_path, &corrupt).unwrap();
        let mut seen = Vec::new();
        replay(&flip_path, |r| seen.push(r)).unwrap();
        assert_eq!(seen, records[..i], "bad crc in frame {i}");
        assert_eq!(
            std::fs::metadata(&flip_path).unwrap().len(),
            frame_start as u64
        );

        // Flip one payload bit instead: the checksum must catch it too.
        let mut corrupt = bytes.clone();
        corrupt[frame_start + 8] ^= 0x80;
        std::fs::write(&flip_path, &corrupt).unwrap();
        let mut seen = Vec::new();
        replay(&flip_path, |r| seen.push(r)).unwrap();
        assert_eq!(seen, records[..i], "bad payload in frame {i}");
        let _ = end;
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&flip_path).ok();
}

#[test]
fn random_garbage_never_panics_and_never_yields_records() {
    // Deterministic pseudo-random garbage: none of it carries a valid CRC,
    // so replay must recover nothing and truncate to zero.
    let path = tmp("garbage.log");
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for len in [1usize, 7, 8, 64, 513] {
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.push((x >> 33) as u8);
        }
        // Guard against the astronomically unlikely valid frame: recompute
        // what a frame at offset 0 would need and break it.
        if bytes.len() >= 8 {
            let flen = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            if bytes.len() >= 8 + flen {
                let want = crc32(&bytes[8..8 + flen]);
                if bytes[4..8] == want.to_le_bytes() {
                    bytes[4] ^= 0xFF;
                }
            }
        }
        std::fs::write(&path, &bytes).unwrap();
        let report = replay(&path, |r| panic!("decoded {r:?} from garbage")).unwrap();
        assert_eq!(report.records, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }
    std::fs::remove_file(&path).ok();
}

/// End-to-end: a LiveTable whose WAL is cut mid-file reopens to exactly the
/// rows of the durable prefix — acknowledged-but-truncated rows disappear
/// (that is what the fault injected), unacknowledged garbage never appears.
#[test]
fn live_table_recovers_prefix_at_every_truncation_point() {
    let dir = tmp("table-trunc");
    let config = IngestConfig {
        segment_rows: 8,
        auto_compact: false,
        ..IngestConfig::default()
    };
    let rows: Vec<Vec<u64>> = (0..20u64).map(|i| vec![i, i % 3, 100 + i]).collect();
    {
        let table = LiveTable::open(&dir, &["key", "id", "val"], config).unwrap();
        for r in &rows {
            table.put(&[r[0], r[1], r[2]]).unwrap();
        }
    }
    let wal_path = {
        let table = LiveTable::open(&dir, &["key", "id", "val"], config).unwrap();
        table.wal_path()
    };
    let bytes = std::fs::read(&wal_path).unwrap();

    for cut in 0..=bytes.len() {
        std::fs::write(&wal_path, &bytes[..cut]).unwrap();
        let table = LiveTable::open(&dir, &["key", "id", "val"], config).unwrap();
        let out = table.scan(&ScanSpec::count().sum("key"), 1).unwrap();
        // Count how many full ROW/FREEZE frames fit: recompute expected rows
        // by replaying the prefix independently.
        let mut expect_rows = 0u64;
        let mut expect_sum = 0u128;
        replay(&wal_path, |r| {
            if let WalRecord::Row(v) = r {
                expect_rows += 1;
                expect_sum += v[0] as u128;
            }
        })
        .unwrap();
        assert_eq!(
            (out.rows_selected, out.sum),
            (expect_rows, expect_sum),
            "cut at byte {cut}"
        );
        drop(table);
        // Restore the full log for the next iteration.
        std::fs::write(&wal_path, &bytes).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
