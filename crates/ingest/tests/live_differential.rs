//! Differential testing: a live table's scans must be **bit-identical** to a
//! one-shot [`Scanner`] over the same logical rows, no matter how those rows
//! are spread across memtable / frozen segments / compacted files, how many
//! threads the scan uses, or how compaction interleaves with the scan.
//!
//! The schedules are proptest-driven: a random mix of puts, deletes and
//! flushes, checked mid-schedule (so every layer mixture gets exercised) and
//! again while a background thread hammers `compact_once` during the scans.
//! f64 group averages are compared with `to_bits` — "close" is a bug.

use leco_columnar::{TableFile, TableFileOptions};
use leco_ingest::{IngestConfig, LiveTable, ScanOutput, ScanSpec};
use leco_scan::Scanner;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "leco-diff-{}-{tag}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

const COLS: [&str; 3] = ["key", "id", "val"];

/// Reference model: the exact set of live rows, in insertion order.
#[derive(Default)]
struct Model {
    rows: Vec<[u64; 3]>,
}

impl Model {
    fn put(&mut self, row: [u64; 3]) {
        self.rows.push(row);
    }

    fn delete(&mut self, key: u64) {
        self.rows.retain(|r| r[0] != key);
    }
}

/// One scheduled operation, decoded from a raw u64 (so a plain
/// `vec(any::<u64>(), ..)` strategy drives arbitrary schedules).
enum Op {
    Put([u64; 3]),
    Delete(u64),
    Flush,
}

fn decode_op(x: u64, seq: u64) -> Op {
    match x % 16 {
        0..=11 => {
            // Keys collide on purpose (mod 32) so deletes hit many rows and
            // files; ids collide (mod 5) so group-by has real groups.
            let key = (x >> 8) % 32;
            let id = (x >> 16) % 5;
            let val = (x >> 24) % 10_000 + seq;
            Op::Put([key, id, val])
        }
        12 | 13 => Op::Delete((x >> 8) % 32),
        _ => Op::Flush,
    }
}

/// The scan specs every comparison runs: unfiltered count, filtered sum,
/// filtered group-average. The filter range straddles the key-collision
/// modulus so it selects a strict subset.
fn specs() -> Vec<ScanSpec> {
    vec![
        ScanSpec::count(),
        ScanSpec::count().filter("key", 5, 20).sum("val"),
        ScanSpec::count()
            .filter("val", 0, 6_000)
            .group_by_avg("id", "val"),
        ScanSpec::count().group_by_avg("id", "val"),
    ]
}

/// Ground truth: write the model's rows to a fresh table file and run the
/// existing one-shot scanner over it at `threads`.
fn reference_scan(model: &Model, spec: &ScanSpec, threads: usize, dir: &PathBuf) -> ScanOutput {
    if model.rows.is_empty() {
        return ScanOutput::default();
    }
    let mut cols: Vec<Vec<u64>> = vec![Vec::new(); 3];
    for r in &model.rows {
        for c in 0..3 {
            cols[c].push(r[c]);
        }
    }
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("reference.tbl");
    // Small row groups force multi-morsel scans even for short schedules.
    let options = TableFileOptions {
        row_group_size: 64,
        ..TableFileOptions::default()
    };
    let file = TableFile::write(&path, &COLS, &cols, options).unwrap();
    let mut scanner = Scanner::new(&file);
    if let Some((col, lo, hi)) = &spec.filter {
        let idx = COLS.iter().position(|c| c == col).unwrap();
        scanner = scanner.filter_col(idx, *lo, *hi);
    }
    match &spec.agg {
        leco_ingest::Agg::Count => scanner = scanner.count(),
        leco_ingest::Agg::Sum(col) => {
            let idx = COLS.iter().position(|c| c == col).unwrap();
            scanner = scanner.sum_col(idx);
        }
        leco_ingest::Agg::GroupAvg { id_col, val_col } => {
            let id = COLS.iter().position(|c| c == id_col).unwrap();
            let val = COLS.iter().position(|c| c == val_col).unwrap();
            scanner = scanner.group_by_avg_cols(id, val);
        }
    }
    let result = scanner.run(threads).unwrap();
    std::fs::remove_file(&path).ok();
    ScanOutput {
        rows_scanned: model.rows.len() as u64,
        rows_selected: result.rows_selected,
        sum: result.sum,
        groups: result.groups,
        group_partials: result.group_partials,
    }
}

/// Bit-exact comparison, f64 averages included.
fn assert_outputs_identical(live: &ScanOutput, reference: &ScanOutput, context: &str) {
    assert_eq!(
        live.rows_scanned, reference.rows_scanned,
        "{context}: rows_scanned"
    );
    assert_eq!(
        live.rows_selected, reference.rows_selected,
        "{context}: rows_selected"
    );
    assert_eq!(live.sum, reference.sum, "{context}: sum");
    assert_eq!(
        live.group_partials, reference.group_partials,
        "{context}: group partials"
    );
    assert_eq!(
        live.groups.len(),
        reference.groups.len(),
        "{context}: group count"
    );
    for ((lid, lavg), (rid, ravg)) in live.groups.iter().zip(&reference.groups) {
        assert_eq!(lid, rid, "{context}: group id");
        assert_eq!(
            lavg.to_bits(),
            ravg.to_bits(),
            "{context}: avg for id {lid} differs: {lavg} vs {ravg}"
        );
    }
}

fn check_all(table: &LiveTable, model: &Model, ref_dir: &PathBuf, context: &str) {
    for (si, spec) in specs().iter().enumerate() {
        for threads in [1usize, 2, 4] {
            let live = table.scan(spec, threads).unwrap();
            let reference = reference_scan(model, spec, threads, ref_dir);
            assert_outputs_identical(
                &live,
                &reference,
                &format!("{context}, spec {si}, {threads} threads"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random put/delete/flush schedules: the live table must stay
    /// bit-identical to the model mid-schedule (layers in flux) and at the
    /// end, at 1/2/4 threads.
    #[test]
    fn live_scans_match_one_shot_scanner(raw in proptest::collection::vec(any::<u64>(), 20..120)) {
        let dir = tmp_dir("sched");
        let ref_dir = tmp_dir("sched-ref");
        let config = IngestConfig {
            segment_rows: 16,          // tiny segments → many freezes per schedule
            compact_min_segments: 2,
            row_group_size: 64,        // match the reference file's row groups
            auto_compact: false,       // compaction driven explicitly below
            ..IngestConfig::default()
        };
        let table = LiveTable::open(&dir, &COLS, config).unwrap();
        let mut model = Model::default();

        let checkpoints = [raw.len() / 3, 2 * raw.len() / 3];
        for (seq, &x) in raw.iter().enumerate() {
            match decode_op(x, seq as u64) {
                Op::Put(row) => {
                    table.put(&row).unwrap();
                    model.put(row);
                }
                Op::Delete(key) => {
                    table.delete(key).unwrap();
                    model.delete(key);
                }
                Op::Flush => {
                    table.flush().unwrap();
                }
            }
            if checkpoints.contains(&seq) {
                check_all(&table, &model, &ref_dir, &format!("mid-schedule op {seq}"));
            }
        }
        check_all(&table, &model, &ref_dir, "end of schedule");

        // Reopen: everything above must survive a WAL replay round trip.
        drop(table);
        let table = LiveTable::open(&dir, &COLS, config).unwrap();
        check_all(&table, &model, &ref_dir, "after reopen");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    /// Scans racing live compaction: a background thread flushes and
    /// compacts in a loop while the foreground scans at 1/2/4 threads; every
    /// answer must still be bit-identical to the reference.
    #[test]
    fn scans_stay_identical_under_concurrent_compaction(raw in proptest::collection::vec(any::<u64>(), 40..100)) {
        let dir = tmp_dir("race");
        let ref_dir = tmp_dir("race-ref");
        let config = IngestConfig {
            segment_rows: 8,
            compact_min_segments: 1,
            row_group_size: 64,
            auto_compact: false,
            ..IngestConfig::default()
        };
        let table = Arc::new(LiveTable::open(&dir, &COLS, config).unwrap());
        let mut model = Model::default();
        for (seq, &x) in raw.iter().enumerate() {
            match decode_op(x, seq as u64) {
                Op::Put(row) => {
                    table.put(&row).unwrap();
                    model.put(row);
                }
                Op::Delete(key) => {
                    table.delete(key).unwrap();
                    model.delete(key);
                }
                // No flushes here: leave a deep stack of frozen segments for
                // the racing compactor to chew through mid-scan.
                Op::Flush => {}
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let hammer = {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    table.flush().unwrap();
                    table.compact_once().unwrap();
                }
            })
        };

        // Precompute references once (the logical rows never change while the
        // hammer runs), then scan repeatedly as compaction shifts rows
        // between layers underneath us.
        let mut references = Vec::new();
        for spec in specs() {
            for threads in [1usize, 2, 4] {
                references.push((spec.clone(), threads, reference_scan(&model, &spec, threads, &ref_dir)));
            }
        }
        for round in 0..6 {
            for (spec, threads, reference) in &references {
                let live = table.scan(spec, *threads).unwrap();
                assert_outputs_identical(
                    &live,
                    reference,
                    &format!("round {round}, {threads} threads, racing compaction"),
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        hammer.join().unwrap();

        // After the dust settles everything should be compacted and still
        // identical.
        check_all(&table, &model, &ref_dir, "post-race");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }
}
