//! Word-parallel fixed-width unpacking kernels.
//!
//! [`crate::stream::read_bits`] extracts one value per call and pays a
//! bit-position division, a modulo and a straddle branch every time.  The
//! kernels here amortise that work over whole 64-bit words: the bit width is
//! a compile-time constant (one monomorphised kernel per width 1..=64), so
//! word indices, shift amounts and the straddle decision constant-fold away
//! and the inner loops compile to straight-line shift/or/mask code.
//!
//! Two kernels cooperate:
//!
//! * a fully unrolled *block* kernel that decodes 64 values from exactly
//!   `width` consecutive words (usable whenever the run starts on a word
//!   boundary), and
//! * a *streaming* kernel holding a 128-bit bit buffer that handles arbitrary
//!   start phases and tail lengths without ever re-deriving word positions.
//!
//! [`unpack_bits_into`] is the only entry point; every sequential decode in
//! the workspace (LeCo partitions, FOR frames, Delta gap arrays, dictionary
//! codes) funnels through it.  See `docs/FORMAT.md` for how the packed
//! payload these kernels read is laid out on disk.

/// Mask selecting the low `W` bits (`W` in `1..=64`).
#[inline(always)]
pub(crate) const fn low_mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Decode exactly 64 values of width `W` from the `W` words at the start of
/// `words` into `out`.  The run must begin on a word boundary.
///
/// The loop body is fully unrolled by the compiler: `bit`, the word index,
/// the shift amount and the straddle test are all compile-time constants per
/// iteration, so each output costs one or two shifts, an or and a mask —
/// branch-free, and 4–8 outputs are produced per word read depending on `W`.
#[inline(always)]
fn unpack_block64<const W: u32>(words: &[u64], out: &mut [u64; 64]) {
    let words = &words[..W as usize];
    let m = low_mask(W);
    for k in 0..64u32 {
        let bit = k * W;
        let wi = (bit >> 6) as usize;
        let off = bit & 63;
        let first = words[wi] >> off;
        let v = if off + W <= 64 {
            first
        } else {
            first | (words[wi + 1] << (64 - off))
        };
        out[k as usize] = v & m;
    }
}

/// Decode `out.len()` values of width `W` starting at absolute bit position
/// `bit_pos`, using a 128-bit refill buffer.  Handles any start phase; used
/// for unaligned runs (partition payloads start mid-word) and block tails.
#[inline(always)]
fn unpack_stream<const W: u32>(words: &[u64], bit_pos: usize, out: &mut [u64]) {
    if out.is_empty() {
        return;
    }
    let m = low_mask(W);
    let mut wi = bit_pos >> 6;
    let off = (bit_pos & 63) as u32;
    let mut buf = (words[wi] >> off) as u128;
    let mut avail = 64 - off;
    wi += 1;
    for slot in out.iter_mut() {
        if avail < W {
            buf |= (words[wi] as u128) << avail;
            wi += 1;
            avail += 64;
        }
        *slot = (buf as u64) & m;
        buf >>= W;
        avail -= W;
    }
}

/// Streaming kernel fusing ZigZag decode and prefix summation onto the
/// extraction loop: each `W`-bit value is a zigzag-mapped gap, and the slot
/// receives the running total `acc` instead of the raw gap.  Keeping the
/// accumulator in a register while the bit buffer drains avoids the second
/// pass over the gap array that a decode-then-prefix-sum pipeline pays.
#[inline(always)]
fn unpack_delta_stream<const W: u32>(
    words: &[u64],
    bit_pos: usize,
    acc: &mut u64,
    out: &mut [u64],
) {
    if out.is_empty() {
        return;
    }
    let m = low_mask(W);
    let mut wi = bit_pos >> 6;
    let off = (bit_pos & 63) as u32;
    let mut buf = (words[wi] >> off) as u128;
    let mut avail = 64 - off;
    wi += 1;
    let mut current = *acc;
    for slot in out.iter_mut() {
        if avail < W {
            buf |= (words[wi] as u128) << avail;
            wi += 1;
            avail += 64;
        }
        let gap = (buf as u64) & m;
        buf >>= W;
        avail -= W;
        current = current.wrapping_add(crate::zigzag_decode(gap) as u64);
        *slot = current;
    }
    *acc = current;
}

/// Monomorphised driver: word-aligned prefixes go through the unrolled block
/// kernel in 64-value chunks, everything else through the streaming kernel.
fn unpack_width<const W: u32>(words: &[u64], bit_pos: usize, out: &mut [u64]) {
    let mut pos = bit_pos;
    let mut rest = out;
    if pos & 63 == 0 {
        let blocks = rest.len() / 64;
        let (head, tail) = rest.split_at_mut(blocks * 64);
        let mut wi = pos >> 6;
        for chunk in head.chunks_exact_mut(64) {
            let chunk: &mut [u64; 64] = chunk.try_into().expect("64-value chunk");
            unpack_block64::<W>(&words[wi..], chunk);
            wi += W as usize;
        }
        pos += blocks * 64 * W as usize;
        rest = tail;
    }
    unpack_stream::<W>(words, pos, rest);
}

macro_rules! dispatch_width {
    ($width:expr, $words:expr, $bit_pos:expr, $out:expr; $($w:literal)*) => {
        match $width {
            $( $w => unpack_width::<$w>($words, $bit_pos, $out), )*
            _ => unreachable!("width checked to be 1..=64"),
        }
    };
}

/// Unpack `out.len()` consecutive `width`-bit values starting at absolute bit
/// position `bit_pos` of the LSB-first packed `words`, overwriting `out`.
///
/// `width == 0` fills `out` with zeros and reads nothing.  This is the bulk
/// counterpart of [`crate::stream::read_bits`]: one call decodes a whole run
/// at several values per word read instead of one positioned read per value.
///
/// # Panics
/// Panics if `width > 64` or if the requested bit range extends past the end
/// of `words`.
///
/// ```
/// use leco_bitpack::unpack::unpack_bits_into;
///
/// // Twelve 5-bit values packed LSB-first by hand.
/// let values: Vec<u64> = (0..12).map(|i| (i * 3) % 32).collect();
/// let mut words = vec![0u64; 1];
/// for (i, &v) in values.iter().enumerate() {
///     words[i * 5 / 64] |= v << (i * 5 % 64);
/// }
/// let mut out = vec![0u64; 12];
/// unpack_bits_into(&words, 0, 5, &mut out);
/// assert_eq!(out, values);
/// ```
pub fn unpack_bits_into(words: &[u64], bit_pos: usize, width: u8, out: &mut [u64]) {
    assert!(width <= 64, "width must be <= 64, got {width}");
    if out.is_empty() {
        return;
    }
    if width == 0 {
        out.fill(0);
        return;
    }
    assert!(
        bit_pos + out.len() * width as usize <= words.len() * 64,
        "bit range {}..{} exceeds payload of {} bits",
        bit_pos,
        bit_pos + out.len() * width as usize,
        words.len() * 64
    );
    let width = width as u32;
    dispatch_width!(width, words, bit_pos, out;
        1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
        33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48
        49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64);
}

macro_rules! dispatch_delta_width {
    ($width:expr, $words:expr, $bit_pos:expr, $acc:expr, $out:expr; $($w:literal)*) => {
        match $width {
            $( $w => unpack_delta_stream::<$w>($words, $bit_pos, $acc, $out), )*
            _ => unreachable!("width checked to be 1..=64"),
        }
    };
}

/// Reconstruct `out.len()` delta-coded values whose `width`-bit ZigZag gaps
/// start at absolute bit position `bit_pos` of `words`: writes
/// `out[i] = anchor ⊕ gap₀ ⊕ … ⊕ gapᵢ` (wrapping addition of the
/// sign-restored gaps), where `anchor` is the value *preceding* the run.
///
/// This is the fused counterpart of calling [`unpack_bits_into`] and then
/// zigzag-decoding + prefix-summing the gap array in a second pass: the
/// accumulator rides in a register inside the extraction loop, so the gaps
/// are never materialised.  A `width` of 0 means every gap is zero and fills
/// `out` with `anchor`.
///
/// # Panics
/// Panics if `width > 64` or if the requested bit range extends past the end
/// of `words`.
///
/// ```
/// use leco_bitpack::unpack::unpack_deltas_into;
/// use leco_bitpack::zigzag_encode;
///
/// // Gaps +3, -1, +2 from anchor 100, packed at 4 bits.
/// let gaps: Vec<u64> = [3i64, -1, 2].iter().map(|&g| zigzag_encode(g)).collect();
/// let mut words = vec![0u64; 1];
/// for (i, &g) in gaps.iter().enumerate() {
///     words[0] |= g << (i * 4);
/// }
/// let mut out = vec![0u64; 3];
/// unpack_deltas_into(&words, 0, 4, 100, &mut out);
/// assert_eq!(out, vec![103, 102, 104]);
/// ```
pub fn unpack_deltas_into(words: &[u64], bit_pos: usize, width: u8, anchor: u64, out: &mut [u64]) {
    assert!(width <= 64, "width must be <= 64, got {width}");
    if out.is_empty() {
        return;
    }
    if width == 0 {
        out.fill(anchor);
        return;
    }
    assert!(
        bit_pos + out.len() * width as usize <= words.len() * 64,
        "bit range {}..{} exceeds payload of {} bits",
        bit_pos,
        bit_pos + out.len() * width as usize,
        words.len() * 64
    );
    let width = width as u32;
    let mut acc = anchor;
    dispatch_delta_width!(width, words, bit_pos, &mut acc, out;
        1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
        33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48
        49 50 51 52 53 54 55 56 57 58 59 60 61 62 63 64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_bits;

    /// Pack `values` at `width` bits starting at `bit_pos` (reference packer).
    fn pack_at(values: &[u64], width: u8, bit_pos: usize) -> Vec<u64> {
        let total = bit_pos + values.len() * width as usize;
        let mut words = vec![0u64; crate::div_ceil(total.max(1), 64)];
        for (i, &v) in values.iter().enumerate() {
            let pos = bit_pos + i * width as usize;
            let (wi, off) = (pos / 64, pos % 64);
            words[wi] |= v << off;
            if (width as usize) > 64 - off {
                words[wi + 1] |= v >> (64 - off);
            }
        }
        words
    }

    fn sample_values(n: usize, width: u8) -> Vec<u64> {
        let m = low_mask(width.max(1) as u32);
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) & m)
            .collect()
    }

    #[test]
    fn matches_read_bits_for_every_width_and_phase() {
        for width in 1u8..=64 {
            for &n in &[0usize, 1, 7, 63, 64, 65, 129, 200] {
                for &phase in &[0usize, 1, 13, 63] {
                    let values = sample_values(n, width);
                    let words = pack_at(&values, width, phase);
                    let mut out = vec![0u64; n];
                    unpack_bits_into(&words, phase, width, &mut out);
                    for (i, &expected) in values.iter().enumerate() {
                        assert_eq!(out[i], expected, "width {width} n {n} phase {phase} at {i}");
                        assert_eq!(
                            read_bits(&words, phase + i * width as usize, width),
                            expected
                        );
                    }
                }
            }
        }
    }

    /// Scalar reference for the fused delta kernel: positioned single-value
    /// reads, zigzag decode and prefix sum as three separate steps.
    fn deltas_scalar(words: &[u64], bit_pos: usize, width: u8, anchor: u64, out: &mut [u64]) {
        let mut acc = anchor;
        for (i, slot) in out.iter_mut().enumerate() {
            let gap = if width == 0 {
                0
            } else {
                read_bits(words, bit_pos + i * width as usize, width)
            };
            acc = acc.wrapping_add(crate::zigzag_decode(gap) as u64);
            *slot = acc;
        }
    }

    #[test]
    fn fused_delta_matches_scalar_for_every_width_and_phase() {
        for width in 0u8..=64 {
            for &n in &[0usize, 1, 7, 63, 64, 65, 129, 200] {
                for &phase in &[0usize, 1, 13, 63] {
                    let gaps = sample_values(n, width);
                    let words = pack_at(&gaps, width.max(1), phase);
                    let anchor = 0x1234_5678_9ABC_DEF0u64;
                    let mut fused = vec![0u64; n];
                    unpack_deltas_into(&words, phase, width, anchor, &mut fused);
                    let mut scalar = vec![0u64; n];
                    deltas_scalar(&words, phase, width, anchor, &mut scalar);
                    assert_eq!(fused, scalar, "width {width} n {n} phase {phase}");
                }
            }
        }
    }

    #[test]
    fn zero_width_delta_fills_anchor() {
        let mut out = vec![0u64; 10];
        unpack_deltas_into(&[], 0, 0, 42, &mut out);
        assert!(out.iter().all(|&v| v == 42));
    }

    #[test]
    fn zero_width_fills_zeros() {
        let mut out = vec![7u64; 100];
        unpack_bits_into(&[], 0, 0, &mut out);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic]
    fn rejects_range_past_end() {
        let mut out = vec![0u64; 3];
        unpack_bits_into(&[0u64], 0, 33, &mut out);
    }
}
