//! Plain bit vector with rank/select support.
//!
//! The Elias-Fano codec stores the "upper bits" of a monotone sequence as a
//! unary-coded bit vector and answers random access through `select1`.  This
//! module provides a straightforward rank/select index: 512-bit basic blocks
//! with cumulative popcounts plus a sampled select directory.  It favours
//! simplicity and predictable performance over the last few percent of space.

/// Growable bit vector with an optional rank/select index.
#[derive(Debug, Clone, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    /// Cumulative number of ones before each 512-bit superblock (8 words).
    superblock_ranks: Vec<u64>,
    /// Bit position of every `SELECT_SAMPLE`-th one (0-based ordinal).
    select_samples: Vec<u64>,
    ones: u64,
    indexed: bool,
}

const WORDS_PER_SUPERBLOCK: usize = 8;
const SELECT_SAMPLE: u64 = 512;

impl BitVec {
    /// Create an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; crate::div_ceil(len, 64)],
            len,
            ..Default::default()
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (only meaningful after [`Self::build_index`] or
    /// computed on the fly otherwise).
    pub fn count_ones(&self) -> u64 {
        if self.indexed {
            self.ones
        } else {
            self.words.iter().map(|w| w.count_ones() as u64).sum()
        }
    }

    /// Approximate heap size in bytes, including the rank/select directory.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8 + self.superblock_ranks.len() * 8 + self.select_samples.len() * 8
    }

    /// Append a bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
        self.indexed = false;
    }

    /// Set bit `i` to one.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of bounds");
        self.words[i / 64] |= 1u64 << (i % 64);
        self.indexed = false;
    }

    /// Get bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Build the rank/select directory.  Must be called before
    /// [`Self::rank1`] / [`Self::select1`] after the last mutation.
    pub fn build_index(&mut self) {
        self.superblock_ranks.clear();
        self.select_samples.clear();
        let mut ones = 0u64;
        for (w_idx, &w) in self.words.iter().enumerate() {
            if w_idx % WORDS_PER_SUPERBLOCK == 0 {
                self.superblock_ranks.push(ones);
            }
            let mut bits = w;
            while bits != 0 {
                let tz = bits.trailing_zeros() as u64;
                let pos = w_idx as u64 * 64 + tz;
                if pos < self.len as u64 {
                    if ones.is_multiple_of(SELECT_SAMPLE) {
                        self.select_samples.push(pos);
                    }
                    ones += 1;
                }
                bits &= bits - 1;
            }
        }
        self.ones = ones;
        self.indexed = true;
    }

    /// Number of ones in positions `[0, i)`.
    ///
    /// # Panics
    /// Panics if the index has not been built or `i > len`.
    pub fn rank1(&self, i: usize) -> u64 {
        assert!(self.indexed, "call build_index() first");
        assert!(i <= self.len);
        let word = i / 64;
        let sb = word / WORDS_PER_SUPERBLOCK;
        let mut rank = self.superblock_ranks[sb];
        for w in (sb * WORDS_PER_SUPERBLOCK)..word {
            rank += self.words[w].count_ones() as u64;
        }
        let rem = i % 64;
        if rem > 0 {
            rank += (self.words[word] & ((1u64 << rem) - 1)).count_ones() as u64;
        }
        rank
    }

    /// Position of the `k`-th one (0-based): `select1(0)` is the position of
    /// the first set bit.  Returns `None` if there are fewer than `k+1` ones.
    pub fn select1(&self, k: u64) -> Option<usize> {
        assert!(self.indexed, "call build_index() first");
        if k >= self.ones {
            return None;
        }
        // Start from the nearest select sample, then scan superblocks/words.
        let sample_idx = (k / SELECT_SAMPLE) as usize;
        let start_pos = self.select_samples[sample_idx] as usize;
        let mut word = start_pos / 64;
        // ones before `word * 64`
        let sb = word / WORDS_PER_SUPERBLOCK;
        let mut count = self.superblock_ranks[sb];
        for w in (sb * WORDS_PER_SUPERBLOCK)..word {
            count += self.words[w].count_ones() as u64;
        }
        loop {
            let w = self.words[word];
            let in_word = w.count_ones() as u64;
            if count + in_word > k {
                // The k-th one is inside this word.
                let nth = (k - count) as u32;
                let pos_in_word = nth_set_bit(w, nth);
                return Some(word * 64 + pos_in_word as usize);
            }
            count += in_word;
            word += 1;
        }
    }
}

/// Position (0..64) of the `n`-th (0-based) set bit of `word`.
/// `word` must have more than `n` set bits.
#[inline]
fn nth_set_bit(mut word: u64, n: u32) -> u32 {
    for _ in 0..n {
        word &= word - 1;
    }
    word.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_rank(bits: &[bool], i: usize) -> u64 {
        bits[..i].iter().filter(|&&b| b).count() as u64
    }

    fn naive_select(bits: &[bool], k: u64) -> Option<usize> {
        let mut count = 0;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                if count == k {
                    return Some(i);
                }
                count += 1;
            }
        }
        None
    }

    #[test]
    fn push_get_round_trip() {
        let bits = [true, false, false, true, true, false, true];
        let mut bv = BitVec::new();
        for &b in &bits {
            bv.push(b);
        }
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(bv.get(i), b);
        }
        assert_eq!(bv.len(), bits.len());
    }

    #[test]
    fn rank_select_small() {
        let mut bv = BitVec::new();
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        for &b in &bits {
            bv.push(b);
        }
        bv.build_index();
        for i in 0..=bits.len() {
            assert_eq!(bv.rank1(i), naive_rank(&bits, i), "rank at {i}");
        }
        for k in 0..bv.count_ones() {
            assert_eq!(bv.select1(k), naive_select(&bits, k), "select {k}");
        }
        assert_eq!(bv.select1(bv.count_ones()), None);
    }

    #[test]
    fn zeros_and_set() {
        let mut bv = BitVec::zeros(1000);
        bv.set(0);
        bv.set(999);
        bv.set(512);
        bv.build_index();
        assert_eq!(bv.count_ones(), 3);
        assert_eq!(bv.select1(0), Some(0));
        assert_eq!(bv.select1(1), Some(512));
        assert_eq!(bv.select1(2), Some(999));
        assert_eq!(bv.rank1(1000), 3);
        assert_eq!(bv.rank1(513), 2);
    }

    #[test]
    fn nth_set_bit_works() {
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
        assert_eq!(nth_set_bit(u64::MAX, 63), 63);
    }

    #[test]
    fn all_ones_large() {
        let n = 5000;
        let mut bv = BitVec::new();
        for _ in 0..n {
            bv.push(true);
        }
        bv.build_index();
        assert_eq!(bv.count_ones(), n as u64);
        for k in [0usize, 1, 511, 512, 513, 4999] {
            assert_eq!(bv.select1(k as u64), Some(k));
        }
    }

    proptest! {
        #[test]
        fn prop_rank_select_match_naive(bits in proptest::collection::vec(any::<bool>(), 0..2000)) {
            let mut bv = BitVec::new();
            for &b in &bits { bv.push(b); }
            bv.build_index();
            prop_assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count() as u64);
            // spot-check ranks
            for i in (0..=bits.len()).step_by(37) {
                prop_assert_eq!(bv.rank1(i), naive_rank(&bits, i));
            }
            for k in (0..bv.count_ones()).step_by(13) {
                prop_assert_eq!(bv.select1(k), naive_select(&bits, k));
            }
        }
    }
}
