//! Fixed-width packed integer arrays with O(1) random access.
//!
//! This is the physical layout used for LeCo delta arrays, FOR frames and
//! dictionary code arrays: `n` unsigned integers each occupying exactly
//! `width` bits, packed back-to-back LSB-first into `u64` words.

use crate::stream::read_bits;

/// An immutable array of `len` unsigned integers, each stored in `width` bits.
///
/// `width == 0` is allowed and represents an array of zeros that occupies no
/// payload space (the common case for perfectly-predicted LeCo partitions and
/// RLE runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedArray {
    words: Vec<u64>,
    len: usize,
    width: u8,
}

impl PackedArray {
    /// Pack `values` using `width` bits per value.
    ///
    /// # Panics
    /// Panics if any value does not fit in `width` bits.
    pub fn from_values(values: &[u64], width: u8) -> Self {
        assert!(width <= 64);
        if width == 0 {
            debug_assert!(values.iter().all(|&v| v == 0));
            return Self {
                words: Vec::new(),
                len: values.len(),
                width,
            };
        }
        let total_bits = values.len() * width as usize;
        let mut words = vec![0u64; crate::div_ceil(total_bits, 64)];
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(
                width == 64 || v < (1u64 << width),
                "value {v} does not fit in {width} bits"
            );
            let bit_pos = i * width as usize;
            let word_idx = bit_pos / 64;
            let offset = bit_pos % 64;
            words[word_idx] |= v << offset;
            let avail = 64 - offset;
            if (width as usize) > avail {
                words[word_idx + 1] |= v >> avail;
            }
        }
        Self {
            words,
            len: values.len(),
            width,
        }
    }

    /// Pack `values` with the minimal width that fits the maximum value.
    pub fn from_values_auto(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        Self::from_values(values, crate::bits_for(max))
    }

    /// Construct from raw parts (used when deserializing a storage format).
    pub fn from_raw_parts(words: Vec<u64>, len: usize, width: u8) -> Self {
        assert!(width <= 64);
        assert!(words.len() * 64 >= len * width as usize);
        Self { words, len, width }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per element.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Payload size in bytes (word granularity).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Exact payload size in bits.
    #[inline]
    pub fn size_bits(&self) -> usize {
        self.len * self.width as usize
    }

    /// Backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Random access to element `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` (in debug builds; release builds may read garbage
    /// only when `debug_assertions` are disabled *and* the index is within the
    /// padded word range, so callers should still treat this as a logic error).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if self.width == 0 {
            return 0;
        }
        read_bits(&self.words, i * self.width as usize, self.width)
    }

    /// Decode the whole array into a vector.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_into(&mut out);
        out
    }

    /// Decode the whole array, appending to `out`.
    ///
    /// This is the hot sequential-decode path; it walks the words directly
    /// instead of performing a positioned read per element.
    pub fn decode_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len);
        if self.width == 0 {
            out.extend(std::iter::repeat_n(0, self.len));
            return;
        }
        let width = self.width as usize;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut bit_pos = 0usize;
        for _ in 0..self.len {
            let word_idx = bit_pos / 64;
            let offset = bit_pos % 64;
            let first = self.words[word_idx] >> offset;
            let avail = 64 - offset;
            let v = if width <= avail {
                first & mask
            } else {
                (first | (self.words[word_idx + 1] << avail)) & mask
            };
            out.push(v);
            bit_pos += width;
        }
    }

    /// Iterate over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_small() {
        let values = vec![0u64, 1, 2, 3, 7, 6, 5, 4];
        let arr = PackedArray::from_values(&values, 3);
        assert_eq!(arr.len(), 8);
        assert_eq!(arr.to_vec(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(arr.get(i), v);
        }
    }

    #[test]
    fn zero_width() {
        let values = vec![0u64; 1000];
        let arr = PackedArray::from_values(&values, 0);
        assert_eq!(arr.size_bytes(), 0);
        assert_eq!(arr.get(999), 0);
        assert_eq!(arr.to_vec(), values);
    }

    #[test]
    fn full_width() {
        let values = vec![u64::MAX, 0, 1, u64::MAX - 1];
        let arr = PackedArray::from_values(&values, 64);
        assert_eq!(arr.to_vec(), values);
    }

    #[test]
    fn auto_width_picks_minimum() {
        let arr = PackedArray::from_values_auto(&[0, 5, 7]);
        assert_eq!(arr.width(), 3);
        let arr = PackedArray::from_values_auto(&[0, 0, 0]);
        assert_eq!(arr.width(), 0);
    }

    #[test]
    fn size_accounting() {
        let arr = PackedArray::from_values(&vec![1u64; 100], 7);
        assert_eq!(arr.size_bits(), 700);
        assert_eq!(arr.size_bytes(), crate::div_ceil(700, 64) * 8);
    }

    #[test]
    fn empty_array() {
        let arr = PackedArray::from_values(&[], 13);
        assert!(arr.is_empty());
        assert_eq!(arr.to_vec(), Vec::<u64>::new());
    }

    proptest! {
        #[test]
        fn prop_round_trip(values in proptest::collection::vec(0u64..u64::MAX, 0..300), extra_width in 0u8..4) {
            let max = values.iter().copied().max().unwrap_or(0);
            let width = (crate::bits_for(max) + extra_width).min(64);
            let arr = PackedArray::from_values(&values, width);
            prop_assert_eq!(arr.to_vec(), values.clone());
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(arr.get(i), v);
            }
        }

        #[test]
        fn prop_raw_parts_round_trip(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let arr = PackedArray::from_values_auto(&values);
            let rebuilt = PackedArray::from_raw_parts(arr.words().to_vec(), arr.len(), arr.width());
            prop_assert_eq!(rebuilt.to_vec(), values);
        }
    }
}
